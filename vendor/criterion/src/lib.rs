//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so this shim implements
//! the subset of the criterion API the bench targets use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (`harness = false` targets).
//!
//! Timing is a simple mean over wall-clock samples — adequate for spotting
//! order-of-magnitude regressions, with none of real criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then averaging over samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report formatting hook in real criterion; no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "bench {id:<50} mean {:>12.3?} ({sample_size} samples)",
        bencher.mean
    );
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
