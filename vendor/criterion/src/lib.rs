//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so this shim implements
//! the subset of the criterion API the bench targets use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (`harness = false` targets).
//!
//! Every benchmark runs a fixed warm-up pass first, then times each sample
//! individually and reports mean, median and standard deviation over the
//! samples — enough statistics to tell noise from a real regression, with
//! none of real criterion's outlier classification or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Warm-up iterations executed (and discarded) before the timed samples,
/// so cold caches and lazy initialisation do not pollute the first sample.
const WARM_UP_ITERATIONS: usize = 3;

/// Summary statistics over the timed samples of one benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Median (the midpoint average for even sample counts).
    pub median: Duration,
    /// Population standard deviation of the samples.
    pub std_dev: Duration,
}

impl SampleStats {
    /// Computes the statistics of a non-empty set of samples.
    fn from_samples(samples: &[Duration]) -> Self {
        assert!(!samples.is_empty(), "no samples recorded");
        let seconds: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        let n = seconds.len() as f64;
        let mean = seconds.iter().sum::<f64>() / n;
        let variance = seconds.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = seconds;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Self {
            mean: Duration::from_secs_f64(mean),
            median: Duration::from_secs_f64(median),
            std_dev: Duration::from_secs_f64(variance.sqrt()),
        }
    }
}

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    sample_size: usize,
    stats: SampleStats,
}

impl Bencher {
    /// Runs the fixed warm-up pass, then times `routine` once per sample
    /// and records mean/median/standard deviation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARM_UP_ITERATIONS {
            black_box(routine());
        }
        let samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        self.stats = SampleStats::from_samples(&samples);
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report formatting hook in real criterion; no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        stats: SampleStats::default(),
    };
    f(&mut bencher);
    let stats = bencher.stats;
    println!(
        "bench {id:<50} mean {:>12.3?} median {:>12.3?} stddev {:>12.3?} \
         ({sample_size} samples, {WARM_UP_ITERATIONS} warm-up)",
        stats.mean, stats.median, stats.std_dev
    );
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_micros(v)).collect()
    }

    #[test]
    fn stats_of_constant_samples_have_zero_spread() {
        let stats = SampleStats::from_samples(&micros(&[5, 5, 5, 5]));
        assert_eq!(stats.mean, Duration::from_micros(5));
        assert_eq!(stats.median, Duration::from_micros(5));
        assert_eq!(stats.std_dev, Duration::ZERO);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // One large outlier drags the mean but not the median.
        let stats = SampleStats::from_samples(&micros(&[10, 10, 10, 10, 1000]));
        assert!(stats.mean > Duration::from_micros(200));
        assert_eq!(stats.median, Duration::from_micros(10));
        assert!(stats.std_dev > Duration::from_micros(300));
    }

    #[test]
    fn even_sample_counts_average_the_midpoints() {
        let stats = SampleStats::from_samples(&micros(&[10, 20, 30, 40]));
        assert_eq!(stats.median, Duration::from_micros(25));
        assert_eq!(stats.mean, Duration::from_micros(25));
    }

    #[test]
    fn bencher_records_statistics() {
        let mut bencher = Bencher {
            sample_size: 8,
            stats: SampleStats::default(),
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        assert!(bencher.stats.mean > Duration::ZERO || bencher.stats.median >= Duration::ZERO);
    }
}
