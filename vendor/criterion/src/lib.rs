//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so this shim implements
//! the subset of the criterion API the bench targets use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (`harness = false` targets).
//!
//! Every benchmark runs a fixed warm-up pass first, then times each sample
//! individually, rejects outliers with Tukey's IQR fences, and reports
//! mean, median and standard deviation over the surviving samples.
//!
//! # Baselines and cross-run comparison
//!
//! `harness = false` bench binaries accept (and otherwise ignore) CLI
//! flags, so `cargo bench -- <flags>` drives them:
//!
//! * `--save-baseline PATH` — after all groups ran, write (merge) the
//!   results into a JSON baseline file. Existing records with the same
//!   benchmark id are replaced, others are kept, the file is sorted by id —
//!   so running several bench targets against one path accumulates a full
//!   baseline.
//! * `--baseline PATH` — compare every benchmark against the record of the
//!   same id in a baseline file and print the mean/median deltas. Deltas
//!   beyond `--threshold PCT` (default 25%) are flagged `WARN`; the process
//!   exit code is *not* affected (warn-only, so noisy CI machines cannot
//!   fail a build on timing).
//! * `--quick` — cap the per-benchmark sample count (for CI smoke runs).
//!
//! Unknown flags (such as the `--bench` cargo passes) are ignored, as real
//! criterion does.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Warm-up iterations executed (and discarded) before the timed samples,
/// so cold caches and lazy initialisation do not pollute the first sample.
const WARM_UP_ITERATIONS: usize = 3;

/// Per-benchmark sample cap under `--quick`.
const QUICK_SAMPLE_CAP: usize = 5;

/// Schema version of the baseline JSON file.
const BASELINE_SCHEMA: u64 = 1;

/// Summary statistics over the timed samples of one benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Median (the midpoint average for even sample counts).
    pub median: Duration,
    /// Population standard deviation of the samples.
    pub std_dev: Duration,
}

impl SampleStats {
    /// Computes the statistics of a non-empty set of samples.
    fn from_samples(samples: &[Duration]) -> Self {
        assert!(!samples.is_empty(), "no samples recorded");
        let seconds: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        let n = seconds.len() as f64;
        let mean = seconds.iter().sum::<f64>() / n;
        let variance = seconds.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = seconds;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Self {
            mean: Duration::from_secs_f64(mean),
            median: Duration::from_secs_f64(median),
            std_dev: Duration::from_secs_f64(variance.sqrt()),
        }
    }
}

/// Linearly interpolated percentile of an ascending-sorted slice
/// (`p` in `0.0..=1.0`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let position = p * (sorted.len() - 1) as f64;
    let below = position.floor() as usize;
    let above = position.ceil() as usize;
    let fraction = position - below as f64;
    sorted[below] + (sorted[above] - sorted[below]) * fraction
}

/// Tukey IQR outlier rejection: samples outside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]` are dropped. Returns the surviving
/// samples (order preserved) and the number rejected. Fewer than four
/// samples are returned unchanged — quartiles of so few points are noise.
pub fn reject_outliers_iqr(samples: &[Duration]) -> (Vec<Duration>, usize) {
    if samples.len() < 4 {
        return (samples.to_vec(), 0);
    }
    let mut sorted: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let q1 = percentile(&sorted, 0.25);
    let q3 = percentile(&sorted, 0.75);
    let iqr = q3 - q1;
    let (low, high) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<Duration> = samples
        .iter()
        .copied()
        .filter(|s| {
            let s = s.as_secs_f64();
            s >= low && s <= high
        })
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// One benchmark's record in a baseline file (all times in nanoseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Fully qualified benchmark id (`group/function`).
    pub id: String,
    /// Mean over the outlier-rejected samples, in nanoseconds.
    pub mean_ns: f64,
    /// Median over the outlier-rejected samples, in nanoseconds.
    pub median_ns: f64,
    /// Population standard deviation, in nanoseconds.
    pub std_dev_ns: f64,
    /// Samples surviving outlier rejection.
    pub samples: u64,
    /// Samples rejected by the IQR fences.
    pub rejected_outliers: u64,
}

/// The baseline file: a schema gate plus one record per benchmark id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Format version (currently 1).
    pub schema: u64,
    /// Records, sorted by id.
    pub benchmarks: Vec<BenchRecord>,
}

/// Merges `fresh` records into `existing`: same-id records are replaced,
/// everything else kept, result sorted by id — the merge rule behind
/// `--save-baseline`, split out for tests.
pub fn merge_records(existing: Vec<BenchRecord>, fresh: &[BenchRecord]) -> Vec<BenchRecord> {
    let mut merged: Vec<BenchRecord> = existing
        .into_iter()
        .filter(|record| !fresh.iter().any(|f| f.id == record.id))
        .collect();
    merged.extend(fresh.iter().cloned());
    merged.sort_by(|a, b| a.id.cmp(&b.id));
    merged
}

/// One line of `--baseline` comparison output, plus whether it tripped the
/// warn threshold. Positive deltas are regressions (slower than baseline).
pub fn compare_record(
    current: &BenchRecord,
    baseline: &BenchRecord,
    threshold: f64,
) -> (String, bool) {
    let delta = |now: f64, then: f64| {
        if then > 0.0 {
            (now - then) / then * 100.0
        } else {
            0.0
        }
    };
    let mean_delta = delta(current.mean_ns, baseline.mean_ns);
    let median_delta = delta(current.median_ns, baseline.median_ns);
    // Warn on the *median* delta: the mean is what one stray scheduler
    // stall distorts, and the IQR pass cannot catch drift spread over many
    // samples the way the median discounts it.
    let warn = median_delta.abs() > threshold;
    let marker = if !warn {
        "ok  "
    } else if median_delta > 0.0 {
        "WARN regression"
    } else {
        "WARN improvement (update the baseline?)"
    };
    (
        format!(
            "cmp   {:<50} mean {:>+8.1}% median {:>+8.1}% vs baseline  {marker}",
            current.id, mean_delta, median_delta
        ),
        warn,
    )
}

/// Results of every benchmark run so far in this process (drained by
/// [`finalize`]).
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// CLI configuration of this bench process.
#[derive(Debug, Clone, Default)]
struct CliConfig {
    save_baseline: Option<String>,
    baseline: Option<String>,
    threshold_percent: f64,
    quick: bool,
}

fn cli_config() -> &'static CliConfig {
    static CONFIG: OnceLock<CliConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let mut config = CliConfig {
            threshold_percent: 25.0,
            ..CliConfig::default()
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--save-baseline" => config.save_baseline = args.next(),
                "--baseline" => config.baseline = args.next(),
                "--threshold" => {
                    if let Some(value) = args.next().and_then(|raw| raw.parse::<f64>().ok()) {
                        config.threshold_percent = value;
                    }
                }
                "--quick" => config.quick = true,
                // Cargo passes `--bench` (and users may pass filters);
                // real criterion ignores what it does not know, so do we.
                _ => {}
            }
        }
        config
    })
}

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs the fixed warm-up pass, then times `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARM_UP_ITERATIONS {
            black_box(routine());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report formatting hook in real criterion; no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let config = cli_config();
    let sample_size = if config.quick {
        sample_size.min(QUICK_SAMPLE_CAP)
    } else {
        sample_size
    };
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let (kept, rejected) = reject_outliers_iqr(&bencher.samples);
    let stats = SampleStats::from_samples(&kept);
    println!(
        "bench {id:<50} mean {:>12.3?} median {:>12.3?} stddev {:>12.3?} \
         ({} samples, {rejected} outliers rejected, {WARM_UP_ITERATIONS} warm-up)",
        stats.mean,
        stats.median,
        stats.std_dev,
        kept.len(),
    );
    RESULTS
        .lock()
        .expect("bench registry lock")
        .push(BenchRecord {
            id: id.to_string(),
            mean_ns: stats.mean.as_secs_f64() * 1e9,
            median_ns: stats.median.as_secs_f64() * 1e9,
            std_dev_ns: stats.std_dev.as_secs_f64() * 1e9,
            samples: kept.len() as u64,
            rejected_outliers: rejected as u64,
        });
}

/// Runs the end-of-process baseline actions (`--save-baseline` /
/// `--baseline`). Called automatically by [`criterion_main!`] after every
/// group ran; draining the registry makes repeated calls harmless.
pub fn finalize() {
    let records: Vec<BenchRecord> = std::mem::take(&mut *RESULTS.lock().expect("bench registry"));
    if records.is_empty() {
        return;
    }
    let config = cli_config();
    if let Some(path) = &config.baseline {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<BaselineFile>(&text).map_err(|e| e.to_string()))
        {
            Ok(baseline) if baseline.schema == BASELINE_SCHEMA => {
                let mut warnings = 0usize;
                for record in &records {
                    match baseline.benchmarks.iter().find(|b| b.id == record.id) {
                        Some(reference) => {
                            let (line, warned) =
                                compare_record(record, reference, config.threshold_percent);
                            println!("{line}");
                            warnings += usize::from(warned);
                        }
                        None => println!("cmp   {:<50} (not in baseline)", record.id),
                    }
                }
                println!(
                    "cmp   {} benchmarks vs {path}: {warnings} beyond ±{}% (warn-only)",
                    records.len(),
                    config.threshold_percent
                );
            }
            Ok(_) => eprintln!("criterion: baseline {path} has a foreign schema; skipped"),
            Err(error) => eprintln!("criterion: cannot read baseline {path}: {error}"),
        }
    }
    if let Some(path) = &config.save_baseline {
        let existing = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| serde_json::from_str::<BaselineFile>(&text).ok())
            .filter(|file| file.schema == BASELINE_SCHEMA)
            .map(|file| file.benchmarks)
            .unwrap_or_default();
        let file = BaselineFile {
            schema: BASELINE_SCHEMA,
            benchmarks: merge_records(existing, &records),
        };
        let mut text = serde_json::to_string_pretty(&file).expect("baseline serialises to JSON");
        text.push('\n');
        match std::fs::write(path, text) {
            Ok(()) => println!(
                "saved {} benchmarks to baseline {path}",
                file.benchmarks.len()
            ),
            Err(error) => eprintln!("criterion: cannot write baseline {path}: {error}"),
        }
    }
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target: runs
/// every group, then the baseline save/compare actions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_micros(v)).collect()
    }

    fn record(id: &str, mean_ns: f64, median_ns: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            mean_ns,
            median_ns,
            std_dev_ns: 0.0,
            samples: 10,
            rejected_outliers: 0,
        }
    }

    #[test]
    fn stats_of_constant_samples_have_zero_spread() {
        let stats = SampleStats::from_samples(&micros(&[5, 5, 5, 5]));
        assert_eq!(stats.mean, Duration::from_micros(5));
        assert_eq!(stats.median, Duration::from_micros(5));
        assert_eq!(stats.std_dev, Duration::ZERO);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // One large outlier drags the mean but not the median.
        let stats = SampleStats::from_samples(&micros(&[10, 10, 10, 10, 1000]));
        assert!(stats.mean > Duration::from_micros(200));
        assert_eq!(stats.median, Duration::from_micros(10));
        assert!(stats.std_dev > Duration::from_micros(300));
    }

    #[test]
    fn even_sample_counts_average_the_midpoints() {
        let stats = SampleStats::from_samples(&micros(&[10, 20, 30, 40]));
        assert_eq!(stats.median, Duration::from_micros(25));
        assert_eq!(stats.mean, Duration::from_micros(25));
    }

    #[test]
    fn iqr_rejects_the_stray_spike_but_not_the_spread() {
        let (kept, rejected) = reject_outliers_iqr(&micros(&[10, 11, 10, 12, 11, 10, 500]));
        assert_eq!(rejected, 1);
        assert_eq!(kept, micros(&[10, 11, 10, 12, 11, 10]));
        // A tight-but-noisy distribution loses nothing.
        let (kept, rejected) = reject_outliers_iqr(&micros(&[10, 11, 12, 13, 14, 15]));
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn iqr_leaves_tiny_sample_sets_alone() {
        let (kept, rejected) = reject_outliers_iqr(&micros(&[1, 1000, 2]));
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn iqr_rejection_makes_the_mean_robust_too() {
        let samples = micros(&[10, 10, 10, 10, 1000]);
        let (kept, rejected) = reject_outliers_iqr(&samples);
        assert_eq!(rejected, 1);
        let stats = SampleStats::from_samples(&kept);
        assert_eq!(stats.mean, Duration::from_micros(10));
    }

    #[test]
    fn bencher_records_samples() {
        let mut bencher = Bencher {
            sample_size: 8,
            samples: Vec::new(),
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(bencher.samples.len(), 8);
    }

    #[test]
    fn merge_replaces_same_ids_and_sorts() {
        let existing = vec![record("b/x", 1.0, 1.0), record("a/y", 2.0, 2.0)];
        let fresh = vec![record("b/x", 9.0, 9.0), record("c/z", 3.0, 3.0)];
        let merged = merge_records(existing, &fresh);
        let ids: Vec<&str> = merged.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a/y", "b/x", "c/z"]);
        assert_eq!(merged[1].mean_ns, 9.0, "fresh record wins");
    }

    #[test]
    fn comparison_warns_on_the_median_beyond_the_threshold() {
        let baseline = record("g/f", 100.0, 100.0);
        let (line, warn) = compare_record(&record("g/f", 110.0, 110.0), &baseline, 25.0);
        assert!(!warn, "10% is within a 25% threshold: {line}");
        let (line, warn) = compare_record(&record("g/f", 140.0, 140.0), &baseline, 25.0);
        assert!(warn && line.contains("WARN regression"), "{line}");
        let (line, warn) = compare_record(&record("g/f", 40.0, 40.0), &baseline, 25.0);
        assert!(warn && line.contains("improvement"), "{line}");
        // A mean-only spike (stray stall) does not warn.
        let (line, warn) = compare_record(&record("g/f", 400.0, 104.0), &baseline, 25.0);
        assert!(!warn, "median within threshold must not warn: {line}");
    }

    #[test]
    fn baseline_file_round_trips_through_json() {
        let file = BaselineFile {
            schema: BASELINE_SCHEMA,
            benchmarks: vec![record("a/b", 1.5, 1.25)],
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
    }
}
