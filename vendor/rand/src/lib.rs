//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no route to crates.io, so this shim provides the
//! small API surface the workspace uses: `rngs::SmallRng`, seeded through
//! `SeedableRng::seed_from_u64`, with `Rng::gen_range` over float/integer
//! ranges and `Rng::gen_bool`. The generator is a splitmix64-seeded
//! xorshift64* — statistically fine for tests and workload generation, not
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let value = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // `start + span * u` can round up to `end` when the span is small
        // relative to the magnitude; keep the half-open contract.
        if value >= self.end {
            self.end.next_down()
        } else {
            value
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // Two's-complement arithmetic in u64 keeps spans exact even
                // when `end - start` would overflow the signed type.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                match span.checked_add(1) {
                    // Full 64-bit range: every value is in bounds.
                    None => start.wrapping_add(rng.next_u64() as $t),
                    Some(count) => start.wrapping_add((rng.next_u64() % count) as $t),
                }
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32, i64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A splitmix64-seeded xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-distributed initial states and never yields zero here.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna 2016).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
