//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no route to crates.io, so this workspace ships a
//! minimal, dependency-free replacement that covers exactly the surface the
//! suite uses: `#[derive(Serialize, Deserialize)]` on plain structs, and JSON
//! round-tripping through [`serde_json`](../serde_json/index.html).
//!
//! Deserialization (and pretty-printing) goes through an owned [`Value`]
//! tree rather than real serde's streaming `Deserializer`, which keeps the
//! shim tiny while preserving the property the test-suite relies on:
//! `from_str(&to_string(&x)?)? == x` for every derived type.
//!
//! Serialization additionally supports a *streaming* path: every
//! [`Serialize`] type can feed its canonical (compact) JSON bytes straight
//! into a [`Serializer`] sink via [`Serialize::serialize_canonical`],
//! without building a `Value` tree or allocating. The derive macro and all
//! built-in impls stream directly; the bytes are identical to
//! `serde_json::to_string`. This is what makes content-addressed hashing of
//! large models allocation-free (see `bbs_taskgraph::CanonicalHasher`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, JSON-shaped value tree.
///
/// Integers keep their signedness so that `u64::MAX`-style sentinels survive a
/// round trip exactly; floats are kept separate and printed with a
/// round-trippable representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (or any integer parsed with a leading `-`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted to the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A streaming byte sink receiving canonical (compact) JSON.
///
/// The chunks arrive in order and concatenate to exactly the bytes
/// `serde_json::to_string` would produce for the same value; chunk
/// boundaries are unspecified. Implementors are typically hashers (consume
/// the bytes without storing them) or growable buffers.
pub trait Serializer {
    /// Receives the next chunk of canonical JSON bytes.
    fn write_bytes(&mut self, bytes: &[u8]);
}

impl Serializer for String {
    fn write_bytes(&mut self, bytes: &[u8]) {
        self.push_str(std::str::from_utf8(bytes).expect("canonical JSON chunks are UTF-8"));
    }
}

impl Serializer for Vec<u8> {
    fn write_bytes(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn serialize(&self) -> Value;

    /// Streams the canonical (compact) JSON of `self` into `out` —
    /// byte-identical to `serde_json::to_string`, without building a
    /// [`Value`] tree. Built-in impls and the derive macro override the
    /// default with direct, allocation-free streaming; hand-written impls
    /// inherit a tree-walking fallback.
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats (where `serde_json::to_string` returns
    /// an error): a streaming sink has no error channel.
    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_value(&self.serialize(), out);
    }
}

/// The canonical compact-JSON writer behind the streaming serialization
/// path (and `serde_json::to_string`, which shares it so both routes are
/// byte-identical by construction).
pub mod canonical {
    use super::{Serializer, Value};
    use std::fmt::{self, Write as _};

    /// Adapts a [`Serializer`] into a [`fmt::Write`] so integer and float
    /// formatting can stream through the standard (heap-free) formatting
    /// machinery.
    struct FmtChunks<'a>(&'a mut dyn Serializer);

    impl fmt::Write for FmtChunks<'_> {
        fn write_str(&mut self, chunk: &str) -> fmt::Result {
            self.0.write_bytes(chunk.as_bytes());
            Ok(())
        }
    }

    /// Streams anything `Display` (used for integers, whose formatting
    /// never allocates).
    pub fn write_display(out: &mut dyn Serializer, value: impl fmt::Display) {
        let _ = write!(FmtChunks(out), "{value}");
    }

    /// Streams a float with the round-trippable `{:?}` representation —
    /// the same the tree writer uses.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values, which have no JSON representation.
    pub fn write_f64(out: &mut dyn Serializer, value: f64) {
        assert!(
            value.is_finite(),
            "cannot canonically serialize non-finite float"
        );
        let _ = write!(FmtChunks(out), "{value:?}");
    }

    /// Streams a JSON string literal with the canonical escaping rules
    /// (also used by `serde_json`'s writers, so escaping cannot diverge).
    pub fn write_json_string(out: &mut dyn Serializer, s: &str) {
        out.write_bytes(b"\"");
        let bytes = s.as_bytes();
        let mut clean = 0; // start of the pending escape-free run
        for (index, &byte) in bytes.iter().enumerate() {
            let escape: Option<&[u8]> = match byte {
                b'"' => Some(b"\\\""),
                b'\\' => Some(b"\\\\"),
                b'\n' => Some(b"\\n"),
                b'\r' => Some(b"\\r"),
                b'\t' => Some(b"\\t"),
                byte if byte < 0x20 => None, // \u escape, formatted below
                _ => continue,
            };
            out.write_bytes(&bytes[clean..index]);
            clean = index + 1;
            match escape {
                Some(literal) => out.write_bytes(literal),
                None => {
                    let _ = write!(FmtChunks(out), "\\u{byte:04x}");
                }
            }
        }
        out.write_bytes(&bytes[clean..]);
        out.write_bytes(b"\"");
    }

    /// Streams a [`Value`] tree as compact JSON — the fallback behind
    /// [`Serialize::serialize_canonical`](super::Serialize) for
    /// hand-written impls, and the core of `serde_json::to_string`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats (see [`write_f64`]).
    pub fn write_value(value: &Value, out: &mut dyn Serializer) {
        match value {
            Value::Null => out.write_bytes(b"null"),
            Value::Bool(true) => out.write_bytes(b"true"),
            Value::Bool(false) => out.write_bytes(b"false"),
            Value::Int(i) => write_display(out, i),
            Value::UInt(u) => write_display(out, u),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.write_bytes(b"[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_bytes(b",");
                    }
                    write_value(item, out);
                }
                out.write_bytes(b"]");
            }
            Value::Object(fields) => {
                out.write_bytes(b"{");
                for (i, (key, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_bytes(b",");
                    }
                    write_json_string(out, key);
                    out.write_bytes(b":");
                    write_value(item, out);
                }
                out.write_bytes(b"}");
            }
        }
    }
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Deserializes a named field out of an object value (derive-macro helper).
///
/// A missing key deserializes as `Null`, so `Option` fields default to `None`
/// exactly as with real serde; non-optional types then report the absence as
/// a type error.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::deserialize(value.get(name).unwrap_or(&Value::Null))
        .map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }

            fn serialize_canonical(&self, out: &mut dyn Serializer) {
                canonical::write_display(out, self);
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }

            fn serialize_canonical(&self, out: &mut dyn Serializer) {
                canonical::write_display(out, self);
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_f64(out, *self);
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_f64(out, f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        out.write_bytes(if *self { b"true" } else { b"false" });
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_json_string(out, self);
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        (**self).serialize_canonical(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        match self {
            Some(v) => v.serialize_canonical(out),
            None => out.write_bytes(b"null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

/// Shared streaming body of the slice-shaped impls.
fn write_canonical_seq<T: Serialize>(items: &[T], out: &mut dyn Serializer) {
    out.write_bytes(b"[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.write_bytes(b",");
        }
        item.serialize_canonical(out);
    }
    out.write_bytes(b"]");
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        write_canonical_seq(self, out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        write_canonical_seq(self, out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        out.write_bytes(b"[");
        self.0.serialize_canonical(out);
        out.write_bytes(b",");
        self.1.serialize_canonical(out);
        out.write_bytes(b"]");
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

/// Shared streaming body of the map impls: `entries` must already be in
/// canonical (sorted) key order.
fn write_canonical_map<'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    out: &mut dyn Serializer,
) {
    out.write_bytes(b"{");
    for (i, (key, value)) in entries.enumerate() {
        if i > 0 {
            out.write_bytes(b",");
        }
        canonical::write_json_string(out, key);
        out.write_bytes(b":");
        value.serialize_canonical(out);
    }
    out.write_bytes(b"}");
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        write_canonical_map(self.iter(), out);
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        // The canonical order is sorted; collecting the references is the
        // one map impl that allocates (hash maps have no cheap ordered
        // walk), which is fine — no hot-path type routes through it.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by_key(|&(key, _)| key);
        write_canonical_map(entries.into_iter(), out);
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }

    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        canonical::write_value(self, out);
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
