//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no route to crates.io, so this workspace ships a
//! minimal, dependency-free replacement that covers exactly the surface the
//! suite uses: `#[derive(Serialize, Deserialize)]` on plain structs, and JSON
//! round-tripping through [`serde_json`](../serde_json/index.html).
//!
//! Unlike the real serde, serialization goes through an owned [`Value`] tree
//! rather than a streaming `Serializer`/`Deserializer` pair. That keeps the
//! shim tiny while preserving the property the test-suite relies on:
//! `from_str(&to_string(&x)?)? == x` for every derived type.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, JSON-shaped value tree.
///
/// Integers keep their signedness so that `u64::MAX`-style sentinels survive a
/// round trip exactly; floats are kept separate and printed with a
/// round-trippable representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (or any integer parsed with a leading `-`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted to the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Deserializes a named field out of an object value (derive-macro helper).
///
/// A missing key deserializes as `Null`, so `Option` fields default to `None`
/// exactly as with real serde; non-optional types then report the absence as
/// a type error.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::deserialize(value.get(name).unwrap_or(&Value::Null))
        .map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
