//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so this shim implements
//! the subset the workspace's property tests use: range strategies over
//! floats and integers, tuple strategies, `prop_map`, `collection::vec`, the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! every test derives its cases deterministically from the case index, so a
//! failure reproduces immediately on re-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a property test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current test case with a message.
    pub fn fail(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategies for collections.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Number of elements a [`vec()`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic generator for one test case (macro implementation detail).
#[doc(hidden)]
pub fn __rng_for_case(test_name: &str, case: u32) -> SmallRng {
    // Mix the test name in so sibling tests do not see identical streams.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(seed ^ u64::from(case))
}

/// Declares deterministic property tests.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..8) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
     $($(#[$meta:meta])+
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            // `#[test]` is among the re-emitted attributes.
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::__rng_for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!("property {} failed at case {case}: {error}", stringify!($name));
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($condition)
            )));
        }
    };
    ($condition:expr, $($fmt:tt)+) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}
