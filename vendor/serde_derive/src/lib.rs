//! Derive macros for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the environment has no
//! `syn`/`quote`). Supports exactly what the workspace uses: non-generic
//! structs with named fields, tuple structs (newtypes serialize
//! transparently, like real serde), and unit structs. Enums and generics are
//! rejected with a compile-time panic so misuse is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the struct a derive was placed on.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of fields.
    Tuple(usize),
    /// `struct S;`
    Unit,
}

/// Derives the shim's `serde::Serialize` for a struct: the tree-building
/// `serialize` plus an allocation-free streaming `serialize_canonical`
/// override that emits the same bytes `serde_json::to_string` would.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
    };
    // Field names are Rust identifiers, so the object-key literals below
    // never need JSON escaping.
    let canonical_body = match &shape {
        Shape::Named(fields) => {
            let mut statements = Vec::new();
            for (i, f) in fields.iter().enumerate() {
                let prefix = if i == 0 { '{' } else { ',' };
                statements.push(format!(
                    "out.write_bytes(\"{prefix}\\\"{f}\\\":\".as_bytes());\n\
                     ::serde::Serialize::serialize_canonical(&self.{f}, out);"
                ));
            }
            if fields.is_empty() {
                "out.write_bytes(\"{}\".as_bytes());".to_string()
            } else {
                statements.push("out.write_bytes(\"}\".as_bytes());".to_string());
                statements.join("\n")
            }
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_canonical(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut statements = Vec::new();
            for i in 0..*n {
                let prefix = if i == 0 { '[' } else { ',' };
                statements.push(format!(
                    "out.write_bytes(\"{prefix}\".as_bytes());\n\
                     ::serde::Serialize::serialize_canonical(&self.{i}, out);"
                ));
            }
            statements.push("out.write_bytes(\"]\".as_bytes());".to_string());
            statements.join("\n")
        }
        Shape::Unit => "out.write_bytes(\"null\".as_bytes());".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         fn serialize_canonical(&self, out: &mut dyn ::serde::Serializer) {{\n\
         {canonical_body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` for a struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok(Self {{ {} }})",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::deserialize(value)?))".to_string()
        }
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok(Self({entries})),\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\n\
                 \"expected {n}-element array, found {{other:?}}\"))),\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Shape::Unit => "::std::result::Result::Ok(Self)".to_string(),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Panics when a skipped attribute is a `#[serde(..)]` attribute: the shim
/// would otherwise ignore renames/defaults/etc. and silently diverge from
/// real serde behavior.
fn reject_serde_attribute(attribute_group: Option<TokenTree>) {
    if let Some(TokenTree::Group(group)) = attribute_group {
        if let Some(TokenTree::Ident(path)) = group.stream().into_iter().next() {
            if path.to_string() == "serde" {
                panic!("the vendored serde_derive shim does not support #[serde(..)] attributes");
            }
        }
    }
}

/// Parses `struct Name { .. }` / `struct Name(..);` / `struct Name;` out of
/// the derive input, skipping attributes and visibility modifiers.
fn parse_struct(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[..]`, including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                reject_serde_attribute(tokens.next()); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            panic!("the vendored serde_derive shim does not support enums")
        }
        other => panic!("expected `struct`, found {other:?}"),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive shim does not support generic structs");
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Named(named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::Tuple(tuple_arity(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Unit),
        other => panic!("expected struct body, found {other:?}"),
    }
}

/// Extracts field names from the token stream inside `{ .. }`.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments) and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    reject_serde_attribute(tokens.next());
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
    }
    fields
}

/// Counts the fields of a tuple struct from the token stream inside `( .. )`.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}
