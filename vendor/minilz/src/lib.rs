//! Small, self-contained, deterministic LZ-style codec.
//!
//! This crate exists so the bbs solve store can compress entry bodies without
//! pulling a real compression crate into the offline build. It implements a
//! classic byte-oriented LZSS scheme:
//!
//! - a 4-byte magic header (`MLZ1`) followed by the raw (decompressed) length
//!   as a little-endian `u32`,
//! - then a token stream of control bytes, each carrying eight flags (LSB
//!   first): flag `0` introduces one literal byte, flag `1` introduces a
//!   back-reference encoded as a little-endian `u16` distance (1..=65535)
//!   plus one length byte (match length = byte + 4, i.e. 4..=259).
//!
//! The compressor is greedy with a single-slot hash table over 4-byte
//! prefixes, which keeps it fast and — more importantly for the store's
//! byte-identity invariants — a pure function of its input: the same bytes
//! always compress to the same frame on every platform.
//!
//! `decompress` is strict: it refuses bad magic, truncated streams, invalid
//! distances, and frames whose token stream does not reproduce exactly the
//! advertised raw length. Corrupt store entries must surface as errors, not
//! as silently wrong bytes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// Frame magic identifying a minilz stream (`MLZ1`).
pub const MAGIC: [u8; 4] = *b"MLZ1";

/// Number of bytes in the frame header (magic + raw length).
pub const HEADER_BYTES: usize = 8;

/// Maximum raw payload size accepted by [`compress`] (the length field is a
/// `u32`). 256 MiB is far beyond any store entry body.
pub const MAX_RAW_BYTES: usize = 256 * 1024 * 1024;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;
const MAX_DISTANCE: usize = 65_535;
const HASH_BITS: u32 = 15;

/// Decoding failure. The payload did not parse as a well-formed minilz frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input is shorter than the 8-byte frame header.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The token stream ended before producing the advertised raw length.
    UnexpectedEof,
    /// A back-reference pointed before the start of the output.
    BadDistance,
    /// The token stream produced more bytes than the advertised raw length.
    Overrun,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "minilz: input shorter than frame header"),
            Error::BadMagic => write!(f, "minilz: bad frame magic"),
            Error::UnexpectedEof => write!(f, "minilz: token stream truncated"),
            Error::BadDistance => write!(f, "minilz: back-reference before start of output"),
            Error::Overrun => write!(f, "minilz: token stream exceeds advertised length"),
        }
    }
}

impl std::error::Error for Error {}

fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `raw` into a self-framed minilz stream.
///
/// Deterministic: equal inputs always yield equal outputs. Incompressible
/// input grows by the 8-byte header plus one control bit per byte (~12.5%).
///
/// # Panics
///
/// Panics if `raw` exceeds [`MAX_RAW_BYTES`]; store entry bodies are orders
/// of magnitude smaller, so this is a programming error, not a data error.
#[must_use]
pub fn compress(raw: &[u8]) -> Vec<u8> {
    assert!(
        raw.len() <= MAX_RAW_BYTES,
        "minilz: payload of {} bytes exceeds MAX_RAW_BYTES",
        raw.len()
    );
    let mut out = Vec::with_capacity(HEADER_BYTES + raw.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());

    // Single-slot hash table mapping a 4-byte-prefix hash to the most recent
    // position it was seen at. usize::MAX marks an empty slot.
    let mut table = vec![usize::MAX; 1 << HASH_BITS];

    let mut pos = 0usize;
    let mut control_at = usize::MAX; // index of the pending control byte in `out`
    let mut control_bits = 8u8; // bits already consumed in the pending control byte

    let mut push_flag = |out: &mut Vec<u8>, bit: bool| {
        if control_bits == 8 {
            control_at = out.len();
            out.push(0);
            control_bits = 0;
        }
        if bit {
            out[control_at] |= 1 << control_bits;
        }
        control_bits += 1;
    };

    while pos < raw.len() {
        let remaining = raw.len() - pos;
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if remaining >= MIN_MATCH {
            let h = hash4(&raw[pos..]);
            let candidate = table[h];
            table[h] = pos;
            if candidate != usize::MAX && pos - candidate <= MAX_DISTANCE {
                let dist = pos - candidate;
                let limit = remaining.min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && raw[candidate + len] == raw[pos + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    best_len = len;
                    best_dist = dist;
                }
            }
        }
        if best_len >= MIN_MATCH {
            push_flag(&mut out, true);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Seed the table with the positions the match skips over so later
            // data can still reference them.
            let end = pos + best_len;
            let mut p = pos + 1;
            while p < end && p + MIN_MATCH <= raw.len() {
                table[hash4(&raw[p..])] = p;
                p += 1;
            }
            pos = end;
        } else {
            push_flag(&mut out, false);
            out.push(raw[pos]);
            pos += 1;
        }
    }
    out
}

/// Decompress a minilz frame produced by [`compress`].
///
/// Strictly validates the frame: magic, length, token-stream shape, and
/// back-reference distances. Returns the original bytes on success.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, Error> {
    if frame.len() < HEADER_BYTES {
        return Err(Error::Truncated);
    }
    if frame[..4] != MAGIC {
        return Err(Error::BadMagic);
    }
    let raw_len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = HEADER_BYTES;
    let mut control = 0u8;
    let mut control_bits = 0u8;
    while out.len() < raw_len {
        if control_bits == 0 {
            control = *frame.get(pos).ok_or(Error::UnexpectedEof)?;
            pos += 1;
            control_bits = 8;
        }
        let is_match = control & 1 == 1;
        control >>= 1;
        control_bits -= 1;
        if is_match {
            if pos + 3 > frame.len() {
                return Err(Error::UnexpectedEof);
            }
            let dist = u16::from_le_bytes([frame[pos], frame[pos + 1]]) as usize;
            let len = frame[pos + 2] as usize + MIN_MATCH;
            pos += 3;
            if dist == 0 || dist > out.len() {
                return Err(Error::BadDistance);
            }
            if out.len() + len > raw_len {
                return Err(Error::Overrun);
            }
            let start = out.len() - dist;
            // Byte-at-a-time: overlapping back-references (dist < len) are
            // legal and reproduce the run-length-style repetition.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        } else {
            let b = *frame.get(pos).ok_or(Error::UnexpectedEof)?;
            pos += 1;
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) {
        let frame = compress(raw);
        assert_eq!(decompress(&frame).as_deref(), Ok(raw));
    }

    #[test]
    fn empty_round_trips() {
        let frame = compress(b"");
        assert_eq!(frame.len(), HEADER_BYTES);
        round_trip(b"");
    }

    #[test]
    fn short_and_incompressible_round_trip() {
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
        let unique: Vec<u8> = (0..=255u8).collect();
        round_trip(&unique);
    }

    #[test]
    fn repetitive_input_round_trips_and_shrinks() {
        let raw: Vec<u8> = b"{\"schema\":1,\"fingerprint\":\"abc\"}"
            .iter()
            .cycle()
            .take(8 * 1024)
            .copied()
            .collect();
        let frame = compress(&raw);
        assert!(
            frame.len() < raw.len() / 4,
            "repetitive JSON should compress well: {} -> {}",
            raw.len(),
            frame.len()
        );
        assert_eq!(decompress(&frame).unwrap(), raw);
    }

    #[test]
    fn overlapping_match_round_trips() {
        // A long single-byte run forces dist=1 overlapping copies.
        let raw = vec![0x5Au8; 10_000];
        round_trip(&raw);
        // Period-3 run: dist=3 overlap.
        let raw: Vec<u8> = b"xyz".iter().cycle().take(5_000).copied().collect();
        round_trip(&raw);
    }

    #[test]
    fn deterministic() {
        let raw: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 251) as u8).collect();
        assert_eq!(compress(&raw), compress(&raw));
    }

    #[test]
    fn pseudo_random_payloads_round_trip() {
        // Deterministic xorshift stream; mixes compressible and not.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for size in [1usize, 2, 7, 64, 1000, 65_536, 200_000] {
            let mut raw = Vec::with_capacity(size);
            while raw.len() < size {
                let word = next();
                // Bias towards small byte values so matches do occur.
                raw.push((word % 17) as u8);
                if raw.len() < size {
                    raw.push((word >> 32) as u8);
                }
            }
            raw.truncate(size);
            round_trip(&raw);
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert_eq!(decompress(b""), Err(Error::Truncated));
        assert_eq!(decompress(b"MLZ"), Err(Error::Truncated));
        let mut frame = compress(b"hello hello hello hello");
        frame[0] = b'X';
        assert_eq!(decompress(&frame), Err(Error::BadMagic));
    }

    #[test]
    fn rejects_truncated_token_stream() {
        let raw: Vec<u8> = b"hello hello hello hello hello".to_vec();
        let frame = compress(&raw);
        for cut in HEADER_BYTES..frame.len() {
            let err = decompress(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::UnexpectedEof | Error::Overrun | Error::BadDistance
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_distance() {
        // Hand-built frame: claims 4 raw bytes, first token is a match with
        // dist=5 into an empty output buffer.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&4u32.to_le_bytes());
        frame.push(0b0000_0001); // control: first flag = match
        frame.extend_from_slice(&5u16.to_le_bytes());
        frame.push(0); // length 4
        assert_eq!(decompress(&frame), Err(Error::BadDistance));
    }

    #[test]
    fn rejects_overrun() {
        // Claims 2 raw bytes but encodes a literal pair then a 4-byte match.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&3u32.to_le_bytes());
        frame.push(0b0000_0100); // literal, literal, match
        frame.push(b'a');
        frame.push(b'b');
        frame.extend_from_slice(&1u16.to_le_bytes());
        frame.push(0); // length 4 -> 2 + 4 > 3
        assert_eq!(decompress(&frame), Err(Error::Overrun));
    }
}
