//! Vendored stand-in for the `serde_json` crate.
//!
//! Serializes the [`serde::Value`] tree produced by the vendored serde shim
//! to JSON text and parses it back. Covers `to_string`, `to_string_pretty`
//! and `from_str` — the only entry points the workspace uses.
//!
//! `to_string` routes through `serde::canonical`, the same streaming writer
//! behind [`serde::Serialize::serialize_canonical`], so the compact text
//! and the streaming byte feed (and hence the engine's content hashes) are
//! byte-identical by construction.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while serializing or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let tree = value.serialize();
    // The canonical writer panics on non-finite floats (it has no error
    // channel); this entry point keeps its `Err` contract by checking
    // first.
    check_finite(&tree)?;
    let mut out = String::new();
    serde::canonical::write_value(&tree, &mut out);
    Ok(out)
}

/// Rejects the values [`serde::canonical::write_value`] would panic on.
fn check_finite(value: &Value) -> Result<(), Error> {
    match value {
        Value::Float(f) if !f.is_finite() => Err(Error::new("cannot serialize non-finite float")),
        Value::Array(items) => items.iter().try_for_each(check_finite),
        Value::Object(fields) => fields.iter().try_for_each(|(_, v)| check_finite(v)),
        _ => Ok(()),
    }
}

/// Serializes a value to human-readable, 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Serializes a value to compact JSON as UTF-8 bytes — the natural form
/// for wire protocols that frame raw byte payloads.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON held in a UTF-8 byte slice (e.g. a network
/// frame). Invalid UTF-8 is a parse error, exactly like malformed JSON.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::new(format!("payload is not UTF-8: {e}")))?;
    from_str(text)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` prints the shortest representation that parses back to
            // the same f64, and always includes a `.0` for whole numbers.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_separator(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

/// One escaping implementation for both writers: the pretty printer here
/// delegates to the canonical streaming escaper.
fn write_string(out: &mut String, s: &str) {
    serde::canonical::write_json_string(out, s);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{literal}` at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs are not produced by the writer;
                            // reject them rather than decode them wrongly.
                            let c = char::from_u32(code).ok_or_else(|| {
                                Error::new(format!("invalid \\u escape {code:04x}"))
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed so multi-byte UTF-8
                    // characters are pushed intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end]).map_err(Error::new)?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::new)?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(Error::new)
    }

    /// Parses a number following the JSON grammar strictly:
    /// `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`.
    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone zero, or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => {
                return Err(Error::new(format!("expected digit at offset {}", self.pos)));
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(Error::new)
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::new)
        }
    }

    /// Consumes one or more ASCII digits; errors when none are present.
    fn digits(&mut self) -> Result<(), Error> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(Error::new(format!("expected digit at offset {}", self.pos)));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_json_number_grammar() {
        assert!(from_str::<f64>("1.").is_err(), "trailing dot");
        assert!(from_str::<u64>("01").is_err(), "leading zero");
        assert!(from_str::<f64>("1e").is_err(), "empty exponent");
        assert!(from_str::<f64>(".5").is_err(), "missing integer part");
        assert!(from_str::<i64>("-").is_err(), "bare minus");
    }

    #[test]
    fn accepts_json_number_grammar() {
        assert_eq!(from_str::<f64>("1.25e2").unwrap(), 125.0);
        assert_eq!(from_str::<f64>("-0.5").unwrap(), -0.5);
        assert_eq!(from_str::<u64>("0").unwrap(), 0);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn missing_key_deserializes_option_as_none() {
        // Mirrors real serde_derive: an omitted key is None for Option
        // fields and an error for required ones.
        let object: Value = from_str("{\"present\": 3}").unwrap();
        let present: Option<u64> = serde::field(&object, "present").unwrap();
        assert_eq!(present, Some(3));
        let absent: Option<u64> = serde::field(&object, "absent").unwrap();
        assert_eq!(absent, None);
        assert!(serde::field::<u64>(&object, "absent").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = String::from("line\nbreak \"quoted\" back\\slash\ttab");
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn non_finite_floats_still_error_not_panic() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
        assert!(to_string(&vec![1.0, f64::NEG_INFINITY]).is_err());
        let nested: Value = Value::Object(vec![("x".to_string(), Value::Float(f64::NAN))]);
        assert!(to_string(&nested).is_err());
    }

    #[test]
    fn streaming_serialization_matches_to_string() {
        // Exercise every Value shape, including strings that need all the
        // escape classes and floats with exotic shortest representations.
        let value = Value::Object(vec![
            ("null".to_string(), Value::Null),
            ("flag".to_string(), Value::Bool(true)),
            ("neg".to_string(), Value::Int(-42)),
            ("big".to_string(), Value::UInt(u64::MAX)),
            ("third".to_string(), Value::Float(1.0 / 3.0)),
            ("whole".to_string(), Value::Float(2.0)),
            ("tiny".to_string(), Value::Float(2.2250738585072014e-308)),
            (
                "esc \"q\" \\ \n \r \t \u{1} é".to_string(),
                Value::Str("nested \"esc\" \\ \n \u{7} ünïcødé".to_string()),
            ),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Null, Value::Str(String::new())]),
            ),
            ("empty_obj".to_string(), Value::Object(Vec::new())),
            ("empty_arr".to_string(), Value::Array(Vec::new())),
        ]);
        let tree_text = to_string(&value).unwrap();
        let mut streamed = String::new();
        serde::Serialize::serialize_canonical(&value, &mut streamed);
        assert_eq!(streamed, tree_text);
        // And the text round-trips.
        assert_eq!(from_str::<Value>(&tree_text).unwrap(), value);
    }

    #[test]
    fn byte_slice_round_trip_matches_the_string_route() {
        let value = Value::Object(vec![
            ("kind".to_string(), Value::Str("run".to_string())),
            ("jobs".to_string(), Value::UInt(8)),
            ("suite".to_string(), Value::Null),
            (
                "names".to_string(),
                Value::Array(vec![
                    Value::Str("paper".to_string()),
                    Value::Str("smoke \"quoted\"".to_string()),
                ]),
            ),
        ]);
        let bytes = to_vec(&value).unwrap();
        assert_eq!(bytes, to_string(&value).unwrap().into_bytes());
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn from_slice_rejects_invalid_utf8_and_malformed_json() {
        let invalid = from_slice::<Value>(&[0x22, 0xff, 0x22]);
        assert!(invalid.unwrap_err().to_string().contains("not UTF-8"));
        assert!(from_slice::<Value>(b"{not json").is_err());
        assert!(from_slice::<Value>(b"").is_err());
    }

    #[test]
    fn streaming_leaf_impls_match_to_string() {
        fn check<T: Serialize>(value: T) {
            let mut streamed = Vec::new();
            value.serialize_canonical(&mut streamed);
            assert_eq!(
                String::from_utf8(streamed).unwrap(),
                to_string(&value).unwrap()
            );
        }
        check(0u64);
        check(u64::MAX);
        check(-1i64);
        check(i64::MIN);
        check(3.5f64);
        check(1e300f64);
        check(-0.0f64);
        check(0.1f32);
        check(false);
        check(String::from("plain"));
        check(String::from("esc \" \\ \n \t \r \u{1f} end"));
        check(Option::<u64>::None);
        check(Some(7u64));
        check(vec![1u64, 2, 3]);
        check(Vec::<u64>::new());
        check((4u64, -5i64));
        check({
            let mut map = std::collections::BTreeMap::new();
            map.insert("b".to_string(), 2u64);
            map.insert("a".to_string(), 1u64);
            map
        });
        check({
            let mut map = std::collections::HashMap::new();
            map.insert("z".to_string(), 26u64);
            map.insert("a".to_string(), 1u64);
            map
        });
    }
}
