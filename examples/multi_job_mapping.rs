//! A multi-job mapping scenario: several streams share processors and a
//! scarce on-chip memory, and the result is validated end-to-end on the TDM
//! scheduler simulator.
//!
//! This is the situation the paper's introduction motivates (car
//! entertainment / smart-phone systems running several concurrent jobs):
//! budgets and buffer capacities have to be balanced *together* because the
//! jobs compete both for processor cycles and for buffer memory.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_job_mapping
//! ```

use budget_buffer_suite::budget_buffer::report::format_table;
use budget_buffer_suite::budget_buffer::two_phase::{compute_mapping_two_phase, BudgetPolicy};
use budget_buffer_suite::budget_buffer::verify::verify_mapping;
use budget_buffer_suite::budget_buffer::{compute_mapping, SolveOptions};
use budget_buffer_suite::scheduler_sim::{simulate_mapping, SimulationSettings};
use budget_buffer_suite::taskgraph::ConfigurationBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two processors, a small shared SRAM for the buffers, three jobs:
    // an audio pipeline, a video pipeline and a control stream.
    let mut builder = ConfigurationBuilder::new();
    builder.processor("dsp", 40.0);
    builder.processor("cpu", 40.0);
    builder.memory("sram", 24);
    {
        let audio = builder.task_graph("audio", 10.0);
        audio.task("aud_src", 1.0, "dsp");
        audio.task("aud_sink", 1.0, "cpu");
        audio.buffer("aud_buf", "aud_src", "aud_sink", "sram");
    }
    {
        let video = builder.task_graph("video", 12.0);
        video.task("vid_decode", 2.0, "dsp");
        video.task("vid_render", 1.5, "cpu");
        video.buffer("vid_buf", "vid_decode", "vid_render", "sram");
    }
    {
        let control = builder.task_graph("control", 20.0);
        control.task("ctl_in", 0.5, "cpu");
        control.task("ctl_out", 0.5, "dsp");
        control.buffer("ctl_buf", "ctl_in", "ctl_out", "sram");
    }
    let configuration = builder.build()?;

    let options = SolveOptions::default().prefer_budget_minimisation();
    let mapping = compute_mapping(&configuration, &options)?;

    // --- Print the mapped configuration. -----------------------------------
    let mut rows = Vec::new();
    for (task, budget) in mapping.budgets() {
        let graph = configuration.task_graph(task.graph);
        rows.push(vec![
            graph.name().to_string(),
            graph.task(task.task).name().to_string(),
            configuration
                .processor(graph.task(task.task).processor())
                .name()
                .to_string(),
            budget.to_string(),
        ]);
    }
    println!("Per-task budgets (cycles per 40-cycle replenishment interval):\n");
    println!(
        "{}",
        format_table(&["job", "task", "processor", "budget"], &rows)
    );

    let mut buffer_rows = Vec::new();
    for (buffer, capacity) in mapping.capacities() {
        let graph = configuration.task_graph(buffer.graph);
        buffer_rows.push(vec![
            graph.name().to_string(),
            graph.buffer(buffer.buffer).name().to_string(),
            capacity.to_string(),
        ]);
    }
    println!("Buffer capacities (containers in the 24-unit SRAM):\n");
    println!(
        "{}",
        format_table(&["job", "buffer", "capacity"], &buffer_rows)
    );

    // --- Verify analytically and by simulation. -----------------------------
    let report = verify_mapping(&configuration, &mapping)?;
    for graph in &report.graphs {
        println!(
            "job {}: required period {}, attainable {:.3}",
            configuration.task_graph(graph.graph).name(),
            graph.required_period,
            graph.attainable_period.unwrap_or(f64::NAN)
        );
    }
    let budgets = mapping.budgets().collect();
    let capacities = mapping.capacities().collect();
    let sim = simulate_mapping(
        &configuration,
        &budgets,
        &capacities,
        &SimulationSettings {
            iterations: 256,
            ..SimulationSettings::default()
        },
    )?;
    println!(
        "\nTDM simulation over {:.0} cycles: worst measured period {:.3} cycles",
        sim.total_time(),
        sim.worst_period()
    );

    // --- Contrast with the classic two-phase flow. ---------------------------
    match compute_mapping_two_phase(&configuration, BudgetPolicy::FairShare, &options) {
        Ok(outcome) => println!(
            "\nTwo-phase (fair-share) flow also succeeds but allocates {} budget cycles \
             (joint: {}).",
            outcome.mapping.total_budget(),
            mapping.total_budget()
        ),
        Err(e) => println!(
            "\nTwo-phase (fair-share) flow fails on this system: {e}\n\
             The joint formulation finds a mapping anyway — the false negative the paper fixes."
        ),
    }
    Ok(())
}
