//! Quickstart: compute budgets and buffer sizes for a small streaming job.
//!
//! Builds the paper's producer/consumer task graph (two tasks on two TDM
//! processors connected by one FIFO buffer), asks for a period of 10 Mcycles
//! and prints the budgets and the buffer capacity that guarantee it.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use budget_buffer_suite::budget_buffer::report::mapping_report;
use budget_buffer_suite::budget_buffer::{compute_mapping, SolveOptions};
use budget_buffer_suite::taskgraph::ConfigurationBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Describe the platform: two processors with 40 Mcycle TDM wheels. --
    let mut builder = ConfigurationBuilder::new();
    builder.processor("p1", 40.0);
    builder.processor("p2", 40.0);
    builder.unbounded_memory("mem");

    // --- Describe the job: producer -> buffer -> consumer, period 10. ------
    {
        let job = builder.task_graph("T1", 10.0);
        job.task("producer", 1.0, "p1");
        job.task("consumer", 1.0, "p2");
        job.buffer("stream", "producer", "consumer", "mem");
    }
    let configuration = builder.build()?;

    // --- Jointly compute budgets and the buffer capacity. ------------------
    let options = SolveOptions::default().prefer_budget_minimisation();
    let mapping = compute_mapping(&configuration, &options)?;

    println!("{mapping}");
    let report = mapping_report(&configuration, &mapping);
    println!(
        "producer budget: {} Mcycles per 40 Mcycle interval",
        report.budgets["producer"]
    );
    println!(
        "consumer budget: {} Mcycles per 40 Mcycle interval",
        report.budgets["consumer"]
    );
    println!(
        "buffer capacity: {} containers",
        report.capacities["stream"]
    );
    println!(
        "solved in {} interior-point iterations",
        mapping.solver_iterations()
    );
    Ok(())
}
