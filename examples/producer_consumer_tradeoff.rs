//! The paper's first experiment (Figures 2a and 2b): sweep the maximum
//! buffer capacity of the producer/consumer job and watch the required
//! budgets shrink non-linearly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example producer_consumer_tradeoff
//! ```

use budget_buffer_suite::budget_buffer::explore::sweep_buffer_capacity;
use budget_buffer_suite::budget_buffer::report::{derivative_table, tradeoff_table};
use budget_buffer_suite::budget_buffer::SolveOptions;
use budget_buffer_suite::taskgraph::presets::{producer_consumer, PaperParameters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configuration = producer_consumer(PaperParameters::default(), None);
    let options = SolveOptions::default().prefer_budget_minimisation();

    println!("Budget / buffer-size trade-off for the producer/consumer job");
    println!("(replenishment 40 Mcycles, wcet 1 Mcycle, period 10 Mcycles)\n");

    let points = sweep_buffer_capacity(&configuration, 1..=10, &options)?;
    println!("{}", tradeoff_table(&configuration, &points));

    println!("Budget reduction per additional container (the non-linear 'knee'):\n");
    println!("{}", derivative_table(&points));

    let best = points.last().expect("sweep is non-empty");
    println!(
        "A capacity of {} containers minimises the budgets at {} Mcycles per task.",
        best.capacity_cap,
        best.mapping
            .budget_of_named(&configuration, "wa")
            .expect("task wa exists"),
    );
    Ok(())
}
