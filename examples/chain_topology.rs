//! The paper's second experiment (Figure 3): the trade-off depends on the
//! topology of the task graph.
//!
//! In the chain `wa → wb → wc`, the middle task's budget interacts with two
//! buffers, so when buffer capacities are scarce the optimiser reduces the
//! budgets of `wa` and `wc` first and keeps `wb` large.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chain_topology
//! ```

use budget_buffer_suite::budget_buffer::explore::sweep_buffer_capacity;
use budget_buffer_suite::budget_buffer::report::format_table;
use budget_buffer_suite::budget_buffer::SolveOptions;
use budget_buffer_suite::taskgraph::presets::{chain3, PaperParameters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configuration = chain3(PaperParameters::default(), None);
    let options = SolveOptions::default().prefer_budget_minimisation();

    println!("Topology dependence: three-task chain, both buffers capped together\n");
    let points = sweep_buffer_capacity(&configuration, 1..=10, &options)?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let budget = |name: &str| {
                p.mapping
                    .budget_of_named(&configuration, name)
                    .expect("task exists")
                    .to_string()
            };
            vec![
                p.capacity_cap.to_string(),
                budget("wa"),
                budget("wb"),
                budget("wc"),
                p.total_budget().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["max capacity", "budget wa", "budget wb", "budget wc", "sum"],
            &rows
        )
    );

    println!(
        "Note how wa and wc drop towards the 4 Mcycle floor while wb, whose budget\n\
         interacts with both buffers, is only reduced once capacities are plentiful."
    );
    Ok(())
}
