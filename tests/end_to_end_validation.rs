//! End-to-end validation: analytic mappings hold up under execution.
//!
//! For every computed mapping these tests (1) re-verify the throughput with
//! the independent SRDF analysis, and (2) execute the mapped task graphs on
//! the discrete-event TDM scheduler simulator and compare the measured
//! period with the requirement. This closes the loop between the paper's
//! conservative dataflow model and an actual budget-scheduled execution.

use budget_buffer_suite::budget_buffer::explore::with_capacity_cap;
use budget_buffer_suite::budget_buffer::verify::verify_mapping;
use budget_buffer_suite::budget_buffer::{compute_mapping, SolveOptions};
use budget_buffer_suite::scheduler_sim::{simulate_mapping, SimulationSettings};
use budget_buffer_suite::srdf::analysis::{maximum_cycle_ratio, CycleRatio};
use budget_buffer_suite::srdf::{Actor, Queue, SrdfGraph};
use budget_buffer_suite::taskgraph::presets::{
    chain, producer_consumer, random_dag, PaperParameters, RandomWorkload,
};
use budget_buffer_suite::taskgraph::Configuration;
use std::collections::BTreeMap;

fn options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

fn simulate(
    configuration: &Configuration,
    mapping: &budget_buffer_suite::budget_buffer::Mapping,
) -> f64 {
    let budgets: BTreeMap<_, _> = mapping.budgets().collect();
    let capacities: BTreeMap<_, _> = mapping.capacities().collect();
    let settings = SimulationSettings {
        iterations: 256,
        ..SimulationSettings::default()
    };
    simulate_mapping(configuration, &budgets, &capacities, &settings)
        .expect("mapped configuration must execute without deadlock")
        .worst_period()
}

/// Producer/consumer across the whole capacity sweep: the measured period of
/// the TDM execution never exceeds the requirement (up to the bursty-window
/// measurement error of one replenishment interval over the window).
#[test]
fn producer_consumer_mappings_hold_under_execution() {
    let window_error = 40.0 / 127.0;
    for capacity in 1..=10u64 {
        let configuration = with_capacity_cap(
            &producer_consumer(PaperParameters::default(), None),
            capacity,
        );
        let mapping = compute_mapping(&configuration, &options()).unwrap();
        verify_mapping(&configuration, &mapping).unwrap();
        let measured = simulate(&configuration, &mapping);
        assert!(
            measured <= 10.0 + window_error,
            "capacity {capacity}: measured period {measured} exceeds the requirement"
        );
    }
}

/// Longer chains (4–6 tasks) with moderate buffer caps.
#[test]
fn chains_meet_their_period_under_execution() {
    let window_error = 40.0 / 127.0;
    for n in 4..=6usize {
        let configuration = with_capacity_cap(&chain(n, PaperParameters::default(), None), 6);
        let mapping = compute_mapping(&configuration, &options()).unwrap();
        let measured = simulate(&configuration, &mapping);
        assert!(
            measured <= 10.0 + window_error,
            "{n}-task chain: measured {measured}"
        );
    }
}

/// Random DAGs from the scaling workload generator: solve, verify, execute.
#[test]
fn random_dags_verify_and_execute() {
    for seed in [3u64, 11, 29] {
        let params = RandomWorkload {
            num_tasks: 10,
            num_processors: 4,
            extra_edge_probability: 0.25,
            seed,
            ..RandomWorkload::default()
        };
        let configuration = random_dag(&params);
        let mapping = compute_mapping(&configuration, &options()).unwrap();
        let report = verify_mapping(&configuration, &mapping).unwrap();
        for graph in &report.graphs {
            if let Some(attainable) = graph.attainable_period {
                assert!(attainable <= graph.required_period + 1e-5, "seed {seed}");
            }
        }
        let measured = simulate(&configuration, &mapping);
        assert!(
            measured <= 10.0 + 40.0 / 127.0,
            "seed {seed}: measured {measured}"
        );
    }
}

/// The rounded mapping instantiated as an SRDF graph has a maximum cycle
/// ratio of at most the required period — the conservativeness argument of
/// Section IV reproduced numerically through the public APIs.
#[test]
fn rounding_is_conservative_in_the_dataflow_model() {
    let configuration = producer_consumer(PaperParameters::default(), Some(3));
    let mapping = compute_mapping(&configuration, &options()).unwrap();
    // Rebuild the two-actor model by hand from the mapped values.
    let budget = mapping.budget_of_named(&configuration, "wa").unwrap() as f64;
    let capacity = mapping.capacity_of_named(&configuration, "bab").unwrap();
    let mut srdf = SrdfGraph::new();
    let a1 = srdf.add_actor(Actor::new("a1", 40.0 - budget));
    let a2 = srdf.add_actor(Actor::new("a2", 40.0 / budget));
    let b1 = srdf.add_actor(Actor::new("b1", 40.0 - budget));
    let b2 = srdf.add_actor(Actor::new("b2", 40.0 / budget));
    srdf.add_queue(Queue::new(a1, a2, 0));
    srdf.add_queue(Queue::new(a2, a2, 1));
    srdf.add_queue(Queue::new(b1, b2, 0));
    srdf.add_queue(Queue::new(b2, b2, 1));
    srdf.add_queue(Queue::new(a2, b1, 0));
    srdf.add_queue(Queue::new(b2, a1, capacity));
    match maximum_cycle_ratio(&srdf, 1e-6) {
        CycleRatio::Finite(mcr) => assert!(mcr <= 10.0 + 1e-5, "MCR {mcr} exceeds the period"),
        other => panic!("unexpected analysis result {other:?}"),
    }
}

/// Budget granularity is respected end to end and coarser granularities never
/// break the guarantee.
#[test]
fn granularity_respected_end_to_end() {
    for granularity in [1u64, 2, 4] {
        let mut configuration = producer_consumer(PaperParameters::default(), Some(6));
        configuration.set_budget_granularity(granularity);
        let mapping = compute_mapping(&configuration, &options()).unwrap();
        for (_, budget) in mapping.budgets() {
            assert_eq!(budget % granularity, 0);
        }
        verify_mapping(&configuration, &mapping).unwrap();
        let measured = simulate(&configuration, &mapping);
        assert!(measured <= 10.0 + 40.0 / 127.0, "granularity {granularity}");
    }
}
