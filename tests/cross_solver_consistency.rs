//! Consistency between the different solution paths exposed by the library:
//! the interior-point SOCP, the cutting-plane LP loop and the two-phase
//! baseline, plus model (de)serialisation.

use budget_buffer_suite::budget_buffer::explore::with_capacity_cap;
use budget_buffer_suite::budget_buffer::two_phase::{compute_mapping_two_phase, BudgetPolicy};
use budget_buffer_suite::budget_buffer::{compute_mapping, MappingError, SolveOptions};
use budget_buffer_suite::taskgraph::presets::{chain3, producer_consumer, ring, PaperParameters};
use budget_buffer_suite::taskgraph::Configuration;

fn ipm() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

fn cutting_plane() -> SolveOptions {
    SolveOptions::default()
        .prefer_budget_minimisation()
        .with_cutting_plane()
}

/// The SOCP interior-point solver and the cutting-plane outer approximation
/// agree (after rounding) on the paper's workloads across the sweep.
#[test]
fn interior_point_and_cutting_plane_agree() {
    for capacity in [1u64, 3, 5, 8, 10] {
        let configuration = with_capacity_cap(
            &producer_consumer(PaperParameters::default(), None),
            capacity,
        );
        let a = compute_mapping(&configuration, &ipm()).unwrap();
        let b = compute_mapping(&configuration, &cutting_plane()).unwrap();
        assert_eq!(
            a.budget_of_named(&configuration, "wa"),
            b.budget_of_named(&configuration, "wa"),
            "capacity {capacity}"
        );
        assert_eq!(
            a.capacity_of_named(&configuration, "bab"),
            b.capacity_of_named(&configuration, "bab"),
            "capacity {capacity}"
        );
    }
}

/// The joint formulation never needs more total budget than either two-phase
/// policy on workloads where all three succeed, and it succeeds on workloads
/// where the minimum-budget baseline fails (the false negative).
#[test]
fn joint_dominates_two_phase_baseline() {
    // Unconstrained: every flow succeeds.
    let configuration = chain3(PaperParameters::default(), None);
    let joint = compute_mapping(&configuration, &ipm()).unwrap();
    let min_budget =
        compute_mapping_two_phase(&configuration, BudgetPolicy::ThroughputMinimum, &ipm()).unwrap();
    let fair = compute_mapping_two_phase(&configuration, BudgetPolicy::FairShare, &ipm()).unwrap();
    assert!(joint.total_budget() <= min_budget.mapping.total_budget());
    assert!(joint.total_budget() <= fair.mapping.total_budget());

    // Capped buffers: the minimum-budget baseline reports a false negative,
    // the joint flow still finds a mapping.
    let capped = with_capacity_cap(&configuration, 4);
    assert!(compute_mapping(&capped, &ipm()).is_ok());
    assert!(matches!(
        compute_mapping_two_phase(&capped, BudgetPolicy::ThroughputMinimum, &ipm()),
        Err(MappingError::Infeasible { .. })
    ));
}

/// Cyclic task graphs (a ring with initial tokens) are handled by every path.
#[test]
fn rings_are_supported() {
    let configuration = ring(4, PaperParameters::default(), 4, None);
    let a = compute_mapping(&configuration, &ipm()).unwrap();
    let b = compute_mapping(&configuration, &cutting_plane()).unwrap();
    assert_eq!(a.total_budget(), b.total_budget());
}

/// Infeasible systems are reported as errors, not as silently wrong mappings,
/// by both solver back ends.
#[test]
fn infeasibility_reported_by_both_solvers() {
    let configuration = with_capacity_cap(&chain3(PaperParameters::default(), None), 1);
    // Capacity 1 forces per-task budgets around 34–39 cycles; three tasks of
    // the chain live on distinct processors so this *is* feasible — make it
    // infeasible by adding a competing job instead.
    let mut competing = configuration.clone();
    let graph = competing
        .task_graph(budget_buffer_suite::taskgraph::TaskGraphId::new(0))
        .clone();
    competing.add_task_graph(graph);
    for options in [ipm(), cutting_plane()] {
        match compute_mapping(&competing, &options) {
            Err(MappingError::Infeasible { .. })
            | Err(MappingError::ProcessorOverloaded { .. }) => {}
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }
}

/// Configurations round-trip through serde (JSON), so workloads can be stored
/// alongside experiment results.
#[test]
fn configurations_roundtrip_through_json() {
    let configuration = chain3(PaperParameters::default(), Some(5));
    let json = serde_json::to_string_pretty(&configuration).unwrap();
    let back: Configuration = serde_json::from_str(&json).unwrap();
    assert_eq!(back, configuration);
    // And the restored configuration solves to the same mapping.
    let a = compute_mapping(&configuration, &ipm()).unwrap();
    let b = compute_mapping(&back, &ipm()).unwrap();
    assert_eq!(a.total_budget(), b.total_budget());
}
