//! Integration tests reproducing the paper's experiments end to end.
//!
//! These tests assert the *shape* of every result reported in Section V of
//! the paper (absolute numbers are recorded in `EXPERIMENTS.md`).

use budget_buffer_suite::budget_buffer::explore::{budget_reduction_series, sweep_buffer_capacity};
use budget_buffer_suite::budget_buffer::{compute_mapping, SolveOptions};
use budget_buffer_suite::taskgraph::presets::{chain3, producer_consumer, PaperParameters};

fn options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

/// Figure 2(a): the budget needed by the producer/consumer job decreases
/// non-linearly with the buffer capacity and reaches its floor of
/// `̺·χ/µ = 4` Mcycles at 10 containers.
#[test]
fn figure_2a_budget_buffer_tradeoff() {
    let configuration = producer_consumer(PaperParameters::default(), None);
    let points = sweep_buffer_capacity(&configuration, 1..=10, &options()).unwrap();
    assert_eq!(points.len(), 10);

    // Both tasks always get the same budget (the instance is symmetric).
    for point in &points {
        let wa = point.mapping.budget_of_named(&configuration, "wa").unwrap();
        let wb = point.mapping.budget_of_named(&configuration, "wb").unwrap();
        assert_eq!(wa, wb, "capacity {}", point.capacity_cap);
    }

    // Monotonically decreasing budgets.
    let budgets: Vec<u64> = points
        .iter()
        .map(|p| p.mapping.budget_of_named(&configuration, "wa").unwrap())
        .collect();
    for w in budgets.windows(2) {
        assert!(
            w[1] <= w[0],
            "budgets must not increase with more buffer space"
        );
    }

    // End points: ≈36.1 → 37 rounded at one container; the floor of 4 at ten
    // containers (the paper: "a buffer capacity of 10 containers minimises
    // the budgets").
    assert_eq!(budgets[0], 37);
    assert_eq!(budgets[9], 4);
    assert!(budgets[4] < budgets[0] && budgets[4] > budgets[9]);
}

/// Figure 2(b): the per-container budget reduction is positive and
/// (weakly) diminishing towards the tail of the sweep — the trade-off is
/// non-linear, which is the paper's headline observation.
#[test]
fn figure_2b_budget_reduction_is_nonlinear() {
    let configuration = producer_consumer(PaperParameters::default(), None);
    let points = sweep_buffer_capacity(&configuration, 1..=10, &options()).unwrap();
    let deltas = budget_reduction_series(&points);
    assert_eq!(deltas.len(), 9);
    assert!(deltas.iter().all(|&d| d >= 0.0));
    assert!(deltas.iter().any(|&d| d > 0.0));
    // Non-linearity: the reductions are not all equal.
    let first = deltas[0];
    assert!(
        deltas.iter().any(|&d| (d - first).abs() > 0.5),
        "a linear trade-off would contradict the paper: {deltas:?}"
    );
    // The marginal benefit at the end of the sweep is smaller than at the start.
    assert!(deltas[deltas.len() - 1] < deltas[0]);
}

/// Figure 3: in the chain `wa → wb → wc` the budgets of the outer tasks are
/// reduced before the budget of the middle task, because `wb` interacts with
/// two buffers.
#[test]
fn figure_3_topology_dependence() {
    let configuration = chain3(PaperParameters::default(), None);
    let points = sweep_buffer_capacity(&configuration, 1..=10, &options()).unwrap();
    let mut middle_was_larger_somewhere = false;
    for point in &points {
        let wa = point.mapping.budget_of_named(&configuration, "wa").unwrap();
        let wb = point.mapping.budget_of_named(&configuration, "wb").unwrap();
        let wc = point.mapping.budget_of_named(&configuration, "wc").unwrap();
        assert_eq!(
            wa, wc,
            "outer tasks are symmetric (capacity {})",
            point.capacity_cap
        );
        assert!(
            wb + 1 >= wa,
            "the middle task must not be starved before the outer ones"
        );
        if wb > wa + 5 {
            middle_was_larger_somewhere = true;
        }
    }
    assert!(
        middle_was_larger_somewhere,
        "for scarce buffers the middle task must keep a clearly larger budget"
    );
    // At ten containers everything reaches the 4 Mcycle floor.
    let last = points.last().unwrap();
    for name in ["wa", "wb", "wc"] {
        assert_eq!(last.mapping.budget_of_named(&configuration, name), Some(4));
    }
}

/// Section V run-time claim: each joint solve takes milliseconds (we allow a
/// generous bound to stay robust on slow CI machines, the point is the order
/// of magnitude, not the exact figure).
#[test]
fn run_time_is_interactive() {
    let configuration = producer_consumer(PaperParameters::default(), Some(5));
    let start = std::time::Instant::now();
    let mapping = compute_mapping(&configuration, &options()).unwrap();
    let elapsed = start.elapsed();
    assert!(mapping.total_budget() > 0);
    assert!(
        elapsed.as_millis() < 2_000,
        "a single solve took {elapsed:?}, far beyond 'milliseconds'"
    );
}

/// Changing the objective weights moves along the trade-off curve, as the
/// paper's "different trade-offs can be made by changing the coefficients"
/// remark promises.
#[test]
fn weights_select_different_tradeoffs() {
    let configuration = producer_consumer(PaperParameters::default(), None);
    let budget_first = compute_mapping(&configuration, &options()).unwrap();
    let storage_first = compute_mapping(
        &configuration,
        &SolveOptions::default().prefer_storage_minimisation(),
    )
    .unwrap();
    assert!(budget_first.total_budget() < storage_first.total_budget());
    assert!(
        budget_first.total_storage(&configuration) > storage_first.total_storage(&configuration)
    );
}
