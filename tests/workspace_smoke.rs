//! Workspace smoke test: the umbrella crate's re-exports resolve, and the
//! paper's preset configurations build and validate.

use budget_buffer_suite::taskgraph::presets::{chain3, producer_consumer, PaperParameters};

/// Every member crate is reachable through its umbrella re-export.
#[test]
fn umbrella_reexports_resolve() {
    // Touch one symbol per re-exported crate so a missing or misnamed
    // re-export fails this test at compile time.
    let _ = budget_buffer_suite::conic::IpmSettings::default();
    let _ = budget_buffer_suite::linalg::DVector::zeros(3);
    let _ = budget_buffer_suite::scheduler_sim::SimulationSettings::default();
    let _ = budget_buffer_suite::srdf::SrdfGraph::new();
    let _ = budget_buffer_suite::taskgraph::ConfigurationBuilder::new();
    let _ = budget_buffer_suite::budget_buffer::SolveOptions::default();
}

#[test]
fn producer_consumer_preset_builds_a_valid_configuration() {
    let configuration = producer_consumer(PaperParameters::default(), Some(4));
    assert_eq!(configuration.num_tasks(), 2);
    assert_eq!(configuration.num_buffers(), 1);
    assert_eq!(configuration.num_processors(), 2);
    configuration.validate().expect("preset must validate");
}

#[test]
fn chain3_preset_builds_a_valid_configuration() {
    let configuration = chain3(PaperParameters::default(), None);
    assert_eq!(configuration.num_tasks(), 3);
    assert_eq!(configuration.num_buffers(), 2);
    configuration.validate().expect("preset must validate");
}

/// The presets solve end-to-end through the umbrella namespace.
#[test]
fn presets_solve_through_umbrella_namespace() {
    use budget_buffer_suite::budget_buffer::{compute_mapping, SolveOptions};

    let configuration = producer_consumer(PaperParameters::default(), Some(4));
    let mapping = compute_mapping(&configuration, &SolveOptions::default())
        .expect("paper's producer/consumer workload is feasible");
    assert!(mapping.total_budget() > 0);
}
