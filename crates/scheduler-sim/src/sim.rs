//! Discrete-event simulation of task graphs on TDM budget schedulers.
//!
//! The simulator executes every task graph of a configuration on its
//! processors: each processor runs a static TDM wheel built from the mapped
//! budgets, tasks fire when all input buffers hold data and all output
//! buffers have free containers, each firing executes the task's worst-case
//! execution time inside the task's TDM slots, and tokens move at firing
//! completion. The measured steady-state period of every task can then be
//! compared against the throughput requirement — an end-to-end, executable
//! check of the guarantee that the analytic mapping only promises on paper.

use crate::fifo::FifoState;
use crate::tdm::TdmWheel;
use bbs_taskgraph::{BufferRef, Configuration, ProcessorId, TaskRef};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;

/// Parameters of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationSettings {
    /// Number of firings of every task to simulate (the measured period uses
    /// the second half, skipping the start-up transient).
    pub iterations: usize,
    /// Safety bound on the number of processed events, to catch livelock in
    /// malformed set-ups.
    pub max_events: usize,
}

impl Default for SimulationSettings {
    fn default() -> Self {
        Self {
            iterations: 64,
            max_events: 1_000_000,
        }
    }
}

/// Errors reported by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// A task or buffer required by the configuration has no entry in the
    /// supplied budgets/capacities.
    MissingMapping {
        /// Description of the missing entry.
        detail: String,
    },
    /// The mapped budgets do not fit on a processor's TDM wheel.
    BudgetsDoNotFit {
        /// The overloaded processor.
        processor: ProcessorId,
    },
    /// Execution stalled: no task can make progress although not every task
    /// has finished its firings (e.g. a buffer is too small and the graph
    /// deadlocks).
    Deadlock {
        /// Simulation time at which the deadlock occurred.
        time: f64,
    },
    /// The event bound was exceeded.
    EventLimit,
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::MissingMapping { detail } => {
                write!(f, "missing mapping entry: {detail}")
            }
            SimulationError::BudgetsDoNotFit { processor } => {
                write!(f, "budgets do not fit on processor {processor}")
            }
            SimulationError::Deadlock { time } => {
                write!(f, "execution deadlocked at time {time}")
            }
            SimulationError::EventLimit => write!(f, "event limit exceeded"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    completion_times: BTreeMap<TaskRef, Vec<f64>>,
    high_water_marks: BTreeMap<BufferRef, u64>,
    total_time: f64,
}

impl SimulationResult {
    /// Completion times of every firing of a task.
    ///
    /// # Panics
    ///
    /// Panics if the task is unknown.
    pub fn completion_times(&self, task: TaskRef) -> &[f64] {
        &self.completion_times[&task]
    }

    /// Measured steady-state period of a task: the average distance between
    /// consecutive completions over the second half of the run.
    ///
    /// # Panics
    ///
    /// Panics if the task is unknown.
    pub fn measured_period(&self, task: TaskRef) -> f64 {
        let times = &self.completion_times[&task];
        assert!(times.len() >= 4, "too few firings to measure a period");
        let half = times.len() / 2;
        (times[times.len() - 1] - times[half]) / (times.len() - 1 - half) as f64
    }

    /// The worst (largest) measured period over all tasks.
    pub fn worst_period(&self) -> f64 {
        self.completion_times
            .keys()
            .map(|&t| self.measured_period(t))
            .fold(0.0, f64::max)
    }

    /// Highest fill level observed on a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is unknown.
    pub fn high_water_mark(&self, buffer: BufferRef) -> u64 {
        self.high_water_marks[&buffer]
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }
}

/// Event queue entry ordered by time (earliest first).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompletionEvent {
    time: f64,
    sequence: u64,
    task_index: usize,
}

impl Eq for CompletionEvent {}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the earliest time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates a mapped configuration.
///
/// `budgets` gives every task its budget in cycles, `capacities` gives every
/// buffer its capacity in containers (the values a mapping computed by the
/// `budget-buffer` crate provides).
///
/// # Errors
///
/// See [`SimulationError`].
pub fn simulate_mapping(
    configuration: &Configuration,
    budgets: &BTreeMap<TaskRef, u64>,
    capacities: &BTreeMap<BufferRef, u64>,
    settings: &SimulationSettings,
) -> Result<SimulationResult, SimulationError> {
    // --- Flatten tasks and buffers into dense indices ----------------------
    let tasks: Vec<TaskRef> = configuration.all_tasks();
    let buffers: Vec<BufferRef> = configuration.all_buffers();
    let task_index: HashMap<TaskRef, usize> =
        tasks.iter().enumerate().map(|(i, &t)| (t, i)).collect();

    // --- TDM wheels per processor ------------------------------------------
    let mut wheels: HashMap<ProcessorId, TdmWheel> = HashMap::new();
    let mut slot_of_task: Vec<usize> = vec![0; tasks.len()];
    for (pid, processor) in configuration.processors() {
        let on_processor = configuration.tasks_on_processor(pid);
        if on_processor.is_empty() {
            continue;
        }
        let mut slot_budgets = Vec::with_capacity(on_processor.len());
        for (slot, task_ref) in on_processor.iter().enumerate() {
            let budget = *budgets
                .get(task_ref)
                .ok_or_else(|| SimulationError::MissingMapping {
                    detail: format!("budget for task {task_ref}"),
                })?;
            slot_budgets.push(budget as f64);
            slot_of_task[task_index[task_ref]] = slot;
        }
        let total: f64 = slot_budgets.iter().sum::<f64>() + processor.scheduling_overhead();
        if total > processor.replenishment_interval() + 1e-9 {
            return Err(SimulationError::BudgetsDoNotFit { processor: pid });
        }
        wheels.insert(
            pid,
            TdmWheel::new(processor.replenishment_interval(), &slot_budgets),
        );
    }

    // --- FIFO states ---------------------------------------------------------
    let mut fifos: Vec<FifoState> = Vec::with_capacity(buffers.len());
    for buffer_ref in &buffers {
        let buffer = configuration
            .task_graph(buffer_ref.graph)
            .buffer(buffer_ref.buffer);
        let capacity =
            *capacities
                .get(buffer_ref)
                .ok_or_else(|| SimulationError::MissingMapping {
                    detail: format!("capacity for buffer {buffer_ref}"),
                })?;
        if capacity < buffer.initial_tokens() {
            return Err(SimulationError::MissingMapping {
                detail: format!(
                    "capacity {capacity} of buffer {buffer_ref} is below its initial tokens"
                ),
            });
        }
        fifos.push(FifoState::new(capacity, buffer.initial_tokens()));
    }

    // Input/output buffer indices per task.
    let mut inputs: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    for (buffer_pos, buffer_ref) in buffers.iter().enumerate() {
        let buffer = configuration
            .task_graph(buffer_ref.graph)
            .buffer(buffer_ref.buffer);
        let producer = TaskRef::new(buffer_ref.graph, buffer.producer());
        let consumer = TaskRef::new(buffer_ref.graph, buffer.consumer());
        outputs[task_index[&producer]].push(buffer_pos);
        inputs[task_index[&consumer]].push(buffer_pos);
    }

    // --- Event loop -----------------------------------------------------------
    let mut running: Vec<bool> = vec![false; tasks.len()];
    let mut completions: Vec<Vec<f64>> = vec![Vec::new(); tasks.len()];
    let mut queue: BinaryHeap<CompletionEvent> = BinaryHeap::new();
    let mut sequence = 0u64;
    let mut now = 0.0f64;
    let mut events = 0usize;

    let try_start = |task: usize,
                     now: f64,
                     fifos: &mut Vec<FifoState>,
                     running: &mut Vec<bool>,
                     completions: &Vec<Vec<f64>>,
                     queue: &mut BinaryHeap<CompletionEvent>,
                     sequence: &mut u64| {
        if running[task] || completions[task].len() >= settings.iterations {
            return;
        }
        let ready = inputs[task].iter().all(|&b| fifos[b].has_data())
            && outputs[task].iter().all(|&b| fifos[b].has_space());
        if !ready {
            return;
        }
        let task_ref = tasks[task];
        let graph = configuration.task_graph(task_ref.graph);
        let task_data = graph.task(task_ref.task);
        let wheel = &wheels[&task_data.processor()];
        let finish = wheel.finish_time(slot_of_task[task], now, task_data.wcet());
        running[task] = true;
        *sequence += 1;
        queue.push(CompletionEvent {
            time: finish,
            sequence: *sequence,
            task_index: task,
        });
    };

    // Kick off every task that can start at time zero.
    for task in 0..tasks.len() {
        try_start(
            task,
            0.0,
            &mut fifos,
            &mut running,
            &completions,
            &mut queue,
            &mut sequence,
        );
    }

    while let Some(event) = queue.pop() {
        events += 1;
        if events > settings.max_events {
            return Err(SimulationError::EventLimit);
        }
        now = event.time;
        let task = event.task_index;
        running[task] = false;
        // Move the tokens: consume one container from every input, produce
        // one into every output (space was checked at start; the producer is
        // the only writer so space cannot have disappeared).
        for &b in &inputs[task] {
            fifos[b].consume();
        }
        for &b in &outputs[task] {
            fifos[b].produce();
        }
        completions[task].push(now);

        // The completion may enable this task again, its consumers (new
        // data) and its producers (new space).
        let mut candidates = vec![task];
        for &b in &outputs[task] {
            let consumer = TaskRef::new(buffers[b].graph, {
                configuration
                    .task_graph(buffers[b].graph)
                    .buffer(buffers[b].buffer)
                    .consumer()
            });
            candidates.push(task_index[&consumer]);
        }
        for &b in &inputs[task] {
            let producer = TaskRef::new(buffers[b].graph, {
                configuration
                    .task_graph(buffers[b].graph)
                    .buffer(buffers[b].buffer)
                    .producer()
            });
            candidates.push(task_index[&producer]);
        }
        for candidate in candidates {
            try_start(
                candidate,
                now,
                &mut fifos,
                &mut running,
                &completions,
                &mut queue,
                &mut sequence,
            );
        }

        if completions.iter().all(|c| c.len() >= settings.iterations) {
            break;
        }
    }

    if completions.iter().any(|c| c.len() < settings.iterations) {
        return Err(SimulationError::Deadlock { time: now });
    }

    Ok(SimulationResult {
        completion_times: tasks
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, completions[i].clone()))
            .collect(),
        high_water_marks: buffers
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, fifos[i].high_water_mark()))
            .collect(),
        total_time: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};
    use bbs_taskgraph::{find_buffer, find_task};

    fn mapping_maps(
        configuration: &Configuration,
        budget: u64,
        capacity: u64,
    ) -> (BTreeMap<TaskRef, u64>, BTreeMap<BufferRef, u64>) {
        let budgets = configuration
            .all_tasks()
            .into_iter()
            .map(|t| (t, budget))
            .collect();
        let capacities = configuration
            .all_buffers()
            .into_iter()
            .map(|b| (b, capacity))
            .collect();
        (budgets, capacities)
    }

    #[test]
    fn producer_consumer_meets_period_with_adequate_resources() {
        let c = producer_consumer(PaperParameters::default(), None);
        // Budget 8 and capacity 10: the analytic model guarantees period 10;
        // the simulated period must be at most that.
        let (budgets, capacities) = mapping_maps(&c, 8, 10);
        let result =
            simulate_mapping(&c, &budgets, &capacities, &SimulationSettings::default()).unwrap();
        assert!(result.worst_period() <= 10.0 + 1e-9);
        assert!(result.total_time() > 0.0);
    }

    #[test]
    fn tight_buffer_slows_the_pipeline_down() {
        let c = producer_consumer(PaperParameters::default(), None);
        let (budgets, small_cap) = mapping_maps(&c, 8, 1);
        let (_, large_cap) = mapping_maps(&c, 8, 10);
        let slow =
            simulate_mapping(&c, &budgets, &small_cap, &SimulationSettings::default()).unwrap();
        let fast =
            simulate_mapping(&c, &budgets, &large_cap, &SimulationSettings::default()).unwrap();
        assert!(
            slow.worst_period() > fast.worst_period(),
            "a one-container buffer must throttle the pipeline"
        );
    }

    #[test]
    fn measured_period_bounded_by_dataflow_model_bound() {
        // The dataflow model predicts a period of max(ρχ/β, cycle bound);
        // simulation of the real TDM wheel must never be slower than the
        // conservative model in the long run. TDM execution is bursty (a
        // task may fire β/χ times back to back inside its slot and then wait
        // a whole interval), so the finite measurement window carries an
        // error of up to one replenishment interval spread over the window —
        // use a long run and a corresponding tolerance.
        let c = producer_consumer(PaperParameters::default(), None);
        let settings = SimulationSettings {
            iterations: 512,
            ..SimulationSettings::default()
        };
        let window_error = 40.0 / 255.0;
        for budget in [4u64, 6, 8, 12, 20, 40] {
            for capacity in [2u64, 4, 10] {
                let (budgets, capacities) = mapping_maps(&c, budget, capacity);
                let result = simulate_mapping(&c, &budgets, &capacities, &settings).unwrap();
                let b = budget as f64;
                // Conservative model: actors (40−β), 40/β; big cycle over γ tokens.
                let cycle = 2.0 * ((40.0 - b) + 40.0 / b) / capacity as f64;
                let self_loop = 40.0 / b;
                let model_bound = cycle.max(self_loop);
                assert!(
                    result.worst_period() <= model_bound + window_error,
                    "budget {budget}, capacity {capacity}: measured {} > model {model_bound}",
                    result.worst_period()
                );
            }
        }
    }

    #[test]
    fn chain_simulation_tracks_high_water_marks() {
        let c = chain3(PaperParameters::default(), None);
        let (budgets, capacities) = mapping_maps(&c, 10, 4);
        let result =
            simulate_mapping(&c, &budgets, &capacities, &SimulationSettings::default()).unwrap();
        for b in c.all_buffers() {
            assert!(result.high_water_mark(b) <= 4);
            assert!(result.high_water_mark(b) >= 1);
        }
        let wa = find_task(&c, "wa").unwrap();
        assert_eq!(result.completion_times(wa).len(), 64);
    }

    #[test]
    fn missing_budget_is_reported() {
        let c = producer_consumer(PaperParameters::default(), None);
        let (_, capacities) = mapping_maps(&c, 8, 4);
        let err = simulate_mapping(
            &c,
            &BTreeMap::new(),
            &capacities,
            &SimulationSettings::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimulationError::MissingMapping { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn overfull_processor_is_reported() {
        let c = producer_consumer(PaperParameters::default(), None);
        let (budgets, capacities) = mapping_maps(&c, 50, 4);
        let err = simulate_mapping(&c, &budgets, &capacities, &SimulationSettings::default())
            .unwrap_err();
        assert!(matches!(err, SimulationError::BudgetsDoNotFit { .. }));
    }

    #[test]
    fn zero_capacity_buffer_deadlocks() {
        let c = producer_consumer(PaperParameters::default(), None);
        let (budgets, mut capacities) = mapping_maps(&c, 8, 4);
        let bab = find_buffer(&c, "bab").unwrap();
        capacities.insert(bab, 0);
        let err = simulate_mapping(&c, &budgets, &capacities, &SimulationSettings::default())
            .unwrap_err();
        assert!(matches!(err, SimulationError::Deadlock { .. }));
    }

    #[test]
    fn larger_budget_never_slows_down() {
        let c = chain3(PaperParameters::default(), None);
        let mut previous = f64::INFINITY;
        for budget in [5u64, 10, 20, 39] {
            let (budgets, capacities) = mapping_maps(&c, budget, 6);
            let result =
                simulate_mapping(&c, &budgets, &capacities, &SimulationSettings::default())
                    .unwrap();
            assert!(
                result.worst_period() <= previous + 1e-9,
                "budget {budget} slowed the pipeline down"
            );
            previous = result.worst_period();
        }
    }
}
