//! Replay validation: measured behaviour against the mapping's guarantees.
//!
//! [`simulate_mapping`](crate::simulate_mapping) answers *what happened*
//! when a mapping executes; this module answers *was it sound*. A
//! [`MappingValidation`] replays a computed (budget, buffer) assignment on
//! the discrete-event simulator and compares, per task, the measured
//! steady-state period against the owning graph's throughput requirement,
//! and, per buffer, the observed high-water mark against the computed
//! capacity. Everything is a pure function of (configuration, budgets,
//! capacities, settings), so validation outcomes are deterministic no
//! matter where or when they are computed.

use std::collections::BTreeMap;

use crate::sim::{simulate_mapping, SimulationError, SimulationResult, SimulationSettings};
use bbs_taskgraph::{BufferRef, Configuration, TaskRef};

/// One task's measured steady-state period against its graph's requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodCheck {
    /// The task whose period was measured.
    pub task: TaskRef,
    /// Measured steady-state period (average over the run's second half).
    pub measured_period: f64,
    /// The owning task graph's required period.
    pub required_period: f64,
}

impl PeriodCheck {
    /// Whether the measured period meets the requirement within `tolerance`.
    pub fn meets_requirement(&self, tolerance: f64) -> bool {
        self.measured_period <= self.required_period + tolerance
    }
}

/// One buffer's observed high-water mark against its computed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferCheck {
    /// The buffer whose fill level was observed.
    pub buffer: BufferRef,
    /// Highest fill level (in containers) observed during the replay.
    pub high_water_mark: u64,
    /// The capacity the solver computed for this buffer.
    pub capacity: u64,
}

impl BufferCheck {
    /// Whether the observed fill level stayed within the computed capacity.
    pub fn within_capacity(&self) -> bool {
        self.high_water_mark <= self.capacity
    }
}

/// The outcome of replaying one computed mapping on the simulator.
///
/// Built by [`validate_mapping`]; the per-task and per-buffer checks are in
/// the deterministic `BTreeMap` iteration order of the configuration's
/// tasks and buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingValidation {
    /// Worst (largest) measured period over all tasks; infinite when the
    /// replay itself failed.
    pub measured_period: f64,
    /// Largest required period over all task graphs (the scalar headline;
    /// the per-task checks compare against each graph's own requirement).
    pub required_period: f64,
    /// Measurement slack granted to the finite-length replay (start-up
    /// transient amortised over the steady-state half of the run).
    pub tolerance: f64,
    /// Per-task period checks, in task order.
    pub period_checks: Vec<PeriodCheck>,
    /// Per-buffer capacity checks, in buffer order.
    pub buffer_checks: Vec<BufferCheck>,
    /// The replay error, when the simulation itself could not complete —
    /// a deadlocked or mis-mapped configuration is itself a violation.
    pub error: Option<SimulationError>,
}

impl MappingValidation {
    /// Whether every task met its graph's period requirement (false when
    /// the replay failed).
    pub fn period_ok(&self) -> bool {
        self.error.is_none()
            && self
                .period_checks
                .iter()
                .all(|check| check.meets_requirement(self.tolerance))
    }

    /// Number of buffers whose observed fill exceeded the computed
    /// capacity.
    pub fn buffer_violations(&self) -> u64 {
        self.buffer_checks
            .iter()
            .filter(|check| !check.within_capacity())
            .count() as u64
    }

    /// Whether the replay confirms the mapping: it completed, every task
    /// met its period requirement, and no buffer overflowed its capacity.
    pub fn is_sound(&self) -> bool {
        self.period_ok() && self.buffer_violations() == 0
    }
}

/// The measurement slack a finite replay of `iterations` firings deserves:
/// the start-up transient of at most one replenishment interval, amortised
/// over the `iterations / 2 - 1` steady-state firings the measured period
/// averages.
pub fn measurement_tolerance(configuration: &Configuration, iterations: usize) -> f64 {
    let max_replenishment = configuration
        .processors()
        .map(|(_, p)| p.replenishment_interval())
        .fold(0.0f64, f64::max);
    max_replenishment / ((iterations / 2).saturating_sub(1).max(1)) as f64
}

/// Replays a computed mapping and grades the result.
///
/// The budgets and capacities are the values a solved mapping provides.
/// A replay that cannot complete (missing mapping entries, budgets that do
/// not fit a TDM wheel, deadlock, event-limit blow-up) yields a validation
/// with [`error`](MappingValidation::error) set, an infinite measured
/// period, and no checks — unconditionally unsound, never a panic.
pub fn validate_mapping(
    configuration: &Configuration,
    budgets: &BTreeMap<TaskRef, u64>,
    capacities: &BTreeMap<BufferRef, u64>,
    settings: &SimulationSettings,
) -> MappingValidation {
    let required_period = configuration
        .task_graphs()
        .map(|(_, graph)| graph.period())
        .fold(0.0f64, f64::max);
    let tolerance = measurement_tolerance(configuration, settings.iterations);
    match simulate_mapping(configuration, budgets, capacities, settings) {
        Ok(result) => graded(
            configuration,
            capacities,
            &result,
            required_period,
            tolerance,
        ),
        Err(error) => MappingValidation {
            measured_period: f64::INFINITY,
            required_period,
            tolerance,
            period_checks: Vec::new(),
            buffer_checks: Vec::new(),
            error: Some(error),
        },
    }
}

fn graded(
    configuration: &Configuration,
    capacities: &BTreeMap<BufferRef, u64>,
    result: &SimulationResult,
    required_period: f64,
    tolerance: f64,
) -> MappingValidation {
    let mut period_checks = Vec::new();
    for (graph_id, graph) in configuration.task_graphs() {
        for (task_id, _) in graph.tasks() {
            let task = TaskRef::new(graph_id, task_id);
            period_checks.push(PeriodCheck {
                task,
                measured_period: result.measured_period(task),
                required_period: graph.period(),
            });
        }
    }
    let buffer_checks = capacities
        .iter()
        .map(|(&buffer, &capacity)| BufferCheck {
            buffer,
            high_water_mark: result.high_water_mark(buffer),
            capacity,
        })
        .collect();
    MappingValidation {
        measured_period: result.worst_period(),
        required_period,
        tolerance,
        period_checks,
        buffer_checks,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};

    fn solved_producer_consumer() -> (
        Configuration,
        BTreeMap<TaskRef, u64>,
        BTreeMap<BufferRef, u64>,
    ) {
        let configuration = producer_consumer(PaperParameters::default(), None);
        let mut budgets = BTreeMap::new();
        let mut capacities = BTreeMap::new();
        for (graph_id, graph) in configuration.task_graphs() {
            for (task_id, _) in graph.tasks() {
                budgets.insert(TaskRef::new(graph_id, task_id), 40);
            }
            for (buffer_id, _) in graph.buffers() {
                capacities.insert(BufferRef::new(graph_id, buffer_id), 4);
            }
        }
        (configuration, budgets, capacities)
    }

    #[test]
    fn a_generous_mapping_validates_as_sound() {
        let (configuration, budgets, capacities) = solved_producer_consumer();
        let validation = validate_mapping(
            &configuration,
            &budgets,
            &capacities,
            &SimulationSettings::default(),
        );
        assert!(validation.error.is_none());
        assert!(validation.period_ok());
        assert_eq!(validation.buffer_violations(), 0);
        assert!(validation.is_sound());
        assert_eq!(validation.period_checks.len(), 2);
        assert_eq!(validation.buffer_checks.len(), 1);
        assert!(validation.measured_period.is_finite());
        // The scalar headline agrees with the per-task checks.
        let worst = validation
            .period_checks
            .iter()
            .map(|c| c.measured_period)
            .fold(0.0f64, f64::max);
        assert_eq!(validation.measured_period, worst);
    }

    #[test]
    fn starved_budgets_fail_the_period_check() {
        let (configuration, mut budgets, capacities) = solved_producer_consumer();
        for budget in budgets.values_mut() {
            *budget = 1;
        }
        let validation = validate_mapping(
            &configuration,
            &budgets,
            &capacities,
            &SimulationSettings::default(),
        );
        assert!(validation.error.is_none());
        assert!(!validation.period_ok());
        assert!(!validation.is_sound());
    }

    #[test]
    fn a_broken_replay_is_an_unsound_validation_not_a_panic() {
        let (configuration, budgets, _) = solved_producer_consumer();
        let empty_capacities = BTreeMap::new();
        let validation = validate_mapping(
            &configuration,
            &budgets,
            &empty_capacities,
            &SimulationSettings::default(),
        );
        assert!(matches!(
            validation.error,
            Some(SimulationError::MissingMapping { .. })
        ));
        assert!(validation.measured_period.is_infinite());
        assert!(!validation.is_sound());
        assert!(validation.period_checks.is_empty());
    }

    #[test]
    fn tolerance_shrinks_with_longer_replays() {
        let (configuration, _, _) = solved_producer_consumer();
        let short = measurement_tolerance(&configuration, 64);
        let long = measurement_tolerance(&configuration, 256);
        assert!(long < short);
        assert!(long > 0.0);
    }
}
