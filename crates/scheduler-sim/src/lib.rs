//! Discrete-event simulation of TDM budget schedulers.
//!
//! The analytic side of this workspace (`budget-buffer`, `bbs-srdf`) proves
//! that a computed mapping satisfies its throughput requirement under the
//! conservative dataflow model. This crate closes the loop by *executing*
//! the mapped task graphs on simulated processors with TDM budget
//! schedulers and bounded FIFO buffers and measuring the achieved period —
//! the paper's platform abstraction made runnable.
//!
//! # Example
//!
//! ```
//! use bbs_scheduler_sim::{simulate_mapping, SimulationSettings};
//! use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), bbs_scheduler_sim::SimulationError> {
//! let configuration = producer_consumer(PaperParameters::default(), None);
//! let budgets: BTreeMap<_, _> = configuration.all_tasks().into_iter().map(|t| (t, 8)).collect();
//! let capacities: BTreeMap<_, _> =
//!     configuration.all_buffers().into_iter().map(|b| (b, 10)).collect();
//! let result = simulate_mapping(&configuration, &budgets, &capacities,
//!                               &SimulationSettings::default())?;
//! assert!(result.worst_period() <= 10.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod fifo;
mod sim;
mod tdm;
mod validate;

pub use fifo::FifoState;
pub use sim::{simulate_mapping, SimulationError, SimulationResult, SimulationSettings};
pub use tdm::{TdmSlot, TdmWheel};
pub use validate::{
    measurement_tolerance, validate_mapping, BufferCheck, MappingValidation, PeriodCheck,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TdmWheel>();
        assert_send_sync::<FifoState>();
        assert_send_sync::<SimulationResult>();
        assert_send_sync::<SimulationError>();
        assert_send_sync::<SimulationSettings>();
        assert_send_sync::<MappingValidation>();
    }
}
