//! Time-division-multiplexing budget schedulers.
//!
//! A TDM scheduler divides every replenishment interval `̺(p)` of a
//! processor into one slot per task. A task bound to the processor receives
//! its budget `β(w)` cycles in every interval, at a fixed offset. This is
//! the canonical budget scheduler of the paper: each task is guaranteed at
//! least `β(w)` cycles in every interval of length `̺(p)`, independent of
//! the other tasks.

use serde::{Deserialize, Serialize};

/// One task's slot in a TDM wheel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdmSlot {
    /// Offset of the slot from the start of the replenishment interval.
    pub offset: f64,
    /// Length of the slot (the task's budget), in cycles.
    pub budget: f64,
}

/// A TDM wheel: the static slot table of one processor.
///
/// # Example
///
/// ```
/// use bbs_scheduler_sim::TdmWheel;
///
/// // A 40-cycle interval with two slots of 10 and 5 cycles.
/// let wheel = TdmWheel::new(40.0, &[10.0, 5.0]);
/// // Task 0 executes 12 cycles of work: 10 in the first interval, the rest
/// // at the start of its slot in the next interval.
/// let finish = wheel.finish_time(0, 0.0, 12.0);
/// assert!((finish - 42.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdmWheel {
    replenishment_interval: f64,
    slots: Vec<TdmSlot>,
}

impl TdmWheel {
    /// Creates a wheel for the given replenishment interval, assigning the
    /// budgets back to back starting at offset zero.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive, if any budget is not
    /// positive, or if the budgets do not fit in the interval.
    pub fn new(replenishment_interval: f64, budgets: &[f64]) -> Self {
        assert!(
            replenishment_interval > 0.0 && replenishment_interval.is_finite(),
            "replenishment interval must be positive"
        );
        let mut offset = 0.0;
        let mut slots = Vec::with_capacity(budgets.len());
        for &budget in budgets {
            assert!(
                budget > 0.0 && budget.is_finite(),
                "budgets must be positive"
            );
            slots.push(TdmSlot { offset, budget });
            offset += budget;
        }
        assert!(
            offset <= replenishment_interval + 1e-9,
            "budgets ({offset}) exceed the replenishment interval ({replenishment_interval})"
        );
        Self {
            replenishment_interval,
            slots,
        }
    }

    /// The replenishment interval of the wheel.
    pub fn replenishment_interval(&self) -> f64 {
        self.replenishment_interval
    }

    /// The slot of a task (by slot index).
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range.
    pub fn slot(&self, index: usize) -> TdmSlot {
        self.slots[index]
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total allocated budget per interval.
    pub fn allocated(&self) -> f64 {
        self.slots.iter().map(|s| s.budget).sum()
    }

    /// Time at which `work` cycles of execution complete for the task in
    /// slot `slot_index`, when the work becomes ready at `ready_time` and
    /// the task may only execute inside its own slots.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range or `work` is negative.
    pub fn finish_time(&self, slot_index: usize, ready_time: f64, work: f64) -> f64 {
        assert!(work >= 0.0, "work must be non-negative");
        let slot = self.slots[slot_index];
        if work == 0.0 {
            return ready_time;
        }
        let period = self.replenishment_interval;
        let mut remaining = work;
        // Index of the interval that contains (or follows) the ready time.
        let mut interval = (ready_time / period).floor();
        loop {
            let slot_start = interval * period + slot.offset;
            let slot_end = slot_start + slot.budget;
            let enter = ready_time.max(slot_start);
            if enter < slot_end {
                let available = slot_end - enter;
                if remaining <= available + 1e-12 {
                    return enter + remaining;
                }
                remaining -= available;
            }
            interval += 1.0;
        }
    }

    /// The amount of budget time available to the task in slot `slot_index`
    /// during the window `[from, to)` — used by tests to validate the
    /// guarantee of at least `β` cycles per interval.
    pub fn available_budget(&self, slot_index: usize, from: f64, to: f64) -> f64 {
        let slot = self.slots[slot_index];
        let period = self.replenishment_interval;
        let mut total = 0.0;
        let mut interval = (from / period).floor();
        loop {
            let slot_start = interval * period + slot.offset;
            let slot_end = slot_start + slot.budget;
            if slot_start >= to {
                break;
            }
            let lo = slot_start.max(from);
            let hi = slot_end.min(to);
            if hi > lo {
                total += hi - lo;
            }
            interval += 1.0;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slots_are_packed_back_to_back() {
        let wheel = TdmWheel::new(40.0, &[10.0, 5.0, 8.0]);
        assert_eq!(wheel.num_slots(), 3);
        assert_eq!(wheel.slot(0).offset, 0.0);
        assert_eq!(wheel.slot(1).offset, 10.0);
        assert_eq!(wheel.slot(2).offset, 15.0);
        assert_eq!(wheel.allocated(), 23.0);
        assert_eq!(wheel.replenishment_interval(), 40.0);
    }

    #[test]
    fn finish_time_within_one_slot() {
        let wheel = TdmWheel::new(40.0, &[10.0, 5.0]);
        assert_eq!(wheel.finish_time(0, 0.0, 4.0), 4.0);
        // Ready in the middle of its slot.
        assert_eq!(wheel.finish_time(0, 6.0, 4.0), 10.0);
        // Second task's slot starts at 10.
        assert_eq!(wheel.finish_time(1, 0.0, 3.0), 13.0);
    }

    #[test]
    fn finish_time_spans_intervals() {
        let wheel = TdmWheel::new(40.0, &[10.0, 5.0]);
        // 25 cycles of work for slot 0: 10 + 10 + 5 → finishes at 2·40 + 5.
        assert_eq!(wheel.finish_time(0, 0.0, 25.0), 85.0);
        // Ready after its slot has passed: waits for the next interval.
        assert_eq!(wheel.finish_time(0, 12.0, 1.0), 41.0);
    }

    #[test]
    fn zero_work_is_immediate() {
        let wheel = TdmWheel::new(40.0, &[10.0]);
        assert_eq!(wheel.finish_time(0, 7.5, 0.0), 7.5);
    }

    #[test]
    fn budget_guarantee_over_any_interval() {
        let wheel = TdmWheel::new(40.0, &[10.0, 5.0]);
        // Any window of one replenishment interval contains at least… well,
        // the guarantee is per aligned interval; check aligned windows.
        for k in 0..5 {
            let from = k as f64 * 40.0;
            assert!((wheel.available_budget(0, from, from + 40.0) - 10.0).abs() < 1e-9);
            assert!((wheel.available_budget(1, from, from + 40.0) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "exceed the replenishment interval")]
    fn overfull_wheel_is_rejected() {
        let _ = TdmWheel::new(40.0, &[30.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "budgets must be positive")]
    fn zero_budget_rejected() {
        let _ = TdmWheel::new(40.0, &[0.0]);
    }

    proptest! {
        #[test]
        fn prop_finish_time_is_consistent_with_available_budget(
            budget in 1.0f64..15.0,
            other in 1.0f64..15.0,
            ready in 0.0f64..80.0,
            work in 0.1f64..60.0,
        ) {
            let wheel = TdmWheel::new(40.0, &[budget, other]);
            let finish = wheel.finish_time(0, ready, work);
            prop_assert!(finish >= ready);
            // The budget time available between ready and finish equals the work.
            let available = wheel.available_budget(0, ready, finish);
            prop_assert!((available - work).abs() < 1e-6);
        }

        #[test]
        fn prop_finish_bounded_by_worst_case_waiting(
            budget in 1.0f64..20.0,
            ready in 0.0f64..40.0,
            work in 0.1f64..5.0,
        ) {
            // A task with budget β in interval ̺ executing χ ≤ β cycles
            // finishes within ̺ − β + ̺·χ/β of becoming ready — the bound the
            // dataflow model of the paper uses.
            let wheel = TdmWheel::new(40.0, &[budget]);
            let work = work.min(budget);
            let finish = wheel.finish_time(0, ready, work);
            let bound = ready + (40.0 - budget) + 40.0 * work / budget;
            prop_assert!(finish <= bound + 1e-6,
                "finish {finish} exceeds model bound {bound}");
        }
    }
}
