//! Bounded FIFO channel state.

use serde::{Deserialize, Serialize};

/// Runtime state of one bounded FIFO buffer: how many containers are
/// currently filled, how many the buffer can hold, and the high-water mark
/// observed so far.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoState {
    capacity: u64,
    filled: u64,
    high_water_mark: u64,
}

impl FifoState {
    /// Creates a FIFO with the given capacity and initial fill level.
    ///
    /// # Panics
    ///
    /// Panics if the initial fill exceeds the capacity.
    pub fn new(capacity: u64, initially_filled: u64) -> Self {
        assert!(
            initially_filled <= capacity,
            "initial fill {initially_filled} exceeds capacity {capacity}"
        );
        Self {
            capacity,
            filled: initially_filled,
            high_water_mark: initially_filled,
        }
    }

    /// Capacity in containers.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently filled containers.
    pub fn filled(&self) -> u64 {
        self.filled
    }

    /// Currently free containers.
    pub fn free(&self) -> u64 {
        self.capacity - self.filled
    }

    /// Largest fill level observed since construction.
    pub fn high_water_mark(&self) -> u64 {
        self.high_water_mark
    }

    /// Returns `true` when at least one container holds data.
    pub fn has_data(&self) -> bool {
        self.filled > 0
    }

    /// Returns `true` when at least one container is free.
    pub fn has_space(&self) -> bool {
        self.filled < self.capacity
    }

    /// Produces one container of data.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (the simulator only produces after
    /// checking space, so this indicates a scheduling bug).
    pub fn produce(&mut self) {
        assert!(self.has_space(), "produce on a full FIFO");
        self.filled += 1;
        self.high_water_mark = self.high_water_mark.max(self.filled);
    }

    /// Consumes one container of data.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn consume(&mut self) {
        assert!(self.has_data(), "consume on an empty FIFO");
        self.filled -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_consume_cycle() {
        let mut f = FifoState::new(2, 0);
        assert!(f.has_space());
        assert!(!f.has_data());
        f.produce();
        f.produce();
        assert!(!f.has_space());
        assert_eq!(f.filled(), 2);
        assert_eq!(f.free(), 0);
        f.consume();
        assert_eq!(f.filled(), 1);
        assert_eq!(f.high_water_mark(), 2);
        assert_eq!(f.capacity(), 2);
    }

    #[test]
    fn initial_tokens_counted() {
        let f = FifoState::new(4, 3);
        assert_eq!(f.filled(), 3);
        assert_eq!(f.free(), 1);
        assert_eq!(f.high_water_mark(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn overfull_initialisation_rejected() {
        let _ = FifoState::new(2, 3);
    }

    #[test]
    #[should_panic(expected = "produce on a full FIFO")]
    fn produce_on_full_panics() {
        let mut f = FifoState::new(1, 1);
        f.produce();
    }

    #[test]
    #[should_panic(expected = "consume on an empty FIFO")]
    fn consume_on_empty_panics() {
        let mut f = FifoState::new(1, 0);
        f.consume();
    }
}
