//! Cone descriptions and Jordan-algebra operations.
//!
//! The solver works with the standard conic form `min cᵀx  s.t.  Gx + s = h,
//! s ∈ K`, where `K` is a Cartesian product of a nonnegative orthant and a
//! number of second-order (Lorentz) cones. This module describes such
//! products and provides the per-block operations the interior-point method
//! needs: identity elements, interior membership, Jordan products, Jordan
//! divisions and maximum step lengths to the cone boundary.

use bbs_linalg::DVector;
use std::fmt;

/// One block of the cone product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConeBlock {
    /// A nonnegative orthant of the given dimension: `s_i ≥ 0`.
    NonNeg(usize),
    /// A second-order (Lorentz) cone of the given dimension `m ≥ 1`:
    /// `s_0 ≥ ‖s_{1..m}‖₂`.
    Soc(usize),
}

impl ConeBlock {
    /// Dimension (number of scalar entries) of the block.
    pub fn dim(&self) -> usize {
        match *self {
            ConeBlock::NonNeg(n) => n,
            ConeBlock::Soc(n) => n,
        }
    }

    /// Barrier degree contribution of the block (number of orthant entries,
    /// or 1 per second-order cone).
    pub fn degree(&self) -> usize {
        match *self {
            ConeBlock::NonNeg(n) => n,
            ConeBlock::Soc(n) => usize::from(n > 0),
        }
    }
}

impl fmt::Display for ConeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConeBlock::NonNeg(n) => write!(f, "R+^{n}"),
            ConeBlock::Soc(n) => write!(f, "Q^{n}"),
        }
    }
}

/// A Cartesian product of cone blocks describing the full cone `K`.
///
/// # Example
///
/// ```
/// use bbs_conic::{Cone, ConeBlock};
///
/// let cone = Cone::new(vec![ConeBlock::NonNeg(3), ConeBlock::Soc(3)]);
/// assert_eq!(cone.dim(), 6);
/// assert_eq!(cone.degree(), 4);
/// let e = cone.identity();
/// assert!(cone.is_interior(&e));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cone {
    blocks: Vec<ConeBlock>,
}

impl Cone {
    /// Creates a cone from its blocks. Zero-dimensional blocks are dropped.
    pub fn new(blocks: Vec<ConeBlock>) -> Self {
        Self {
            blocks: blocks.into_iter().filter(|b| b.dim() > 0).collect(),
        }
    }

    /// The blocks making up this cone.
    pub fn blocks(&self) -> &[ConeBlock] {
        &self.blocks
    }

    /// Total dimension (number of scalar entries).
    pub fn dim(&self) -> usize {
        self.blocks.iter().map(ConeBlock::dim).sum()
    }

    /// Barrier degree of the cone (used for the duality-gap normalisation).
    pub fn degree(&self) -> usize {
        self.blocks.iter().map(ConeBlock::degree).sum()
    }

    /// Returns `true` when the cone has no entries.
    pub fn is_empty(&self) -> bool {
        self.dim() == 0
    }

    /// Iterates over `(offset, block)` pairs.
    pub fn iter_offsets(&self) -> impl Iterator<Item = (usize, ConeBlock)> + '_ {
        let mut offset = 0;
        self.blocks.iter().map(move |&b| {
            let o = offset;
            offset += b.dim();
            (o, b)
        })
    }

    /// The identity element `e` of the cone's Jordan algebra
    /// (all-ones for the orthant, `(1, 0, …, 0)` per second-order cone).
    pub fn identity(&self) -> DVector {
        let mut e = DVector::zeros(self.dim());
        for (off, block) in self.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    for i in 0..n {
                        e[off + i] = 1.0;
                    }
                }
                ConeBlock::Soc(_) => e[off] = 1.0,
            }
        }
        e
    }

    /// Returns `true` when `v` lies in the interior of the cone.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn is_interior(&self, v: &DVector) -> bool {
        self.margin(v) > 0.0
    }

    /// Returns `true` when `v` lies in the (closed) cone, to within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn contains(&self, v: &DVector, tol: f64) -> bool {
        self.margin(v) >= -tol
    }

    /// Signed distance-like margin of `v` to the cone boundary: positive in
    /// the interior, negative outside. For the orthant this is the minimum
    /// entry; for a second-order cone it is `s₀ − ‖s₁‖`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn margin(&self, v: &DVector) -> f64 {
        assert_eq!(v.len(), self.dim(), "cone margin: dimension mismatch");
        let mut m = f64::INFINITY;
        for (off, block) in self.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    for i in 0..n {
                        m = m.min(v[off + i]);
                    }
                }
                ConeBlock::Soc(n) => {
                    let head = v[off];
                    let tail = norm_tail(v, off, n);
                    m = m.min(head - tail);
                }
            }
        }
        if self.dim() == 0 {
            0.0
        } else {
            m
        }
    }

    /// Jordan product `u ∘ v` (element-wise for the orthant, arrow product
    /// for second-order cones).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match the cone.
    pub fn jordan_product(&self, u: &DVector, v: &DVector) -> DVector {
        assert_eq!(u.len(), self.dim(), "jordan product: dimension mismatch");
        assert_eq!(v.len(), self.dim(), "jordan product: dimension mismatch");
        let mut out = DVector::zeros(self.dim());
        for (off, block) in self.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    for i in 0..n {
                        out[off + i] = u[off + i] * v[off + i];
                    }
                }
                ConeBlock::Soc(n) => {
                    let mut dot = 0.0;
                    for i in 0..n {
                        dot += u[off + i] * v[off + i];
                    }
                    out[off] = dot;
                    for i in 1..n {
                        out[off + i] = u[off] * v[off + i] + v[off] * u[off + i];
                    }
                }
            }
        }
        out
    }

    /// Jordan division: solves `λ ∘ u = rhs` for `u`, where `λ` must be in
    /// the interior of the cone.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match or if a block of `λ` is
    /// (numerically) singular in the Jordan algebra.
    pub fn jordan_solve(&self, lambda: &DVector, rhs: &DVector) -> DVector {
        assert_eq!(lambda.len(), self.dim(), "jordan solve: dimension mismatch");
        assert_eq!(rhs.len(), self.dim(), "jordan solve: dimension mismatch");
        let mut out = DVector::zeros(self.dim());
        for (off, block) in self.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    for i in 0..n {
                        out[off + i] = rhs[off + i] / lambda[off + i];
                    }
                }
                ConeBlock::Soc(n) => {
                    // Solve the arrow system Arw(λ) u = r.
                    let l0 = lambda[off];
                    let mut l1_sq = 0.0;
                    let mut l1_dot_r1 = 0.0;
                    for i in 1..n {
                        l1_sq += lambda[off + i] * lambda[off + i];
                        l1_dot_r1 += lambda[off + i] * rhs[off + i];
                    }
                    let det = l0 * l0 - l1_sq;
                    assert!(
                        det.abs() > f64::MIN_POSITIVE && l0.abs() > f64::MIN_POSITIVE,
                        "jordan solve: singular lambda block"
                    );
                    let u0 = (l0 * rhs[off] - l1_dot_r1) / det;
                    out[off] = u0;
                    for i in 1..n {
                        out[off + i] = (rhs[off + i] - lambda[off + i] * u0) / l0;
                    }
                }
            }
        }
        out
    }

    /// Largest `α ≥ 0` such that `u + α d` stays in the cone, capped at
    /// `cap`. `u` must be in the interior of the cone.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match the cone.
    pub fn max_step(&self, u: &DVector, d: &DVector, cap: f64) -> f64 {
        assert_eq!(u.len(), self.dim(), "max step: dimension mismatch");
        assert_eq!(d.len(), self.dim(), "max step: dimension mismatch");
        let mut alpha = cap;
        for (off, block) in self.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    for i in 0..n {
                        let di = d[off + i];
                        if di < 0.0 {
                            alpha = alpha.min(-u[off + i] / di);
                        }
                    }
                }
                ConeBlock::Soc(n) => {
                    alpha = alpha.min(soc_max_step(u, d, off, n, cap));
                }
            }
        }
        alpha.max(0.0)
    }
}

impl fmt::Display for Cone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.blocks.is_empty() {
            return write!(f, "{{0}}");
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<ConeBlock> for Cone {
    fn from_iter<I: IntoIterator<Item = ConeBlock>>(iter: I) -> Self {
        Cone::new(iter.into_iter().collect())
    }
}

fn norm_tail(v: &DVector, off: usize, n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 1..n {
        acc += v[off + i] * v[off + i];
    }
    acc.sqrt()
}

/// Largest step keeping `u + α d` in a single second-order cone block.
fn soc_max_step(u: &DVector, d: &DVector, off: usize, n: usize, cap: f64) -> f64 {
    // f(α) = (u0 + α d0)² − ‖u1 + α d1‖² must stay ≥ 0 and u0 + α d0 ≥ 0.
    let u0 = u[off];
    let d0 = d[off];
    let mut u1u1 = 0.0;
    let mut u1d1 = 0.0;
    let mut d1d1 = 0.0;
    for i in 1..n {
        u1u1 += u[off + i] * u[off + i];
        u1d1 += u[off + i] * d[off + i];
        d1d1 += d[off + i] * d[off + i];
    }
    let a = d0 * d0 - d1d1;
    let b = 2.0 * (u0 * d0 - u1d1);
    let c = u0 * u0 - u1u1;
    // c > 0 since u is interior; find the smallest positive root of
    // a α² + b α + c = 0, also respecting u0 + α d0 ≥ 0.
    let mut alpha = cap;
    let roots = quadratic_roots(a, b, c);
    for r in roots.into_iter().flatten() {
        if r > 0.0 {
            alpha = alpha.min(r);
        }
    }
    if d0 < 0.0 {
        alpha = alpha.min(-u0 / d0);
    }
    alpha
}

/// Real roots of `a x² + b x + c = 0`, handling the degenerate linear case.
fn quadratic_roots(a: f64, b: f64, c: f64) -> [Option<f64>; 2] {
    if a.abs() < 1e-300 {
        if b.abs() < 1e-300 {
            return [None, None];
        }
        return [Some(-c / b), None];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return [None, None];
    }
    let sq = disc.sqrt();
    // Numerically stable quadratic formula.
    let q = -0.5 * (b + b.signum() * sq);
    let r1 = q / a;
    let r2 = if q.abs() > 1e-300 { c / q } else { r1 };
    [Some(r1), Some(r2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cone_mixed() -> Cone {
        Cone::new(vec![ConeBlock::NonNeg(2), ConeBlock::Soc(3)])
    }

    #[test]
    fn dims_and_degree() {
        let c = cone_mixed();
        assert_eq!(c.dim(), 5);
        assert_eq!(c.degree(), 3);
        assert!(!c.is_empty());
        assert!(Cone::new(vec![]).is_empty());
        assert_eq!(Cone::new(vec![ConeBlock::NonNeg(0)]).dim(), 0);
    }

    #[test]
    fn identity_is_interior() {
        let c = cone_mixed();
        let e = c.identity();
        assert_eq!(e.as_slice(), &[1.0, 1.0, 1.0, 0.0, 0.0]);
        assert!(c.is_interior(&e));
        assert!(c.contains(&e, 0.0));
        assert_eq!(c.margin(&e), 1.0);
    }

    #[test]
    fn membership_boundaries() {
        let c = Cone::new(vec![ConeBlock::Soc(3)]);
        let on_boundary = DVector::from_slice(&[5.0, 3.0, 4.0]);
        assert!(!c.is_interior(&on_boundary));
        assert!(c.contains(&on_boundary, 1e-12));
        let outside = DVector::from_slice(&[4.0, 3.0, 4.0]);
        assert!(!c.contains(&outside, 1e-12));
        assert!(c.margin(&outside) < 0.0);
    }

    #[test]
    fn jordan_product_orthant_is_elementwise() {
        let c = Cone::new(vec![ConeBlock::NonNeg(3)]);
        let u = DVector::from_slice(&[1.0, 2.0, 3.0]);
        let v = DVector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(c.jordan_product(&u, &v).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn jordan_product_soc_identity() {
        let c = Cone::new(vec![ConeBlock::Soc(4)]);
        let e = c.identity();
        let v = DVector::from_slice(&[3.0, 1.0, -2.0, 0.5]);
        let p = c.jordan_product(&e, &v);
        for i in 0..4 {
            assert!((p[i] - v[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn jordan_solve_inverts_product() {
        let c = cone_mixed();
        let lambda = DVector::from_slice(&[2.0, 3.0, 5.0, 1.0, -2.0]);
        assert!(c.is_interior(&lambda));
        let u = DVector::from_slice(&[0.5, -1.0, 2.0, 0.3, 0.7]);
        let rhs = c.jordan_product(&lambda, &u);
        let sol = c.jordan_solve(&lambda, &rhs);
        for i in 0..5 {
            assert!((sol[i] - u[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn max_step_orthant() {
        let c = Cone::new(vec![ConeBlock::NonNeg(2)]);
        let u = DVector::from_slice(&[1.0, 2.0]);
        let d = DVector::from_slice(&[-1.0, -4.0]);
        assert!((c.max_step(&u, &d, 10.0) - 0.5).abs() < 1e-12);
        let d_pos = DVector::from_slice(&[1.0, 1.0]);
        assert_eq!(c.max_step(&u, &d_pos, 10.0), 10.0);
    }

    #[test]
    fn max_step_soc_hits_boundary() {
        let c = Cone::new(vec![ConeBlock::Soc(3)]);
        let u = DVector::from_slice(&[2.0, 0.0, 0.0]);
        // Moving straight down in the head coordinate hits the boundary at α=2
        // only through the u0 ≥ 0 condition; with a tail component it is sooner.
        let d = DVector::from_slice(&[-1.0, 1.0, 0.0]);
        let alpha = c.max_step(&u, &d, 100.0);
        // At α: (2-α)² = α² → α = 1.
        assert!((alpha - 1.0).abs() < 1e-10);
    }

    #[test]
    fn display_formats() {
        let c = cone_mixed();
        assert_eq!(format!("{c}"), "R+^2 x Q^3");
        assert_eq!(format!("{}", Cone::new(vec![])), "{0}");
    }

    #[test]
    fn from_iterator_collects_blocks() {
        let c: Cone = vec![ConeBlock::NonNeg(1), ConeBlock::Soc(2)]
            .into_iter()
            .collect();
        assert_eq!(c.blocks().len(), 2);
    }

    #[test]
    fn quadratic_roots_cases() {
        // Linear case.
        let r = quadratic_roots(0.0, 2.0, -4.0);
        assert_eq!(r[0], Some(2.0));
        // No real roots.
        assert_eq!(quadratic_roots(1.0, 0.0, 1.0), [None, None]);
        // Two roots.
        let r = quadratic_roots(1.0, -3.0, 2.0);
        let mut roots: Vec<f64> = r.iter().flatten().copied().collect();
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] - 1.0).abs() < 1e-12 && (roots[1] - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_step_to_boundary_is_feasible(u0 in 1.0f64..10.0,
                                             u1 in -5.0f64..5.0,
                                             u2 in -5.0f64..5.0,
                                             d0 in -5.0f64..5.0,
                                             d1 in -5.0f64..5.0,
                                             d2 in -5.0f64..5.0) {
            // Make sure u is strictly interior by inflating the head.
            let head = u0 + (u1 * u1 + u2 * u2).sqrt();
            let c = Cone::new(vec![ConeBlock::Soc(3)]);
            let u = DVector::from_slice(&[head, u1, u2]);
            let d = DVector::from_slice(&[d0, d1, d2]);
            let alpha = c.max_step(&u, &d, 1.0);
            prop_assert!(alpha >= 0.0);
            // Stepping 99.9% of the way must stay inside the (closed) cone.
            let mut stepped = u.clone();
            stepped.axpy(alpha * 0.999, &d);
            prop_assert!(c.contains(&stepped, 1e-7));
        }

        #[test]
        fn prop_jordan_solve_roundtrip_soc(l0 in 1.0f64..5.0,
                                           l1 in -2.0f64..2.0,
                                           l2 in -2.0f64..2.0,
                                           r0 in -3.0f64..3.0,
                                           r1 in -3.0f64..3.0,
                                           r2 in -3.0f64..3.0) {
            let head = l0 + (l1 * l1 + l2 * l2).sqrt();
            let c = Cone::new(vec![ConeBlock::Soc(3)]);
            let lambda = DVector::from_slice(&[head, l1, l2]);
            let rhs = DVector::from_slice(&[r0, r1, r2]);
            let u = c.jordan_solve(&lambda, &rhs);
            let back = c.jordan_product(&lambda, &u);
            for i in 0..3 {
                prop_assert!((back[i] - rhs[i]).abs() < 1e-8);
            }
        }
    }
}
