//! Linear and second-order cone programming.
//!
//! This crate is the optimisation substrate of the budget/buffer
//! co-computation library. It provides:
//!
//! * a modelling layer ([`ModelBuilder`]) with named variables, affine
//!   inequalities, bounds, hyperbolic constraints `x·y ≥ k` and general
//!   second-order cone constraints;
//! * a from-scratch primal–dual interior-point solver
//!   ([`solve_cone_problem`]) using Nesterov–Todd scaling and a Mehrotra
//!   predictor–corrector, with polynomial iteration complexity — the
//!   property the paper relies on for its "milliseconds" run-time claim;
//! * a cutting-plane fallback ([`solve_with_cutting_planes`]) used as an
//!   independent cross-check and as an ablation baseline in the benches.
//!
//! # Example
//!
//! Minimise a weighted sum subject to a hyperbolic (budget-reciprocal style)
//! constraint:
//!
//! ```
//! use bbs_conic::{IpmSettings, ModelBuilder};
//!
//! # fn main() -> Result<(), bbs_conic::ConicError> {
//! let mut m = ModelBuilder::new();
//! let budget = m.add_var_with_cost("budget", 1.0);
//! let recip = m.add_var("reciprocal");
//! m.bound_lower(budget, 1e-6);
//! m.bound_lower(recip, 1e-6);
//! m.bound_upper(recip, 0.25); // reciprocal ≤ 1/4 ⇒ budget ≥ 4
//! m.add_hyperbolic(budget, recip, 1.0); // budget · reciprocal ≥ 1
//! let solution = m.build()?.solve(&IpmSettings::default())?;
//! assert!((solution.value(budget) - 4.0).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cone;
mod cutting_plane;
mod error;
mod ipm;
mod problem;
mod scaling;

pub use cone::{Cone, ConeBlock};
pub use cutting_plane::{solve_with_cutting_planes, CuttingPlaneOutcome, CuttingPlaneSettings};
pub use error::{ConicError, SolveStatus};
pub use ipm::{solve_cone_problem, IpmSettings, IterationRecord, RawSolution};
pub use problem::{ConeProblem, LinExpr, Model, ModelBuilder, SocConstraint, Solution, VarId};
pub use scaling::NtScaling;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_compiles_and_solves() {
        let mut m = ModelBuilder::new();
        let budget = m.add_var_with_cost("budget", 1.0);
        let recip = m.add_var("reciprocal");
        m.bound_lower(budget, 1e-6);
        m.bound_lower(recip, 1e-6);
        m.bound_upper(recip, 0.25);
        m.add_hyperbolic(budget, recip, 1.0);
        let solution = m.build().unwrap().solve(&IpmSettings::default()).unwrap();
        assert!((solution.value(budget) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelBuilder>();
        assert_send_sync::<Model>();
        assert_send_sync::<ConeProblem>();
        assert_send_sync::<RawSolution>();
        assert_send_sync::<ConicError>();
        assert_send_sync::<IpmSettings>();
    }
}
