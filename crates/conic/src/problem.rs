//! Problem modelling: named variables, affine constraints, second-order cone
//! constraints, and lowering to the standard conic form.

use crate::cone::{Cone, ConeBlock};
use crate::error::ConicError;
use bbs_linalg::{DMatrix, DVector};
use std::fmt;

/// Handle to a decision variable created by a [`ModelBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the solution vector.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ coeffᵢ·xᵢ + constant`.
///
/// # Example
///
/// ```
/// use bbs_conic::{LinExpr, ModelBuilder};
///
/// let mut m = ModelBuilder::new();
/// let x = m.add_var("x");
/// let y = m.add_var("y");
/// let expr = LinExpr::new().plus(2.0, x).plus(-1.0, y).plus_constant(3.0);
/// assert_eq!(expr.terms().len(), 2);
/// assert_eq!(expr.constant(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting of a single term `coeff · var`.
    pub fn term(coeff: f64, var: VarId) -> Self {
        Self::new().plus(coeff, var)
    }

    /// Creates a constant expression.
    pub fn constant_expr(value: f64) -> Self {
        Self {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// Adds `coeff · var` and returns the updated expression.
    #[must_use]
    pub fn plus(mut self, coeff: f64, var: VarId) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds a constant and returns the updated expression.
    #[must_use]
    pub fn plus_constant(mut self, value: f64) -> Self {
        self.constant += value;
        self
    }

    /// The (variable, coefficient) terms.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// The constant offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Evaluates the expression for a full solution vector.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is out of bounds for `x`.
    pub fn eval(&self, x: &DVector) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * x[v.0]).sum::<f64>()
    }
}

/// Raw conic problem in standard form `min cᵀx  s.t. Gx + s = h, s ∈ K`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeProblem {
    /// Objective vector `c`.
    pub c: DVector,
    /// Constraint matrix `G`.
    pub g: DMatrix,
    /// Right-hand side `h`.
    pub h: DVector,
    /// Cone `K` (row blocks of `G`).
    pub cone: Cone,
}

impl ConeProblem {
    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.c.len()
    }

    /// Number of conic rows.
    pub fn num_rows(&self) -> usize {
        self.h.len()
    }

    /// Validates internal dimensional consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConicError::DimensionMismatch`] when the shapes of `c`,
    /// `G`, `h` and the cone do not line up, or when the data contains
    /// non-finite entries ([`ConicError::NonFiniteData`]).
    pub fn validate(&self) -> Result<(), ConicError> {
        if self.g.nrows() != self.h.len()
            || self.g.ncols() != self.c.len()
            || self.cone.dim() != self.h.len()
        {
            return Err(ConicError::DimensionMismatch {
                rows: self.g.nrows(),
                cols: self.g.ncols(),
                c_len: self.c.len(),
                h_len: self.h.len(),
                cone_dim: self.cone.dim(),
            });
        }
        if !self.c.is_finite() || !self.h.is_finite() || !self.g.is_finite() {
            return Err(ConicError::NonFiniteData);
        }
        Ok(())
    }
}

/// A named second-order cone constraint `‖A x + b‖₂ ≤ cᵀ x + d`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SocConstraint {
    /// The affine expression bounding the norm (the cone "head").
    pub bound: LinExpr,
    /// The affine expressions inside the norm (the cone "tail").
    pub norm_terms: Vec<LinExpr>,
}

/// Builder for conic optimisation models with named variables.
///
/// The builder supports exactly the constraint shapes needed by the
/// budget/buffer formulation (and by LPs in general):
///
/// * affine inequalities `expr ≤ rhs` / `expr ≥ rhs`,
/// * variable bounds,
/// * hyperbolic constraints `x·y ≥ k` (lowered to a 3-dimensional
///   second-order cone),
/// * general second-order cone constraints.
///
/// # Example
///
/// Minimise `x + y` subject to `x·y ≥ 4`, `x ≤ 8`:
///
/// ```
/// use bbs_conic::{ModelBuilder, IpmSettings};
///
/// let mut m = ModelBuilder::new();
/// let x = m.add_var("x");
/// let y = m.add_var("y");
/// m.set_objective(x, 1.0);
/// m.set_objective(y, 1.0);
/// m.bound_lower(x, 1e-6);
/// m.bound_lower(y, 1e-6);
/// m.bound_upper(x, 8.0);
/// m.add_hyperbolic(x, y, 4.0);
/// let model = m.build().unwrap();
/// let sol = model.solve(&IpmSettings::default()).unwrap();
/// // The optimum is x = y = 2 (AM-GM equality point).
/// assert!((sol.value(x) - 2.0).abs() < 1e-4);
/// assert!((sol.value(y) - 2.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelBuilder {
    names: Vec<String>,
    objective: Vec<f64>,
    lower: Vec<Option<f64>>,
    upper: Vec<Option<f64>>,
    // expr ≤ 0 rows (already normalised).
    le_rows: Vec<LinExpr>,
    hyperbolics: Vec<(VarId, VarId, f64)>,
    socs: Vec<SocConstraint>,
}

impl ModelBuilder {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a decision variable with objective coefficient 0.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.into());
        self.objective.push(0.0);
        self.lower.push(None);
        self.upper.push(None);
        id
    }

    /// Adds a decision variable with the given objective coefficient.
    pub fn add_var_with_cost(&mut self, name: impl Into<String>, cost: f64) -> VarId {
        let v = self.add_var(name);
        self.objective[v.0] = cost;
        v
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Sets (overwrites) the objective coefficient of a variable.
    pub fn set_objective(&mut self, var: VarId, cost: f64) {
        self.objective[var.0] = cost;
    }

    /// Adds `cost` to the objective coefficient of a variable.
    pub fn add_objective(&mut self, var: VarId, cost: f64) {
        self.objective[var.0] += cost;
    }

    /// Name of a variable.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Imposes `var ≥ bound` (the tightest of repeated calls wins).
    pub fn bound_lower(&mut self, var: VarId, bound: f64) {
        let entry = &mut self.lower[var.0];
        *entry = Some(entry.map_or(bound, |b| b.max(bound)));
    }

    /// Imposes `var ≤ bound` (the tightest of repeated calls wins).
    pub fn bound_upper(&mut self, var: VarId, bound: f64) {
        let entry = &mut self.upper[var.0];
        *entry = Some(entry.map_or(bound, |b| b.min(bound)));
    }

    /// Adds the affine constraint `expr ≤ rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: f64) {
        self.le_rows.push(expr.plus_constant(-rhs));
    }

    /// Adds the affine constraint `expr ≥ rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: f64) {
        // expr ≥ rhs  ⇔  −expr ≤ −rhs
        let negated = LinExpr {
            terms: expr.terms.iter().map(|&(v, c)| (v, -c)).collect(),
            constant: -expr.constant,
        };
        self.add_le(negated, -rhs);
    }

    /// Adds the hyperbolic constraint `x · y ≥ k` with `k > 0`.
    ///
    /// The constraint is lowered to the second-order cone
    /// `‖(2√k, x − y)‖₂ ≤ x + y`, which together with the cone's implied
    /// `x + y ≥ 0` encodes `x, y ≥ 0` and `x·y ≥ k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≤ 0` (use a plain bound instead).
    pub fn add_hyperbolic(&mut self, x: VarId, y: VarId, k: f64) {
        assert!(k > 0.0, "hyperbolic constraint requires k > 0, got {k}");
        self.hyperbolics.push((x, y, k));
    }

    /// Adds a general second-order cone constraint `‖norm_terms‖₂ ≤ bound`.
    pub fn add_soc(&mut self, constraint: SocConstraint) {
        self.socs.push(constraint);
    }

    /// The hyperbolic constraints `(x, y, k)` added so far (meaning
    /// `x·y ≥ k`). Used by the cutting-plane solver to build its outer
    /// approximation.
    pub fn hyperbolic_constraints(&self) -> &[(VarId, VarId, f64)] {
        &self.hyperbolics
    }

    /// Removes all hyperbolic constraints (their linear relaxations are then
    /// supplied as cuts by the cutting-plane solver).
    pub fn clear_hyperbolic_constraints(&mut self) {
        self.hyperbolics.clear();
    }

    /// Lowers the model to standard conic form.
    ///
    /// # Errors
    ///
    /// Returns an error when the generated data is dimensionally or
    /// numerically invalid (e.g. non-finite coefficients).
    pub fn build(self) -> Result<Model, ConicError> {
        let n = self.names.len();
        // Count orthant rows: explicit ≤ rows plus bounds.
        let num_bounds = self.lower.iter().flatten().count() + self.upper.iter().flatten().count();
        let num_lin = self.le_rows.len() + num_bounds;
        let soc_dims: Vec<usize> = self
            .hyperbolics
            .iter()
            .map(|_| 3)
            .chain(self.socs.iter().map(|s| s.norm_terms.len() + 1))
            .collect();
        let m = num_lin + soc_dims.iter().sum::<usize>();

        let mut g = DMatrix::zeros(m, n);
        let mut h = DVector::zeros(m);
        let mut row = 0usize;

        // expr ≤ 0  ⇔  expr_terms·x + s = −constant, s ≥ 0.
        for expr in &self.le_rows {
            for &(v, ccoef) in expr.terms() {
                g[(row, v.0)] += ccoef;
            }
            h[row] = -expr.constant();
            row += 1;
        }
        // Lower bounds: x ≥ l ⇔ −x ≤ −l.
        for (i, bound) in self.lower.iter().enumerate() {
            if let Some(l) = bound {
                g[(row, i)] = -1.0;
                h[row] = -l;
                row += 1;
            }
        }
        // Upper bounds: x ≤ u.
        for (i, bound) in self.upper.iter().enumerate() {
            if let Some(u) = bound {
                g[(row, i)] = 1.0;
                h[row] = *u;
                row += 1;
            }
        }
        // Hyperbolic constraints as 3-dimensional SOC blocks:
        // s = (x + y, x − y, 2√k) ∈ Q³.
        for &(x, y, k) in &self.hyperbolics {
            g[(row, x.0)] -= 1.0;
            g[(row, y.0)] -= 1.0;
            h[row] = 0.0;
            g[(row + 1, x.0)] -= 1.0;
            g[(row + 1, y.0)] += 1.0;
            h[row + 1] = 0.0;
            h[row + 2] = 2.0 * k.sqrt();
            row += 3;
        }
        // General SOC constraints: s = (bound, norm_terms…) ∈ Q^{1+t}.
        for soc in &self.socs {
            for &(v, ccoef) in soc.bound.terms() {
                g[(row, v.0)] -= ccoef;
            }
            h[row] = soc.bound.constant();
            row += 1;
            for term in &soc.norm_terms {
                for &(v, ccoef) in term.terms() {
                    g[(row, v.0)] -= ccoef;
                }
                h[row] = term.constant();
                row += 1;
            }
        }
        debug_assert_eq!(row, m);

        let mut blocks = vec![ConeBlock::NonNeg(num_lin)];
        blocks.extend(soc_dims.into_iter().map(ConeBlock::Soc));
        let problem = ConeProblem {
            c: DVector::from_vec(self.objective),
            g,
            h,
            cone: Cone::new(blocks),
        };
        problem.validate()?;
        Ok(Model {
            problem,
            names: self.names,
        })
    }
}

/// A built conic model ready to be solved.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    problem: ConeProblem,
    names: Vec<String>,
}

impl Model {
    /// The underlying standard-form problem.
    pub fn problem(&self) -> &ConeProblem {
        &self.problem
    }

    /// Variable names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Solves the model with the interior-point method.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; see [`crate::solve_cone_problem`].
    pub fn solve(&self, settings: &crate::IpmSettings) -> Result<Solution, ConicError> {
        let raw = crate::solve_cone_problem(&self.problem, settings)?;
        Ok(Solution { raw })
    }
}

/// Solution of a [`Model`], wrapping the raw solver output with named access.
#[derive(Debug, Clone)]
pub struct Solution {
    raw: crate::RawSolution,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.raw.x[var.0]
    }

    /// Objective value `cᵀx`.
    pub fn objective(&self) -> f64 {
        self.raw.primal_objective
    }

    /// Termination status.
    pub fn status(&self) -> crate::SolveStatus {
        self.raw.status
    }

    /// Number of interior-point iterations performed.
    pub fn iterations(&self) -> usize {
        self.raw.iterations
    }

    /// The raw solver output (primal/dual iterates and residuals).
    pub fn raw(&self) -> &crate::RawSolution {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpmSettings;

    #[test]
    fn lin_expr_construction_and_eval() {
        let mut m = ModelBuilder::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let e = LinExpr::term(2.0, x).plus(3.0, y).plus_constant(1.0);
        let v = DVector::from_slice(&[1.0, 2.0]);
        assert_eq!(e.eval(&v), 9.0);
        assert_eq!(LinExpr::constant_expr(5.0).eval(&v), 5.0);
        assert_eq!(format!("{x}"), "x0");
    }

    #[test]
    fn builder_counts_and_names() {
        let mut m = ModelBuilder::new();
        let a = m.add_var("alpha");
        let b = m.add_var_with_cost("beta", 2.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.name(a), "alpha");
        assert_eq!(m.name(b), "beta");
        m.add_objective(b, 1.0);
        m.set_objective(a, 4.0);
        let model = m.build().unwrap();
        assert_eq!(model.problem().c.as_slice(), &[4.0, 3.0]);
        assert_eq!(model.names(), &["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn bounds_tighten() {
        let mut m = ModelBuilder::new();
        let x = m.add_var("x");
        m.bound_lower(x, 1.0);
        m.bound_lower(x, 3.0);
        m.bound_lower(x, 2.0);
        m.bound_upper(x, 10.0);
        m.bound_upper(x, 7.0);
        m.set_objective(x, 1.0);
        let model = m.build().unwrap();
        let sol = model.solve(&IpmSettings::default()).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn standard_form_shapes() {
        let mut m = ModelBuilder::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_le(LinExpr::term(1.0, x).plus(1.0, y), 4.0);
        m.add_ge(LinExpr::term(1.0, x), 1.0);
        m.bound_lower(y, 0.0);
        m.add_hyperbolic(x, y, 1.0);
        let model = m.build().unwrap();
        let p = model.problem();
        // rows: 2 linear + 1 bound + 3 SOC = 6
        assert_eq!(p.num_rows(), 6);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.cone.degree(), 4);
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "requires k > 0")]
    fn hyperbolic_rejects_nonpositive_k() {
        let mut m = ModelBuilder::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_hyperbolic(x, y, 0.0);
    }

    #[test]
    fn validate_catches_nonfinite() {
        let p = ConeProblem {
            c: DVector::from_slice(&[f64::NAN]),
            g: DMatrix::zeros(1, 1),
            h: DVector::zeros(1),
            cone: Cone::new(vec![ConeBlock::NonNeg(1)]),
        };
        assert!(matches!(p.validate(), Err(ConicError::NonFiniteData)));
    }

    #[test]
    fn validate_catches_shape_mismatch() {
        let p = ConeProblem {
            c: DVector::zeros(2),
            g: DMatrix::zeros(3, 1),
            h: DVector::zeros(3),
            cone: Cone::new(vec![ConeBlock::NonNeg(3)]),
        };
        assert!(matches!(
            p.validate(),
            Err(ConicError::DimensionMismatch { .. })
        ));
    }
}
