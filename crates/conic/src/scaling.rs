//! Nesterov–Todd scaling for the symmetric cones used by the solver.
//!
//! Given a strictly feasible primal/dual slack pair `(s, z)` the NT scaling
//! is the unique symmetric, cone-automorphic linear map `W` with
//! `W² z = s`. The scaled point `λ = W z = W⁻¹ s` drives the predictor and
//! corrector directions of the interior-point method.

use crate::cone::{Cone, ConeBlock};
use bbs_linalg::DVector;

/// Per-block NT scaling data.
#[derive(Debug, Clone, PartialEq)]
enum BlockScaling {
    /// Orthant block: `W = diag(w)`, `w_i = sqrt(s_i / z_i)`.
    Orthant {
        /// Diagonal of `W`.
        w: Vec<f64>,
    },
    /// Second-order cone block:
    /// `W = sqrt(eta) [[w̄₀, w̄₁ᵀ], [w̄₁, I + w̄₁w̄₁ᵀ/(1+w̄₀)]]` with
    /// `w̄ᵀ J w̄ = 1` and `eta = sqrt((s₀²−‖s₁‖²)/(z₀²−‖z₁‖²))`.
    Soc {
        /// `sqrt(eta)` scale factor (i.e. `((s₀²−‖s₁‖²)/(z₀²−‖z₁‖²))^{1/4}`).
        eta_sqrt: f64,
        /// The hyperbolic-unit scaling point `w̄`.
        wbar: Vec<f64>,
    },
}

/// Nesterov–Todd scaling for a full cone product.
///
/// # Example
///
/// ```
/// use bbs_conic::{Cone, ConeBlock, NtScaling};
/// use bbs_linalg::DVector;
///
/// let cone = Cone::new(vec![ConeBlock::NonNeg(2), ConeBlock::Soc(3)]);
/// let s = DVector::from_slice(&[4.0, 1.0, 3.0, 1.0, 0.5]);
/// let z = DVector::from_slice(&[1.0, 2.0, 2.0, -0.5, 0.3]);
/// let w = NtScaling::compute(&cone, &s, &z).expect("both interior");
/// // W² z = s  (defining property)
/// let w2z = w.apply(&w.apply(&z));
/// assert!((&w2z - &s).norm_inf() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NtScaling {
    cone: Cone,
    blocks: Vec<BlockScaling>,
}

impl NtScaling {
    /// Computes the NT scaling for interior points `s`, `z` of `cone`.
    ///
    /// Returns `None` when either point is not strictly inside the cone
    /// (which the interior-point iteration guarantees by construction).
    ///
    /// # Panics
    ///
    /// Panics if the vector dimensions do not match the cone.
    pub fn compute(cone: &Cone, s: &DVector, z: &DVector) -> Option<Self> {
        assert_eq!(s.len(), cone.dim(), "nt scaling: dimension mismatch");
        assert_eq!(z.len(), cone.dim(), "nt scaling: dimension mismatch");
        let mut blocks = Vec::with_capacity(cone.blocks().len());
        for (off, block) in cone.iter_offsets() {
            match block {
                ConeBlock::NonNeg(n) => {
                    let mut w = Vec::with_capacity(n);
                    for i in 0..n {
                        let (si, zi) = (s[off + i], z[off + i]);
                        if si <= 0.0 || zi <= 0.0 {
                            return None;
                        }
                        w.push((si / zi).sqrt());
                    }
                    blocks.push(BlockScaling::Orthant { w });
                }
                ConeBlock::Soc(n) => {
                    let sres = soc_residual(s, off, n);
                    let zres = soc_residual(z, off, n);
                    if sres <= 0.0 || zres <= 0.0 || s[off] <= 0.0 || z[off] <= 0.0 {
                        return None;
                    }
                    let s_scale = sres.sqrt();
                    let z_scale = zres.sqrt();
                    // Normalised points on the unit hyperboloid.
                    let sbar: Vec<f64> = (0..n).map(|i| s[off + i] / s_scale).collect();
                    let zbar: Vec<f64> = (0..n).map(|i| z[off + i] / z_scale).collect();
                    let dot: f64 = sbar.iter().zip(zbar.iter()).map(|(a, b)| a * b).sum();
                    let gamma = ((1.0 + dot) / 2.0).sqrt();
                    // w̄ = (s̄ + J z̄) / (2γ)
                    let mut wbar = vec![0.0; n];
                    wbar[0] = (sbar[0] + zbar[0]) / (2.0 * gamma);
                    for i in 1..n {
                        wbar[i] = (sbar[i] - zbar[i]) / (2.0 * gamma);
                    }
                    let eta_sqrt = (s_scale / z_scale).sqrt();
                    blocks.push(BlockScaling::Soc { eta_sqrt, wbar });
                }
            }
        }
        Some(Self {
            cone: cone.clone(),
            blocks,
        })
    }

    /// The cone this scaling was computed for.
    pub fn cone(&self) -> &Cone {
        &self.cone
    }

    /// Applies `W` to a vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match the cone.
    pub fn apply(&self, v: &DVector) -> DVector {
        self.apply_impl(v, false)
    }

    /// Applies `W⁻¹` to a vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match the cone.
    pub fn apply_inverse(&self, v: &DVector) -> DVector {
        self.apply_impl(v, true)
    }

    /// The scaled point `λ = W z = W⁻¹ s`.
    pub fn lambda(&self, z: &DVector) -> DVector {
        self.apply(z)
    }

    /// The dense matrix `W²`, assembled block by block in closed form:
    /// `diag(wᵢ²)` for orthant entries and `η·(2 w̄ w̄ᵀ − J)` (the quadratic
    /// representation of the scaling point) for each second-order cone
    /// block. This is what the interior-point KKT system needs, and building
    /// it directly avoids an `O(m³)` matrix–matrix product per iteration.
    pub fn w_squared(&self) -> bbs_linalg::DMatrix {
        let m = self.cone.dim();
        let mut out = bbs_linalg::DMatrix::zeros(m, m);
        for ((off, block), scaling) in self.cone.iter_offsets().zip(self.blocks.iter()) {
            match (block, scaling) {
                (ConeBlock::NonNeg(n), BlockScaling::Orthant { w }) => {
                    for i in 0..n {
                        out[(off + i, off + i)] = w[i] * w[i];
                    }
                }
                (ConeBlock::Soc(n), BlockScaling::Soc { eta_sqrt, wbar }) => {
                    // W = sqrt(η)·W̄ with W̄² = 2w̄w̄ᵀ − J, hence W² = η·(2w̄w̄ᵀ − J)
                    // where η = (eta_sqrt)².
                    let eta = eta_sqrt * eta_sqrt;
                    for i in 0..n {
                        for j in 0..n {
                            let jordan = if i == j {
                                if i == 0 {
                                    1.0
                                } else {
                                    -1.0
                                }
                            } else {
                                0.0
                            };
                            out[(off + i, off + j)] = eta * (2.0 * wbar[i] * wbar[j] - jordan);
                        }
                    }
                }
                _ => unreachable!("cone/scaling block mismatch"),
            }
        }
        out
    }

    fn apply_impl(&self, v: &DVector, inverse: bool) -> DVector {
        assert_eq!(v.len(), self.cone.dim(), "nt apply: dimension mismatch");
        let mut out = DVector::zeros(v.len());
        for ((off, block), scaling) in self.cone.iter_offsets().zip(self.blocks.iter()) {
            match (block, scaling) {
                (ConeBlock::NonNeg(n), BlockScaling::Orthant { w }) => {
                    for i in 0..n {
                        let wi = if inverse { 1.0 / w[i] } else { w[i] };
                        out[off + i] = wi * v[off + i];
                    }
                }
                (ConeBlock::Soc(n), BlockScaling::Soc { eta_sqrt, wbar }) => {
                    // W v   = sqrt(eta) [[w̄₀, w̄₁ᵀ], [w̄₁, I + w̄₁w̄₁ᵀ/(1+w̄₀)]] v
                    // W⁻¹ v is the same map built from J w̄ (tail negated)
                    // with the reciprocal scale factor.
                    let scale = if inverse { 1.0 / eta_sqrt } else { *eta_sqrt };
                    let sign = if inverse { -1.0 } else { 1.0 };
                    let w0 = wbar[0];
                    // d = w̄₁ᵀ v₁ (using the original, un-negated tail).
                    let mut d = 0.0;
                    for i in 1..n {
                        d += wbar[i] * v[off + i];
                    }
                    out[off] = scale * (w0 * v[off] + sign * d);
                    for i in 1..n {
                        out[off + i] = scale
                            * (sign * v[off] * wbar[i] + v[off + i] + d / (1.0 + w0) * wbar[i]);
                    }
                }
                _ => unreachable!("cone/scaling block mismatch"),
            }
        }
        out
    }
}

fn soc_residual(v: &DVector, off: usize, n: usize) -> f64 {
    let mut tail = 0.0;
    for i in 1..n {
        tail += v[off + i] * v[off + i];
    }
    v[off] * v[off] - tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn interior_soc(head_extra: f64, tail: &[f64]) -> Vec<f64> {
        let norm = tail.iter().map(|t| t * t).sum::<f64>().sqrt();
        let mut v = vec![norm + head_extra];
        v.extend_from_slice(tail);
        v
    }

    #[test]
    fn orthant_scaling_is_diagonal_sqrt_ratio() {
        let cone = Cone::new(vec![ConeBlock::NonNeg(2)]);
        let s = DVector::from_slice(&[4.0, 9.0]);
        let z = DVector::from_slice(&[1.0, 1.0]);
        let w = NtScaling::compute(&cone, &s, &z).unwrap();
        let e = DVector::from_slice(&[1.0, 1.0]);
        assert_eq!(w.apply(&e).as_slice(), &[2.0, 3.0]);
        assert_eq!(w.apply_inverse(&e).as_slice(), &[0.5, 1.0 / 3.0]);
    }

    #[test]
    fn rejects_non_interior_points() {
        let cone = Cone::new(vec![ConeBlock::NonNeg(1)]);
        let s = DVector::from_slice(&[0.0]);
        let z = DVector::from_slice(&[1.0]);
        assert!(NtScaling::compute(&cone, &s, &z).is_none());
        let cone = Cone::new(vec![ConeBlock::Soc(3)]);
        let s = DVector::from_slice(&[1.0, 1.0, 0.0]); // boundary
        let z = DVector::from_slice(&[2.0, 0.0, 0.0]);
        assert!(NtScaling::compute(&cone, &s, &z).is_none());
    }

    #[test]
    fn identity_scaling_when_s_equals_z() {
        let cone = Cone::new(vec![ConeBlock::Soc(4)]);
        let s = DVector::from_vec(interior_soc(1.0, &[0.5, -0.2, 0.8]));
        let w = NtScaling::compute(&cone, &s, &s).unwrap();
        let v = DVector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let wv = w.apply(&v);
        for i in 0..4 {
            assert!((wv[i] - v[i]).abs() < 1e-12, "W should be the identity");
        }
    }

    #[test]
    fn defining_property_w_squared_z_equals_s() {
        let cone = Cone::new(vec![ConeBlock::NonNeg(2), ConeBlock::Soc(3)]);
        let s = DVector::from_slice(&[4.0, 1.0, 3.0, 1.0, 0.5]);
        let z = DVector::from_slice(&[1.0, 2.0, 2.0, -0.5, 0.3]);
        let w = NtScaling::compute(&cone, &s, &z).unwrap();
        let w2z = w.apply(&w.apply(&z));
        assert!((&w2z - &s).norm_inf() < 1e-9);
    }

    #[test]
    fn lambda_consistency() {
        let cone = Cone::new(vec![ConeBlock::Soc(3)]);
        let s = DVector::from_vec(interior_soc(0.7, &[0.3, -0.1]));
        let z = DVector::from_vec(interior_soc(1.3, &[-0.4, 0.2]));
        let w = NtScaling::compute(&cone, &s, &z).unwrap();
        let lambda_from_z = w.apply(&z);
        let lambda_from_s = w.apply_inverse(&s);
        assert!((&lambda_from_z - &lambda_from_s).norm_inf() < 1e-9);
        // λ must be interior as well.
        assert!(cone.is_interior(&lambda_from_z));
    }

    #[test]
    fn w_squared_matches_double_application() {
        let cone = Cone::new(vec![ConeBlock::NonNeg(2), ConeBlock::Soc(4)]);
        let s = DVector::from_slice(&[4.0, 1.0, 3.0, 1.0, 0.5, -0.8]);
        let z = DVector::from_slice(&[1.0, 2.0, 2.0, -0.5, 0.3, 0.4]);
        let w = NtScaling::compute(&cone, &s, &z).unwrap();
        let w2 = w.w_squared();
        let mut basis = DVector::zeros(cone.dim());
        for j in 0..cone.dim() {
            basis[j] = 1.0;
            let expected = w.apply(&w.apply(&basis));
            for i in 0..cone.dim() {
                assert!(
                    (w2[(i, j)] - expected[i]).abs() < 1e-10,
                    "entry ({i}, {j}) mismatch"
                );
            }
            basis[j] = 0.0;
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let cone = Cone::new(vec![ConeBlock::NonNeg(1), ConeBlock::Soc(4)]);
        let s = DVector::from_slice(&[2.0, 3.0, 1.0, -0.5, 0.7]);
        let z = DVector::from_slice(&[5.0, 4.0, -1.0, 1.5, 0.2]);
        let w = NtScaling::compute(&cone, &s, &z).unwrap();
        let v = DVector::from_slice(&[0.3, -1.0, 2.0, 0.1, -0.7]);
        let back = w.apply_inverse(&w.apply(&v));
        assert!((&back - &v).norm_inf() < 1e-10);
    }

    proptest! {
        #[test]
        fn prop_soc_scaling_properties(s_extra in 0.1f64..3.0,
                                       s1 in -2.0f64..2.0, s2 in -2.0f64..2.0,
                                       z_extra in 0.1f64..3.0,
                                       z1 in -2.0f64..2.0, z2 in -2.0f64..2.0) {
            let cone = Cone::new(vec![ConeBlock::Soc(3)]);
            let s = DVector::from_vec(interior_soc(s_extra, &[s1, s2]));
            let z = DVector::from_vec(interior_soc(z_extra, &[z1, z2]));
            let w = NtScaling::compute(&cone, &s, &z).unwrap();
            // Defining property.
            let w2z = w.apply(&w.apply(&z));
            prop_assert!((&w2z - &s).norm_inf() < 1e-7 * (1.0 + s.norm_inf()));
            // Inverse property.
            let v = DVector::from_slice(&[1.0, -0.3, 0.6]);
            let round = w.apply_inverse(&w.apply(&v));
            prop_assert!((&round - &v).norm_inf() < 1e-8);
            // λ interior and symmetric in the two definitions.
            let l1 = w.apply(&z);
            let l2 = w.apply_inverse(&s);
            prop_assert!((&l1 - &l2).norm_inf() < 1e-7);
            prop_assert!(cone.margin(&l1) > 0.0);
        }
    }
}
