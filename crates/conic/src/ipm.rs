//! Primal–dual interior-point method for linear and second-order cone
//! programs in standard form.
//!
//! The implementation follows the classic Nesterov–Todd scaled
//! path-following scheme with a Mehrotra predictor–corrector, as popularised
//! by CVXOPT and ECOS, specialised to dense problems without equality
//! constraints:
//!
//! ```text
//! minimise    cᵀx
//! subject to  G x + s = h,   s ∈ K,
//! ```
//!
//! with `K` a product of a nonnegative orthant and second-order cones. Every
//! iteration solves a dense normal-equation system `Gᵀ W⁻² G Δx = r` by
//! Cholesky factorisation, which is appropriate for the small, dense
//! formulations produced by the budget/buffer mapping problem (tens of
//! variables and at most a few hundred rows).

use crate::cone::Cone;
use crate::error::{ConicError, SolveStatus};
use crate::problem::ConeProblem;
use crate::scaling::NtScaling;
use bbs_linalg::{Cholesky, DMatrix, DVector, Ldlt};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the interior-point method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpmSettings {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Feasibility tolerance for the (relative) primal and dual residuals.
    pub tol_feasibility: f64,
    /// Absolute complementarity-gap tolerance.
    pub tol_gap_absolute: f64,
    /// Relative duality-gap tolerance.
    pub tol_gap_relative: f64,
    /// Threshold for declaring primal/dual infeasibility from the
    /// (normalised) certificate residuals.
    pub tol_infeasibility: f64,
    /// Static regularisation added to the normal-equation diagonal.
    pub regularization: f64,
    /// Fraction of the maximum step to the cone boundary actually taken.
    pub step_fraction: f64,
    /// Record the per-iteration trace (residuals and gap) in the solution.
    pub record_trace: bool,
}

impl Default for IpmSettings {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tol_feasibility: 1e-8,
            tol_gap_absolute: 1e-8,
            tol_gap_relative: 1e-8,
            tol_infeasibility: 1e-5,
            regularization: 1e-10,
            step_fraction: 0.99,
            record_trace: false,
        }
    }
}

impl IpmSettings {
    /// Settings with loose tolerances, useful for warm exploratory sweeps.
    pub fn fast() -> Self {
        Self {
            max_iterations: 60,
            tol_feasibility: 1e-6,
            tol_gap_absolute: 1e-6,
            tol_gap_relative: 1e-6,
            ..Self::default()
        }
    }
}

/// One entry of the per-iteration convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Relative primal residual `‖Gx + s − h‖ / max(1, ‖h‖)`.
    pub primal_residual: f64,
    /// Relative dual residual `‖Gᵀz + c‖ / max(1, ‖c‖)`.
    pub dual_residual: f64,
    /// Normalised complementarity gap `sᵀz / degree(K)`.
    pub gap: f64,
    /// Step length taken.
    pub step: f64,
}

/// Raw output of [`solve_cone_problem`].
#[derive(Debug, Clone)]
pub struct RawSolution {
    /// Primal variables `x`.
    pub x: DVector,
    /// Primal slacks `s ∈ K`.
    pub s: DVector,
    /// Dual variables `z ∈ K`.
    pub z: DVector,
    /// Termination status.
    pub status: SolveStatus,
    /// Iterations performed.
    pub iterations: usize,
    /// Primal objective `cᵀx`.
    pub primal_objective: f64,
    /// Dual objective `−hᵀz`.
    pub dual_objective: f64,
    /// Final normalised complementarity gap.
    pub gap: f64,
    /// Final relative primal residual.
    pub primal_residual: f64,
    /// Final relative dual residual.
    pub dual_residual: f64,
    /// Optional per-iteration trace (when requested in the settings).
    pub trace: Vec<IterationRecord>,
}

impl RawSolution {
    /// Returns `true` when the solver reached the requested tolerances.
    pub fn is_optimal(&self) -> bool {
        self.status.is_optimal()
    }
}

/// Solves a conic problem in standard form with the interior-point method.
///
/// # Errors
///
/// Returns [`ConicError`] when the problem data is inconsistent, when the
/// KKT systems cannot be factorised, or when the iterates break down
/// numerically. Infeasibility is *not* an error: it is reported through
/// [`SolveStatus::PrimalInfeasible`] / [`SolveStatus::DualInfeasible`].
pub fn solve_cone_problem(
    problem: &ConeProblem,
    settings: &IpmSettings,
) -> Result<RawSolution, ConicError> {
    problem.validate()?;
    let cone = &problem.cone;
    let (m, n) = (problem.g.nrows(), problem.g.ncols());

    if m == 0 {
        // No constraints: optimal iff c = 0, otherwise unbounded below.
        if problem.c.norm_inf() == 0.0 {
            return Ok(RawSolution {
                x: DVector::zeros(n),
                s: DVector::zeros(0),
                z: DVector::zeros(0),
                status: SolveStatus::Optimal,
                iterations: 0,
                primal_objective: 0.0,
                dual_objective: 0.0,
                gap: 0.0,
                primal_residual: 0.0,
                dual_residual: 0.0,
                trace: Vec::new(),
            });
        }
        return Err(ConicError::Unbounded);
    }

    let g = &problem.g;
    let h = &problem.h;
    let c = &problem.c;
    let degree = cone.degree().max(1) as f64;
    let e = cone.identity();

    // --- Initialisation (CVXOPT-style least-squares start) -----------------
    let mut x;
    let mut s;
    let mut z;
    {
        let mut gtg = g.transpose().matmul(g);
        let reg = settings.regularization.max(1e-12) * (1.0 + gtg.norm_inf());
        gtg.add_diagonal(reg);
        let chol =
            Cholesky::factor(&gtg).map_err(|_| ConicError::KktFactorisation { iteration: 0 })?;
        // Primal: x ≈ argmin ‖Gx − h‖, s = h − Gx shifted into the cone.
        x = chol.solve(&g.matvec_transpose(h));
        let s_cand = h - &g.matvec(&x);
        s = shift_into_cone(cone, s_cand, &e);
        // Dual: z = −G (GᵀG)⁻¹ c satisfies Gᵀz + c ≈ 0, then shift into cone.
        let w = chol.solve(c);
        let z_cand = -&g.matvec(&w);
        z = shift_into_cone(cone, z_cand, &e);
    }

    let h_norm = h.norm2().max(1.0);
    let c_norm = c.norm2().max(1.0);
    let mut trace = Vec::new();
    let mut best_status = SolveStatus::MaxIterations;
    let mut iterations_done = settings.max_iterations;

    for iteration in 0..settings.max_iterations {
        // Residuals.
        let rx = &g.matvec_transpose(&z) + c; // dual residual
        let rz = &(&g.matvec(&x) + &s) - h; // primal residual
        let gap = s.dot(&z) / degree;
        let pobj = c.dot(&x);
        let dobj = -h.dot(&z);
        let pres = rz.norm2() / h_norm;
        let dres = rx.norm2() / c_norm;
        let relgap = (pobj - dobj).abs() / pobj.abs().max(dobj.abs()).max(1.0);

        if settings.record_trace {
            trace.push(IterationRecord {
                iteration,
                primal_residual: pres,
                dual_residual: dres,
                gap,
                step: 0.0,
            });
        }

        if pres <= settings.tol_feasibility
            && dres <= settings.tol_feasibility
            && (gap <= settings.tol_gap_absolute || relgap <= settings.tol_gap_relative)
        {
            best_status = SolveStatus::Optimal;
            iterations_done = iteration;
            break;
        }

        // Infeasibility certificates (normalised).
        let hz = h.dot(&z);
        if hz < -1e-12 {
            let cert = g.matvec_transpose(&z).norm2() / (-hz);
            if cert <= settings.tol_infeasibility && cone.contains(&z, 1e-9) {
                best_status = SolveStatus::PrimalInfeasible;
                iterations_done = iteration;
                break;
            }
        }
        let cx = c.dot(&x);
        if cx < -1e-12 {
            let cert = (&g.matvec(&x) + &s).norm2() / (-cx);
            if cert <= settings.tol_infeasibility && cone.contains(&s, 1e-9) {
                best_status = SolveStatus::DualInfeasible;
                iterations_done = iteration;
                break;
            }
        }

        // Nesterov–Todd scaling. Near the solution the slacks approach the
        // cone boundary and the scaling may become uncomputable in floating
        // point; in that case stop with the best status supported by the
        // current residuals instead of failing hard.
        let scaling = match NtScaling::compute(cone, &s, &z) {
            Some(w) => w,
            None => {
                let loose = 1e3;
                best_status = if pres <= loose * settings.tol_feasibility
                    && dres <= loose * settings.tol_feasibility
                    && (gap <= loose * settings.tol_gap_absolute
                        || relgap <= loose * settings.tol_gap_relative)
                {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::MaxIterations
                };
                iterations_done = iteration;
                break;
            }
        };
        let lambda = scaling.lambda(&z);

        // Assemble the augmented (quasi-definite) KKT matrix
        //   [ δI    Gᵀ      ]
        //   [ G   −W² − δI ]
        // and factor it with LDLᵀ. Solving the augmented system instead of
        // the normal equations avoids squaring the condition number of the
        // scaled constraint matrix, which matters once bounds become active
        // and the slacks span many orders of magnitude.
        let w_squared = scaling.w_squared();
        let dim = n + m;
        let mut kkt_exact = DMatrix::zeros(dim, dim);
        for r in 0..m {
            for c_col in 0..n {
                let v = g[(r, c_col)];
                kkt_exact[(n + r, c_col)] = v;
                kkt_exact[(c_col, n + r)] = v;
            }
            for c_col in 0..m {
                kkt_exact[(n + r, n + c_col)] = -w_squared[(r, c_col)];
            }
        }
        let delta = settings.regularization * (1.0 + g.norm_inf());
        let mut kkt_regularised = kkt_exact.clone();
        for i in 0..n {
            kkt_regularised[(i, i)] += delta;
        }
        for i in 0..m {
            kkt_regularised[(n + i, n + i)] -= delta;
        }
        let ldlt = match Ldlt::factor(&kkt_regularised) {
            Ok(f) => f,
            Err(_) => {
                let bump = 1e-7 * (1.0 + kkt_exact.norm_inf());
                let mut heavier = kkt_exact.clone();
                for i in 0..n {
                    heavier[(i, i)] += bump;
                }
                for i in 0..m {
                    heavier[(n + i, n + i)] -= bump;
                }
                Ldlt::factor(&heavier).map_err(|_| ConicError::KktFactorisation { iteration })?
            }
        };
        // Solve the *exact* KKT system using the regularised factorisation as
        // a preconditioner, with a few steps of iterative refinement.
        let refine_solve = |rhs: &DVector| -> DVector {
            let mut sol = ldlt.solve(rhs);
            for _ in 0..3 {
                let residual = rhs - &kkt_exact.matvec(&sol);
                sol += &ldlt.solve(&residual);
            }
            sol
        };

        let kkt = |bs: &DVector, rx: &DVector, rz: &DVector| -> (DVector, DVector, DVector) {
            // [ 0  Gᵀ ] [Δx]   [ −rx        ]
            // [ G −W² ] [Δz] = [ −rz − W bs ]
            let w_bs = scaling.apply(bs);
            let mut rhs = DVector::zeros(dim);
            for i in 0..n {
                rhs[i] = -rx[i];
            }
            for i in 0..m {
                rhs[n + i] = -rz[i] - w_bs[i];
            }
            let sol = refine_solve(&rhs);
            let dx = DVector::from_vec(sol.as_slice()[..n].to_vec());
            let dz = DVector::from_vec(sol.as_slice()[n..].to_vec());
            // Δs = −rz − G Δx  (exactly satisfies the primal equation)
            let ds = -&(&g.matvec(&dx) + rz);
            (dx, ds, dz)
        };

        // Predictor (affine-scaling) direction: bs = λ \ (−λ∘λ) = −λ.
        let bs_aff = -&lambda;
        let (_dx_aff, ds_aff, dz_aff) = kkt(&bs_aff, &rx, &rz);
        let alpha_aff = cone
            .max_step(&s, &ds_aff, 1.0)
            .min(cone.max_step(&z, &dz_aff, 1.0))
            .min(1.0);
        let mut s_aff = s.clone();
        s_aff.axpy(alpha_aff, &ds_aff);
        let mut z_aff = z.clone();
        z_aff.axpy(alpha_aff, &dz_aff);
        let gap_aff = s_aff.dot(&z_aff) / degree;
        let sigma = if gap > 0.0 {
            (gap_aff / gap).clamp(0.0, 1.0).powi(3)
        } else {
            0.0
        };

        // Corrector (combined) direction.
        let ds_scaled = scaling.apply_inverse(&ds_aff);
        let dz_scaled = scaling.apply(&dz_aff);
        let correction = cone.jordan_product(&ds_scaled, &dz_scaled);
        let mut rhs_comp = -&cone.jordan_product(&lambda, &lambda);
        rhs_comp -= &correction;
        rhs_comp.axpy(sigma * gap, &e);
        let bs = cone.jordan_solve(&lambda, &rhs_comp);
        let (dx, ds, dz) = kkt(&bs, &rx, &rz);

        let alpha = (settings.step_fraction
            * cone
                .max_step(&s, &ds, f64::INFINITY)
                .min(cone.max_step(&z, &dz, f64::INFINITY)))
        .min(1.0);

        if !dx.is_finite() || !ds.is_finite() || !dz.is_finite() || alpha <= 0.0 {
            return Err(ConicError::NumericalBreakdown {
                iteration,
                detail: "non-finite search direction or zero step".to_string(),
            });
        }

        x.axpy(alpha, &dx);
        s.axpy(alpha, &ds);
        z.axpy(alpha, &dz);
        if let Some(last) = trace.last_mut() {
            last.step = alpha;
        }
    }

    let rx = &g.matvec_transpose(&z) + c;
    let rz = &(&g.matvec(&x) + &s) - h;
    Ok(RawSolution {
        primal_objective: c.dot(&x),
        dual_objective: -h.dot(&z),
        gap: s.dot(&z) / degree,
        primal_residual: rz.norm2() / h_norm,
        dual_residual: rx.norm2() / c_norm,
        x,
        s,
        z,
        status: best_status,
        iterations: iterations_done,
        trace,
    })
}

/// Shifts a candidate point into the cone interior: if the margin is not
/// comfortably positive, add `(1 + violation) · e`.
fn shift_into_cone(cone: &Cone, candidate: DVector, e: &DVector) -> DVector {
    let margin = cone.margin(&candidate);
    if margin > 1e-6 {
        candidate
    } else {
        let mut shifted = candidate;
        shifted.axpy(1.0 - margin, e);
        shifted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinExpr, ModelBuilder};
    use crate::{Cone, ConeBlock};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn default_settings() -> IpmSettings {
        IpmSettings::default()
    }

    #[test]
    fn simple_lp_box_constrained() {
        // min x + 2y  s.t. 1 ≤ x ≤ 4, 2 ≤ y ≤ 5  → x=1, y=2.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var_with_cost("y", 2.0);
        m.bound_lower(x, 1.0);
        m.bound_upper(x, 4.0);
        m.bound_lower(y, 2.0);
        m.bound_upper(y, 5.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
        assert!((sol.value(y) - 2.0).abs() < 1e-6);
        assert!((sol.objective() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn lp_with_coupling_constraint() {
        // max x + y s.t. x + 2y ≤ 4, x ≤ 2, x,y ≥ 0  (as minimisation of the
        // negative) → x = 2, y = 1.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", -1.0);
        let y = m.add_var_with_cost("y", -1.0);
        m.bound_lower(x, 0.0);
        m.bound_lower(y, 0.0);
        m.bound_upper(x, 2.0);
        m.add_le(LinExpr::term(1.0, x).plus(2.0, y), 4.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hyperbolic_constraint_am_gm() {
        // min x + y s.t. x·y ≥ 9 → x = y = 3.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var_with_cost("y", 1.0);
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.add_hyperbolic(x, y, 9.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(x) - 3.0).abs() < 1e-4);
        assert!((sol.value(y) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn hyperbolic_with_upper_bound() {
        // min x s.t. x·y ≥ 8, y ≤ 2 → y = 2, x = 4.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var("y");
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.bound_upper(y, 2.0);
        m.add_hyperbolic(x, y, 8.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(x) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn second_order_cone_projection() {
        // min t s.t. ‖(x−3, y−4)‖ ≤ t, x = y = 0 fixed via bounds → t = 5.
        use crate::problem::SocConstraint;
        let mut m = ModelBuilder::new();
        let t = m.add_var_with_cost("t", 1.0);
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.bound_lower(x, 0.0);
        m.bound_upper(x, 0.0);
        m.bound_lower(y, 0.0);
        m.bound_upper(y, 0.0);
        m.add_soc(SocConstraint {
            bound: LinExpr::term(1.0, t),
            norm_terms: vec![
                LinExpr::term(1.0, x).plus_constant(-3.0),
                LinExpr::term(1.0, y).plus_constant(-4.0),
            ],
        });
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(t) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn detects_primal_infeasibility() {
        // x ≥ 3 and x ≤ 1 cannot both hold.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        m.bound_lower(x, 3.0);
        m.bound_upper(x, 1.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert_eq!(sol.status(), SolveStatus::PrimalInfeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x with only x ≥ 0 → unbounded below.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", -1.0);
        m.bound_lower(x, 0.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        assert_eq!(sol.status(), SolveStatus::DualInfeasible);
    }

    #[test]
    fn empty_constraint_set() {
        use bbs_linalg::{DMatrix, DVector};
        let p = ConeProblem {
            c: DVector::zeros(2),
            g: DMatrix::zeros(0, 2),
            h: DVector::zeros(0),
            cone: Cone::new(vec![]),
        };
        let sol = solve_cone_problem(&p, &default_settings()).unwrap();
        assert!(sol.is_optimal());
        let p_unbounded = ConeProblem {
            c: DVector::from_slice(&[1.0, 0.0]),
            g: DMatrix::zeros(0, 2),
            h: DVector::zeros(0),
            cone: Cone::new(vec![]),
        };
        assert!(matches!(
            solve_cone_problem(&p_unbounded, &default_settings()),
            Err(ConicError::Unbounded)
        ));
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        m.bound_lower(x, 2.0);
        let model = m.build().unwrap();
        let mut settings = default_settings();
        settings.record_trace = true;
        let sol = solve_cone_problem(model.problem(), &settings).unwrap();
        assert!(!sol.trace.is_empty());
        assert!(sol.iterations >= 1);
    }

    #[test]
    fn fast_settings_still_converge() {
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var_with_cost("y", 1.0);
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.add_hyperbolic(x, y, 4.0);
        let sol = m.build().unwrap().solve(&IpmSettings::fast()).unwrap();
        assert!(sol.status().is_optimal());
        assert!((sol.value(x) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn duality_gap_closed_at_optimum() {
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 3.0);
        let y = m.add_var_with_cost("y", 2.0);
        m.bound_lower(x, 0.0);
        m.bound_lower(y, 0.0);
        m.add_ge(LinExpr::term(1.0, x).plus(1.0, y), 2.0);
        let sol = m.build().unwrap().solve(&default_settings()).unwrap();
        let raw = sol.raw();
        assert!((raw.primal_objective - raw.dual_objective).abs() < 1e-5);
        assert!(raw.gap < 1e-6);
        assert!(raw.primal_residual < 1e-6);
        assert!(raw.dual_residual < 1e-6);
    }

    #[test]
    fn cone_block_display_helpers() {
        // Exercise the re-exported cone API from the solver's perspective.
        let cone = Cone::new(vec![ConeBlock::NonNeg(2), ConeBlock::Soc(3)]);
        assert_eq!(cone.dim(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_random_box_lp_hits_bounds(seed in 0u64..1000, n in 1usize..6) {
            // min cᵀ x with li ≤ xi ≤ ui decomposes per coordinate:
            // xi* = li if ci > 0, ui if ci < 0.
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = ModelBuilder::new();
            let mut expected = Vec::new();
            let mut vars = Vec::new();
            for i in 0..n {
                let c: f64 = loop {
                    let v: f64 = rng.gen_range(-2.0..2.0);
                    if v.abs() > 0.1 { break v; }
                };
                let l = rng.gen_range(-5.0..0.0);
                let u = l + rng.gen_range(1.0..5.0);
                let v = m.add_var_with_cost(format!("x{i}"), c);
                m.bound_lower(v, l);
                m.bound_upper(v, u);
                vars.push(v);
                expected.push(if c > 0.0 { l } else { u });
            }
            let sol = m.build().unwrap().solve(&IpmSettings::default()).unwrap();
            prop_assert!(sol.status().is_optimal());
            for (v, &exp) in vars.iter().zip(expected.iter()) {
                prop_assert!((sol.value(*v) - exp).abs() < 1e-5,
                    "variable {:?}: got {}, expected {}", v, sol.value(*v), exp);
            }
        }

        #[test]
        fn prop_hyperbolic_min_matches_analytic(k in 0.5f64..20.0, ymax in 0.5f64..5.0) {
            // min x s.t. x·y ≥ k, y ≤ ymax  →  x = k / ymax.
            let mut m = ModelBuilder::new();
            let x = m.add_var_with_cost("x", 1.0);
            let y = m.add_var("y");
            m.bound_lower(x, 1e-9);
            m.bound_lower(y, 1e-9);
            m.bound_upper(y, ymax);
            m.add_hyperbolic(x, y, k);
            let sol = m.build().unwrap().solve(&IpmSettings::default()).unwrap();
            prop_assert!(sol.status().is_optimal());
            let expected = k / ymax;
            prop_assert!((sol.value(x) - expected).abs() < 1e-3 * (1.0 + expected));
        }
    }
}
