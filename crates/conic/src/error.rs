//! Error and status types for the conic solver.

use std::error::Error;
use std::fmt;

/// Errors reported by the modelling layer and the interior-point solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ConicError {
    /// The problem data has inconsistent dimensions.
    DimensionMismatch {
        /// Rows of `G`.
        rows: usize,
        /// Columns of `G`.
        cols: usize,
        /// Length of the objective vector `c`.
        c_len: usize,
        /// Length of the right-hand side `h`.
        h_len: usize,
        /// Total cone dimension.
        cone_dim: usize,
    },
    /// The problem data contains NaN or infinite entries.
    NonFiniteData,
    /// The KKT system could not be factorised even after regularisation.
    KktFactorisation {
        /// Iteration at which the failure occurred.
        iteration: usize,
    },
    /// The iterates left the cone or became non-finite.
    NumericalBreakdown {
        /// Iteration at which the failure occurred.
        iteration: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The problem has no conic rows and an unbounded objective direction.
    Unbounded,
}

impl fmt::Display for ConicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConicError::DimensionMismatch {
                rows,
                cols,
                c_len,
                h_len,
                cone_dim,
            } => write!(
                f,
                "dimension mismatch: G is {rows}x{cols}, |c|={c_len}, |h|={h_len}, cone dim {cone_dim}"
            ),
            ConicError::NonFiniteData => write!(f, "problem data contains non-finite values"),
            ConicError::KktFactorisation { iteration } => {
                write!(f, "KKT factorisation failed at iteration {iteration}")
            }
            ConicError::NumericalBreakdown { iteration, detail } => {
                write!(f, "numerical breakdown at iteration {iteration}: {detail}")
            }
            ConicError::Unbounded => write!(f, "problem is unbounded below"),
        }
    }
}

impl Error for ConicError {}

/// Termination status of the interior-point method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Converged to the requested tolerances.
    Optimal,
    /// A certificate of primal infeasibility was found (no `x` satisfies the
    /// constraints).
    PrimalInfeasible,
    /// A certificate of dual infeasibility was found (the objective is
    /// unbounded below over the feasible set).
    DualInfeasible,
    /// The iteration limit was reached; the returned iterate is the best
    /// found but may not satisfy the tolerances.
    MaxIterations,
}

impl SolveStatus {
    /// Returns `true` for [`SolveStatus::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, SolveStatus::Optimal)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::PrimalInfeasible => "primal infeasible",
            SolveStatus::DualInfeasible => "dual infeasible (unbounded)",
            SolveStatus::MaxIterations => "iteration limit reached",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConicError::DimensionMismatch {
            rows: 1,
            cols: 2,
            c_len: 3,
            h_len: 4,
            cone_dim: 5,
        };
        let msg = e.to_string();
        for token in ["1", "2", "3", "4", "5"] {
            assert!(msg.contains(token));
        }
        assert!(!ConicError::NonFiniteData.to_string().is_empty());
        assert!(ConicError::KktFactorisation { iteration: 7 }
            .to_string()
            .contains('7'));
        assert!(ConicError::NumericalBreakdown {
            iteration: 3,
            detail: "cone exit".into()
        }
        .to_string()
        .contains("cone exit"));
        assert!(!ConicError::Unbounded.to_string().is_empty());
    }

    #[test]
    fn status_helpers() {
        assert!(SolveStatus::Optimal.is_optimal());
        assert!(!SolveStatus::MaxIterations.is_optimal());
        assert_eq!(
            SolveStatus::PrimalInfeasible.to_string(),
            "primal infeasible"
        );
    }
}
