//! Outer-approximation (cutting-plane) solver for models whose only
//! non-linear constraints are hyperbolic constraints `x·y ≥ k`.
//!
//! This provides an independent cross-check of the interior-point SOCP
//! solver and serves as an ablation point in the benchmarks: the paper's
//! formulation could in principle be solved by repeatedly linearising the
//! budget-reciprocal relation, at the cost of an outer iteration loop whose
//! length is data-dependent, whereas the SOCP formulation is solved in one
//! polynomial-complexity call.

use crate::error::ConicError;
use crate::ipm::IpmSettings;
use crate::problem::{LinExpr, ModelBuilder, Solution};
use serde::{Deserialize, Serialize};

/// Parameters for the cutting-plane loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuttingPlaneSettings {
    /// Maximum number of LP rounds.
    pub max_rounds: usize,
    /// Relative violation below which a hyperbolic constraint is accepted.
    pub tol_violation: f64,
    /// Floor used when a linearisation point collapses towards zero.
    pub min_linearization_point: f64,
}

impl Default for CuttingPlaneSettings {
    fn default() -> Self {
        Self {
            max_rounds: 60,
            tol_violation: 1e-7,
            min_linearization_point: 1e-6,
        }
    }
}

/// Outcome of [`solve_with_cutting_planes`].
#[derive(Debug, Clone)]
pub struct CuttingPlaneOutcome {
    /// The solution of the final LP relaxation.
    pub solution: Solution,
    /// Number of LP rounds performed.
    pub rounds: usize,
    /// Total number of cuts added.
    pub cuts: usize,
    /// Whether every hyperbolic constraint is satisfied to tolerance.
    pub converged: bool,
}

/// Solves a model by outer approximation: hyperbolic constraints `x·y ≥ k`
/// are replaced by an increasing collection of tangent cuts
/// `y + (k/x₀²)·x ≥ 2k/x₀`, each LP relaxation being solved by the
/// interior-point method restricted to the nonnegative orthant.
///
/// # Errors
///
/// Propagates modelling and solver errors from the underlying LP solves.
pub fn solve_with_cutting_planes(
    builder: &ModelBuilder,
    ipm: &IpmSettings,
    settings: &CuttingPlaneSettings,
) -> Result<CuttingPlaneOutcome, ConicError> {
    let hyperbolics = builder.hyperbolic_constraints().to_vec();
    let mut working = builder.clone();
    working.clear_hyperbolic_constraints();

    // The accumulated tangent cuts are nearly parallel around the optimum,
    // which makes the LP relaxations increasingly degenerate. Solving them to
    // the (tight) SOCP tolerances is neither possible nor useful — the outer
    // loop only needs the iterate to decide where to cut next — so the LP
    // tolerances are floored at 1e-6.
    let mut ipm = ipm.clone();
    ipm.tol_feasibility = ipm.tol_feasibility.max(1e-6);
    ipm.tol_gap_absolute = ipm.tol_gap_absolute.max(1e-6);
    ipm.tol_gap_relative = ipm.tol_gap_relative.max(1e-6);
    let ipm = &ipm;

    // Seed one tangent per constraint at the geometric centre `x₀ = √k` so
    // the first relaxation is already sensible.
    let mut cuts = 0usize;
    for &(x, y, k) in &hyperbolics {
        add_tangent_cut(&mut working, x, y, k, k.sqrt());
        cuts += 1;
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let solution = working.clone().build()?.solve(ipm)?;
        if !solution.status().is_optimal() {
            // Either the relaxation is already infeasible (adding cuts can
            // only make it more so) or the LP could not be solved reliably;
            // in both cases the iterate cannot be trusted to place further
            // cuts, so report immediately instead of looping.
            return Ok(CuttingPlaneOutcome {
                solution,
                rounds,
                cuts,
                converged: false,
            });
        }
        let mut violated = 0usize;
        for &(x, y, k) in &hyperbolics {
            let xv = solution.value(x);
            let yv = solution.value(y);
            if xv * yv < k * (1.0 - settings.tol_violation) {
                // Linearise around the better-conditioned estimate of x: the
                // current value of x itself, or the value implied by the
                // current y (x = k/y). Taking the maximum keeps the cut slope
                // k/x₀² bounded even when the LP drove x towards zero.
                let implied = if yv > settings.min_linearization_point {
                    k / yv
                } else {
                    0.0
                };
                let x0 = xv.max(implied).max(settings.min_linearization_point);
                add_tangent_cut(&mut working, x, y, k, x0);
                cuts += 1;
                violated += 1;
            }
        }
        if violated == 0 || rounds >= settings.max_rounds {
            return Ok(CuttingPlaneOutcome {
                solution,
                rounds,
                cuts,
                converged: violated == 0,
            });
        }
    }
}

/// Adds the tangent of `y ≥ k/x` at `x = x0`: `y + (k/x0²)·x ≥ 2k/x0`.
fn add_tangent_cut(builder: &mut ModelBuilder, x: crate::VarId, y: crate::VarId, k: f64, x0: f64) {
    let slope = k / (x0 * x0);
    builder.add_ge(LinExpr::term(1.0, y).plus(slope, x), 2.0 * k / x0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;

    #[test]
    fn matches_ipm_on_symmetric_problem() {
        // min x + y s.t. x·y ≥ 9  → x = y = 3.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var_with_cost("y", 1.0);
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.add_hyperbolic(x, y, 9.0);
        let outcome = solve_with_cutting_planes(
            &m,
            &IpmSettings::default(),
            &CuttingPlaneSettings::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert!((outcome.solution.value(x) - 3.0).abs() < 1e-3);
        assert!((outcome.solution.value(y) - 3.0).abs() < 1e-3);
        // The seed tangent at x₀ = √k touches the hyperbola exactly at the
        // symmetric optimum, so a single cut suffices.
        assert!(outcome.cuts >= 1);
    }

    #[test]
    fn matches_analytic_with_bound() {
        // min x s.t. x·y ≥ 8, y ≤ 2 → x = 4.
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var("y");
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.bound_upper(y, 2.0);
        m.add_hyperbolic(x, y, 8.0);
        let outcome = solve_with_cutting_planes(
            &m,
            &IpmSettings::default(),
            &CuttingPlaneSettings::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert!((outcome.solution.value(x) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn pure_lp_converges_in_one_round() {
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        m.bound_lower(x, 5.0);
        let outcome = solve_with_cutting_planes(
            &m,
            &IpmSettings::default(),
            &CuttingPlaneSettings::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.cuts, 0);
        assert!((outcome.solution.value(x) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn round_limit_is_respected() {
        let mut m = ModelBuilder::new();
        let x = m.add_var_with_cost("x", 1.0);
        let y = m.add_var_with_cost("y", 1.0);
        m.bound_lower(x, 1e-6);
        m.bound_lower(y, 1e-6);
        m.add_hyperbolic(x, y, 25.0);
        let strict = CuttingPlaneSettings {
            max_rounds: 1,
            ..CuttingPlaneSettings::default()
        };
        let outcome = solve_with_cutting_planes(&m, &IpmSettings::default(), &strict).unwrap();
        assert_eq!(outcome.rounds, 1);
    }
}
