//! Copy-on-write configuration views.
//!
//! Sweeps evaluate the same [`Configuration`] under many small per-point
//! deltas — today a uniform buffer-capacity cap per sweep point. Cloning the
//! full configuration for every point makes suite *expansion* O(points ×
//! model size) in allocations, which dominates the profile on 10k+-point
//! suites. A [`ConfigView`] removes that cost: it is an
//! `Arc<Configuration>` base plus the delta, cheap to clone (one reference
//! count bump), and it serialises canonically to **exactly** the bytes the
//! materialised clone would produce — so canonical digests, cache keys and
//! store paths derived from a view are indistinguishable from ones derived
//! from a clone. The full configuration is only materialised (once, cached)
//! where real mutation is needed, e.g. at a solver boundary.

use crate::buffer::Buffer;
use crate::canonical::CanonicalDigest;
use crate::configuration::Configuration;
use serde::{canonical, Serialize, Serializer};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A copy-on-write view of a [`Configuration`]: a shared base plus an
/// optional uniform capacity cap applied to every buffer.
///
/// The capped view models what
/// [`with_max_capacity`](crate::Buffer::with_max_capacity) applied to every
/// buffer would produce: the cap *replaces* any per-buffer cap of the base.
/// This matches the capacity sweep of the paper's experiments, where each
/// sweep point constrains all buffers uniformly.
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use bbs_taskgraph::ConfigView;
/// use std::sync::Arc;
///
/// let base = Arc::new(producer_consumer(PaperParameters::default(), None));
/// let view = ConfigView::with_capacity_cap(Arc::clone(&base), 10);
/// // Streams the same canonical bytes as a materialised clone:
/// assert_eq!(view.canonical_json(), view.config().canonical_json());
/// assert_eq!(view.canonical_digest(), view.config().canonical_digest());
/// ```
#[derive(Debug, Clone)]
pub struct ConfigView {
    base: Arc<Configuration>,
    capacity_cap: Option<u64>,
    materialised: OnceLock<Arc<Configuration>>,
}

impl ConfigView {
    /// A view of the base configuration with no delta.
    pub fn new(base: Arc<Configuration>) -> Self {
        Self {
            base,
            capacity_cap: None,
            materialised: OnceLock::new(),
        }
    }

    /// A view that caps the capacity of **every** buffer at `cap`
    /// containers, replacing any per-buffer cap of the base.
    ///
    /// # Panics
    ///
    /// Panics if the cap is zero (mirrors
    /// [`Buffer::with_max_capacity`](crate::Buffer::with_max_capacity)).
    pub fn with_capacity_cap(base: Arc<Configuration>, cap: u64) -> Self {
        assert!(cap > 0, "maximum capacity must be positive");
        Self {
            base,
            capacity_cap: Some(cap),
            materialised: OnceLock::new(),
        }
    }

    /// The shared base configuration, without the delta applied.
    pub fn base(&self) -> &Arc<Configuration> {
        &self.base
    }

    /// The uniform capacity cap of this view, if any.
    pub fn capacity_cap(&self) -> Option<u64> {
        self.capacity_cap
    }

    /// The effective configuration: the base itself when the view carries no
    /// delta, otherwise a materialised clone with the cap applied (computed
    /// once and cached; subsequent calls are free).
    pub fn config(&self) -> &Configuration {
        match self.capacity_cap {
            None => &self.base,
            Some(cap) => self
                .materialised
                .get_or_init(|| Arc::new(apply_capacity_cap(&self.base, cap))),
        }
    }

    /// The effective configuration as a shared handle — the base `Arc` when
    /// the view carries no delta, the cached materialisation otherwise.
    pub fn materialise(&self) -> Arc<Configuration> {
        match self.capacity_cap {
            None => Arc::clone(&self.base),
            Some(cap) => Arc::clone(
                self.materialised
                    .get_or_init(|| Arc::new(apply_capacity_cap(&self.base, cap))),
            ),
        }
    }

    /// The canonical JSON of the effective configuration, streamed from the
    /// view — byte-identical to
    /// [`Configuration::canonical_json`] of [`ConfigView::config`], but
    /// without materialising the capped clone.
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        self.serialize_canonical(&mut out);
        out
    }

    /// The streaming [`CanonicalDigest`] of the effective configuration —
    /// equal to [`Configuration::canonical_digest`] of
    /// [`ConfigView::config`], computed without materialising anything.
    pub fn canonical_digest(&self) -> CanonicalDigest {
        crate::canonical::canonical_digest_of(self)
    }
}

impl fmt::Display for ConfigView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.capacity_cap {
            None => write!(f, "view of {}", self.base),
            Some(cap) => write!(f, "view of {} (capacity cap {cap})", self.base),
        }
    }
}

/// Applies a uniform capacity cap to every buffer of a configuration,
/// returning the capped clone. The cap replaces any existing per-buffer cap.
///
/// This is the materialisation primitive behind both
/// [`ConfigView::config`] and the core crate's capacity-sweep helper, so a
/// capped view and a capped clone can never diverge.
///
/// # Panics
///
/// Panics if the cap is zero.
pub fn apply_capacity_cap(base: &Configuration, cap: u64) -> Configuration {
    let mut capped = base.clone();
    for reference in base.all_buffers() {
        let graph = capped.task_graph_mut(reference.graph);
        *graph.buffer_mut(reference.buffer) = graph
            .buffer(reference.buffer)
            .clone()
            .with_max_capacity(cap);
    }
    capped
}

impl Serialize for ConfigView {
    fn serialize(&self) -> serde::Value {
        self.config().serialize()
    }

    // The capped arm re-emits the derived layout of `Configuration` /
    // `TaskGraph` / `Buffer` (fields in declaration order) with the cap
    // substituted for each buffer's `max_capacity`; the byte-identity with a
    // materialised clone is property-tested in `tests/streaming_digest.rs`.
    fn serialize_canonical(&self, out: &mut dyn Serializer) {
        let Some(cap) = self.capacity_cap else {
            self.base.serialize_canonical(out);
            return;
        };
        out.write_bytes(b"{\"processors\":[");
        for (i, (_, processor)) in self.base.processors().enumerate() {
            if i > 0 {
                out.write_bytes(b",");
            }
            processor.serialize_canonical(out);
        }
        out.write_bytes(b"],\"memories\":[");
        for (i, (_, memory)) in self.base.memories().enumerate() {
            if i > 0 {
                out.write_bytes(b",");
            }
            memory.serialize_canonical(out);
        }
        out.write_bytes(b"],\"task_graphs\":[");
        for (i, (_, graph)) in self.base.task_graphs().enumerate() {
            if i > 0 {
                out.write_bytes(b",");
            }
            out.write_bytes(b"{\"name\":");
            canonical::write_json_string(out, graph.name());
            out.write_bytes(b",\"period\":");
            canonical::write_f64(out, graph.period());
            out.write_bytes(b",\"tasks\":[");
            for (j, (_, task)) in graph.tasks().enumerate() {
                if j > 0 {
                    out.write_bytes(b",");
                }
                task.serialize_canonical(out);
            }
            out.write_bytes(b"],\"buffers\":[");
            for (j, (_, buffer)) in graph.buffers().enumerate() {
                if j > 0 {
                    out.write_bytes(b",");
                }
                write_capped_buffer(buffer, cap, out);
            }
            out.write_bytes(b"]}");
        }
        out.write_bytes(b"],\"budget_granularity\":");
        canonical::write_display(out, self.base.budget_granularity());
        out.write_bytes(b"}");
    }
}

/// Streams one buffer with its `max_capacity` replaced by `cap`.
fn write_capped_buffer(buffer: &Buffer, cap: u64, out: &mut dyn Serializer) {
    out.write_bytes(b"{\"name\":");
    canonical::write_json_string(out, buffer.name());
    out.write_bytes(b",\"producer\":");
    buffer.producer().serialize_canonical(out);
    out.write_bytes(b",\"consumer\":");
    buffer.consumer().serialize_canonical(out);
    out.write_bytes(b",\"memory\":");
    buffer.memory().serialize_canonical(out);
    out.write_bytes(b",\"container_size\":");
    canonical::write_display(out, buffer.container_size());
    out.write_bytes(b",\"initial_tokens\":");
    canonical::write_display(out, buffer.initial_tokens());
    out.write_bytes(b",\"storage_weight\":");
    canonical::write_f64(out, buffer.storage_weight());
    out.write_bytes(b",\"max_capacity\":");
    canonical::write_display(out, cap);
    out.write_bytes(b"}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{producer_consumer, PaperParameters};

    fn base() -> Arc<Configuration> {
        Arc::new(producer_consumer(PaperParameters::default(), None))
    }

    #[test]
    fn uncapped_view_is_the_base() {
        let base = base();
        let view = ConfigView::new(Arc::clone(&base));
        assert!(view.capacity_cap().is_none());
        assert!(std::ptr::eq(view.config(), &*base));
        assert!(Arc::ptr_eq(&view.materialise(), &base));
        assert_eq!(view.canonical_json(), base.canonical_json());
        assert_eq!(view.canonical_digest(), base.canonical_digest());
    }

    #[test]
    fn capped_view_streams_the_capped_clone_bytes() {
        let base = base();
        for cap in [1, 7, 10, u64::MAX] {
            let view = ConfigView::with_capacity_cap(Arc::clone(&base), cap);
            let clone = apply_capacity_cap(&base, cap);
            assert_eq!(view.canonical_json(), clone.canonical_json());
            assert_eq!(view.canonical_digest(), clone.canonical_digest());
            assert_eq!(view.config(), &clone);
        }
    }

    #[test]
    fn cap_replaces_existing_per_buffer_caps() {
        let capped_base = Arc::new(apply_capacity_cap(&base(), 3));
        let view = ConfigView::with_capacity_cap(Arc::clone(&capped_base), 9);
        let clone = apply_capacity_cap(&capped_base, 9);
        assert_eq!(view.canonical_json(), clone.canonical_json());
        for reference in view.config().all_buffers() {
            let buffer = view
                .config()
                .task_graph(reference.graph)
                .buffer(reference.buffer);
            assert_eq!(buffer.max_capacity(), Some(9));
        }
    }

    #[test]
    fn materialisation_is_cached_and_shared() {
        let view = ConfigView::with_capacity_cap(base(), 5);
        let first = view.materialise();
        let second = view.materialise();
        assert!(Arc::ptr_eq(&first, &second));
        assert!(std::ptr::eq(view.config(), &*first));
    }

    #[test]
    fn clone_shares_the_base() {
        let view = ConfigView::with_capacity_cap(base(), 5);
        let copy = view.clone();
        assert!(Arc::ptr_eq(view.base(), copy.base()));
        assert_eq!(copy.capacity_cap(), Some(5));
    }

    #[test]
    fn display_mentions_the_cap() {
        let base = base();
        assert!(!ConfigView::new(Arc::clone(&base))
            .to_string()
            .contains("cap"));
        assert!(ConfigView::with_capacity_cap(base, 4)
            .to_string()
            .contains("capacity cap 4"));
    }

    #[test]
    #[should_panic(expected = "maximum capacity must be positive")]
    fn zero_cap_is_rejected_at_construction() {
        let _ = ConfigView::with_capacity_cap(base(), 0);
    }

    #[test]
    fn tree_serialisation_matches_the_materialised_config() {
        let view = ConfigView::with_capacity_cap(base(), 6);
        assert_eq!(
            serde_json::to_string(&view).unwrap(),
            view.config().canonical_json()
        );
    }
}
