//! Tasks of a streaming job.

use crate::ids::ProcessorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A task of a task graph.
///
/// A task `w` is bound to a processor `π(w)`, has a worst-case execution
/// time `χ(w)` (in cycles, per firing) and a non-negative weight `a(w)` used
/// in the objective function of the joint budget/buffer optimisation
/// (larger weight means the optimiser tries harder to reduce this task's
/// budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    wcet: f64,
    processor: ProcessorId,
    budget_weight: f64,
}

impl Task {
    /// Creates a task with unit budget weight.
    ///
    /// # Panics
    ///
    /// Panics if the worst-case execution time is not strictly positive and
    /// finite.
    pub fn new(name: impl Into<String>, wcet: f64, processor: ProcessorId) -> Self {
        Self::with_weight(name, wcet, processor, 1.0)
    }

    /// Creates a task with an explicit budget weight `a(w)`.
    ///
    /// # Panics
    ///
    /// Panics if the worst-case execution time is not strictly positive and
    /// finite, or if the weight is negative or not finite.
    pub fn with_weight(
        name: impl Into<String>,
        wcet: f64,
        processor: ProcessorId,
        budget_weight: f64,
    ) -> Self {
        assert!(
            wcet.is_finite() && wcet > 0.0,
            "worst-case execution time must be positive and finite"
        );
        assert!(
            budget_weight.is_finite() && budget_weight >= 0.0,
            "budget weight must be non-negative and finite"
        );
        Self {
            name: name.into(),
            wcet,
            processor,
            budget_weight,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time `χ(w)` per firing, in cycles.
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Processor binding `π(w)`.
    pub fn processor(&self) -> ProcessorId {
        self.processor
    }

    /// Objective weight `a(w)` of this task's budget.
    pub fn budget_weight(&self) -> f64 {
        self.budget_weight
    }

    /// Overrides the budget weight, returning the modified task.
    #[must_use]
    pub fn weighted(mut self, budget_weight: f64) -> Self {
        assert!(
            budget_weight.is_finite() && budget_weight >= 0.0,
            "budget weight must be non-negative and finite"
        );
        self.budget_weight = budget_weight;
        self
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (wcet {} on {}, weight {})",
            self.name, self.wcet, self.processor, self.budget_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Task::new("decode", 1.0, ProcessorId::new(0));
        assert_eq!(t.name(), "decode");
        assert_eq!(t.wcet(), 1.0);
        assert_eq!(t.processor(), ProcessorId::new(0));
        assert_eq!(t.budget_weight(), 1.0);
    }

    #[test]
    fn weighted_overrides_weight() {
        let t = Task::new("mix", 2.0, ProcessorId::new(1)).weighted(5.0);
        assert_eq!(t.budget_weight(), 5.0);
        assert!(t.to_string().contains("mix"));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_wcet() {
        let _ = Task::new("bad", 0.0, ProcessorId::new(0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let _ = Task::with_weight("bad", 1.0, ProcessorId::new(0), -1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Task::with_weight("fft", 3.5, ProcessorId::new(2), 0.5);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Task>(&json).unwrap(), t);
    }
}
