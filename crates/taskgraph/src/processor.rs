//! Processors with budget (TDM) schedulers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor running a budget scheduler.
///
/// Following the paper, a processor `p` is characterised by its
/// replenishment interval `̺(p)` (the period of the TDM wheel, in cycles)
/// and the worst-case scheduling overhead `o(p)` incurred per replenishment
/// interval. Budgets allocated to the tasks bound to `p` must fit inside the
/// replenishment interval together with the overhead (Constraint 9).
///
/// Times are expressed in abstract cycles (the paper uses Mcycles); the unit
/// only has to be consistent across the whole configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    name: String,
    replenishment_interval: f64,
    scheduling_overhead: f64,
}

impl Processor {
    /// Creates a processor with the given replenishment interval and zero
    /// scheduling overhead.
    ///
    /// # Panics
    ///
    /// Panics if the replenishment interval is not strictly positive or not
    /// finite.
    pub fn new(name: impl Into<String>, replenishment_interval: f64) -> Self {
        Self::with_overhead(name, replenishment_interval, 0.0)
    }

    /// Creates a processor with an explicit worst-case scheduling overhead
    /// per replenishment interval.
    ///
    /// # Panics
    ///
    /// Panics if the replenishment interval is not strictly positive, if the
    /// overhead is negative, or if either is not finite.
    pub fn with_overhead(
        name: impl Into<String>,
        replenishment_interval: f64,
        scheduling_overhead: f64,
    ) -> Self {
        assert!(
            replenishment_interval.is_finite() && replenishment_interval > 0.0,
            "replenishment interval must be positive and finite"
        );
        assert!(
            scheduling_overhead.is_finite() && scheduling_overhead >= 0.0,
            "scheduling overhead must be non-negative and finite"
        );
        Self {
            name: name.into(),
            replenishment_interval,
            scheduling_overhead,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replenishment interval `̺(p)` in cycles.
    pub fn replenishment_interval(&self) -> f64 {
        self.replenishment_interval
    }

    /// Worst-case scheduling overhead `o(p)` per replenishment interval.
    pub fn scheduling_overhead(&self) -> f64 {
        self.scheduling_overhead
    }

    /// Cycles per replenishment interval that remain allocatable to budgets.
    pub fn allocatable_capacity(&self) -> f64 {
        (self.replenishment_interval - self.scheduling_overhead).max(0.0)
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (replenishment {} cycles, overhead {} cycles)",
            self.name, self.replenishment_interval, self.scheduling_overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Processor::new("p1", 40.0);
        assert_eq!(p.name(), "p1");
        assert_eq!(p.replenishment_interval(), 40.0);
        assert_eq!(p.scheduling_overhead(), 0.0);
        assert_eq!(p.allocatable_capacity(), 40.0);
    }

    #[test]
    fn overhead_reduces_allocatable_capacity() {
        let p = Processor::with_overhead("p2", 40.0, 2.5);
        assert_eq!(p.allocatable_capacity(), 37.5);
        assert!(p.to_string().contains("p2"));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_replenishment() {
        let _ = Processor::new("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_overhead() {
        let _ = Processor::with_overhead("bad", 40.0, -1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Processor::with_overhead("dsp", 80.0, 1.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Processor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
