//! Configurations: the full input of the mapping problem.

use crate::error::ModelError;
use crate::graph::TaskGraph;
use crate::ids::{BufferRef, MemoryId, ProcessorId, TaskGraphId, TaskRef};
use crate::memory::Memory;
use crate::processor::Processor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The complete input of the joint budget/buffer computation.
///
/// A configuration corresponds to the tuple
/// `C = (Q, P, M, µ, ̺, o, ς, g)` of the paper: a set `Q` of task graphs
/// (each carrying its throughput requirement `µ`), a set `P` of processors
/// (each with replenishment interval `̺` and overhead `o`), a set `M` of
/// memories (with capacities `ς`), and the budget allocation granularity
/// `g`. The per-task and per-buffer objective weights live on the tasks and
/// buffers themselves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    processors: Vec<Processor>,
    memories: Vec<Memory>,
    task_graphs: Vec<TaskGraph>,
    budget_granularity: u64,
}

impl Configuration {
    /// Creates an empty configuration with unit budget granularity.
    pub fn new() -> Self {
        Self {
            processors: Vec::new(),
            memories: Vec::new(),
            task_graphs: Vec::new(),
            budget_granularity: 1,
        }
    }

    /// Sets the budget allocation granularity `g` (budgets are multiples of
    /// `g` cycles).
    ///
    /// # Panics
    ///
    /// Panics if the granularity is zero.
    pub fn set_budget_granularity(&mut self, granularity: u64) {
        assert!(granularity > 0, "budget granularity must be at least 1");
        self.budget_granularity = granularity;
    }

    /// Budget allocation granularity `g`.
    pub fn budget_granularity(&self) -> u64 {
        self.budget_granularity
    }

    /// Adds a processor, returning its identifier.
    pub fn add_processor(&mut self, processor: Processor) -> ProcessorId {
        let id = ProcessorId::new(self.processors.len());
        self.processors.push(processor);
        id
    }

    /// Adds a memory, returning its identifier.
    pub fn add_memory(&mut self, memory: Memory) -> MemoryId {
        let id = MemoryId::new(self.memories.len());
        self.memories.push(memory);
        id
    }

    /// Adds a task graph, returning its identifier.
    pub fn add_task_graph(&mut self, graph: TaskGraph) -> TaskGraphId {
        let id = TaskGraphId::new(self.task_graphs.len());
        self.task_graphs.push(graph);
        id
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// Number of memories.
    pub fn num_memories(&self) -> usize {
        self.memories.len()
    }

    /// Number of task graphs.
    pub fn num_task_graphs(&self) -> usize {
        self.task_graphs.len()
    }

    /// Total number of tasks across all task graphs.
    pub fn num_tasks(&self) -> usize {
        self.task_graphs.iter().map(TaskGraph::num_tasks).sum()
    }

    /// Total number of buffers across all task graphs.
    pub fn num_buffers(&self) -> usize {
        self.task_graphs.iter().map(TaskGraph::num_buffers).sum()
    }

    /// Access a processor.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn processor(&self, id: ProcessorId) -> &Processor {
        &self.processors[id.index()]
    }

    /// Access a memory.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn memory(&self, id: MemoryId) -> &Memory {
        &self.memories[id.index()]
    }

    /// Access a task graph.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn task_graph(&self, id: TaskGraphId) -> &TaskGraph {
        &self.task_graphs[id.index()]
    }

    /// Mutable access to a task graph (used by trade-off sweeps).
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn task_graph_mut(&mut self, id: TaskGraphId) -> &mut TaskGraph {
        &mut self.task_graphs[id.index()]
    }

    /// Iterator over `(ProcessorId, &Processor)` pairs.
    pub fn processors(&self) -> impl Iterator<Item = (ProcessorId, &Processor)> {
        self.processors
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessorId::new(i), p))
    }

    /// Iterator over `(MemoryId, &Memory)` pairs.
    pub fn memories(&self) -> impl Iterator<Item = (MemoryId, &Memory)> {
        self.memories
            .iter()
            .enumerate()
            .map(|(i, m)| (MemoryId::new(i), m))
    }

    /// Iterator over `(TaskGraphId, &TaskGraph)` pairs.
    pub fn task_graphs(&self) -> impl Iterator<Item = (TaskGraphId, &TaskGraph)> {
        self.task_graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (TaskGraphId::new(i), g))
    }

    /// All tasks of the configuration (the set `W_Q` of the paper).
    pub fn all_tasks(&self) -> Vec<TaskRef> {
        let mut out = Vec::new();
        for (gid, graph) in self.task_graphs() {
            for (tid, _) in graph.tasks() {
                out.push(TaskRef::new(gid, tid));
            }
        }
        out
    }

    /// All buffers of the configuration (the set `B_Q` of the paper).
    pub fn all_buffers(&self) -> Vec<BufferRef> {
        let mut out = Vec::new();
        for (gid, graph) in self.task_graphs() {
            for (bid, _) in graph.buffers() {
                out.push(BufferRef::new(gid, bid));
            }
        }
        out
    }

    /// Tasks bound to the given processor (the set `τ(p)` of the paper).
    pub fn tasks_on_processor(&self, processor: ProcessorId) -> Vec<TaskRef> {
        self.all_tasks()
            .into_iter()
            .filter(|r| self.task_graph(r.graph).task(r.task).processor() == processor)
            .collect()
    }

    /// Buffers placed in the given memory (the set `ψ(m)` of the paper).
    pub fn buffers_in_memory(&self, memory: MemoryId) -> Vec<BufferRef> {
        self.all_buffers()
            .into_iter()
            .filter(|r| self.task_graph(r.graph).buffer(r.buffer).memory() == memory)
            .collect()
    }

    /// Validates the configuration: non-empty, consistent bindings and a
    /// basic per-task attainability check (a task that cannot reach its
    /// graph's period even with the full processor is rejected early with a
    /// precise error instead of a generic solver infeasibility).
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.task_graphs.is_empty() {
            return Err(ModelError::EmptyConfiguration);
        }
        if self.processors.is_empty() {
            return Err(ModelError::NoProcessors);
        }
        if self.budget_granularity == 0 {
            return Err(ModelError::ZeroGranularity);
        }
        for (gid, graph) in self.task_graphs() {
            graph.validate()?;
            for (tid, task) in graph.tasks() {
                if task.processor().index() >= self.processors.len() {
                    return Err(ModelError::UnknownProcessor {
                        graph: gid,
                        task: tid,
                        processor: task.processor(),
                    });
                }
                // With the full replenishment interval allocated as budget,
                // the dataflow model executes the task in exactly χ(w) per
                // firing; the self-loop of the execution actor then requires
                // χ(w) ≤ µ(T). Anything above is structurally infeasible.
                let min_period = task.wcet();
                if min_period > graph.period() {
                    return Err(ModelError::PeriodUnattainable {
                        graph: gid,
                        task: tid,
                        minimum_period: min_period,
                        required_period: graph.period(),
                    });
                }
            }
            for (bid, buffer) in graph.buffers() {
                if buffer.memory().index() >= self.memories.len() {
                    return Err(ModelError::UnknownMemory {
                        graph: gid,
                        buffer: bid,
                        memory: buffer.memory(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Configuration {
    /// The canonical JSON form of the configuration: the compact
    /// serialisation of the full model. Field order is fixed by the struct
    /// definitions and every map in the model is ordered, so two equal
    /// configurations always produce the same bytes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration contains a non-finite float (such values
    /// never pass [`Configuration::validate`]).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("configuration serialises to JSON")
    }

    /// A 64-bit FNV-1a fingerprint of [`Configuration::canonical_json`] —
    /// the low lane of [`Configuration::canonical_digest`], computed by
    /// streaming (no JSON string is materialised).
    pub fn canonical_fingerprint(&self) -> u64 {
        self.canonical_digest().lo
    }

    /// The 128-bit streaming [`CanonicalDigest`](crate::CanonicalDigest) of
    /// the configuration: hashes the canonical JSON byte stream without
    /// building it. The batch-solving engine derives its cache keys from
    /// this digest; the low lane equals [`Configuration::canonical_fingerprint`].
    pub fn canonical_digest(&self) -> crate::CanonicalDigest {
        crate::canonical_digest_of(self)
    }
}

/// 64-bit FNV-1a over a byte string — the hash behind
/// [`Configuration::canonical_fingerprint`], exported so callers hashing a
/// canonical JSON they already hold do not have to serialise twice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl Default for Configuration {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "configuration: {} task graphs, {} tasks, {} buffers, {} processors, {} memories, granularity {}",
            self.num_task_graphs(),
            self.num_tasks(),
            self.num_buffers(),
            self.num_processors(),
            self.num_memories(),
            self.budget_granularity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ids::{BufferId, TaskId};
    use crate::task::Task;

    fn simple_configuration() -> Configuration {
        let mut c = Configuration::new();
        let p1 = c.add_processor(Processor::new("p1", 40.0));
        let p2 = c.add_processor(Processor::new("p2", 40.0));
        let m = c.add_memory(Memory::unbounded("mem"));
        let mut g = TaskGraph::new("T1", 10.0);
        let a = g.add_task(Task::new("wa", 1.0, p1));
        let b = g.add_task(Task::new("wb", 1.0, p2));
        g.add_buffer(Buffer::new("bab", a, b, m));
        c.add_task_graph(g);
        c
    }

    #[test]
    fn counts_and_accessors() {
        let c = simple_configuration();
        assert_eq!(c.num_processors(), 2);
        assert_eq!(c.num_memories(), 1);
        assert_eq!(c.num_task_graphs(), 1);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.num_buffers(), 1);
        assert_eq!(c.budget_granularity(), 1);
        assert_eq!(c.processor(ProcessorId::new(0)).name(), "p1");
        assert_eq!(c.memory(MemoryId::new(0)).name(), "mem");
        assert_eq!(c.task_graph(TaskGraphId::new(0)).name(), "T1");
        assert!(c.to_string().contains("1 task graphs"));
    }

    #[test]
    fn global_sets_match_paper_notation() {
        let c = simple_configuration();
        assert_eq!(c.all_tasks().len(), 2);
        assert_eq!(c.all_buffers().len(), 1);
        let on_p1 = c.tasks_on_processor(ProcessorId::new(0));
        assert_eq!(on_p1.len(), 1);
        assert_eq!(on_p1[0].task, TaskId::new(0));
        assert_eq!(c.buffers_in_memory(MemoryId::new(0)).len(), 1);
        assert!(c.buffers_in_memory(MemoryId::new(0))[0].buffer == BufferId::new(0));
    }

    #[test]
    fn validation_accepts_wellformed() {
        assert!(simple_configuration().validate().is_ok());
    }

    #[test]
    fn validation_rejects_empty_and_missing_pieces() {
        assert_eq!(
            Configuration::new().validate(),
            Err(ModelError::EmptyConfiguration)
        );

        let mut c = Configuration::new();
        let mut g = TaskGraph::new("T", 10.0);
        g.add_task(Task::new("w", 1.0, ProcessorId::new(0)));
        c.add_task_graph(g);
        assert_eq!(c.validate(), Err(ModelError::NoProcessors));
    }

    #[test]
    fn validation_rejects_unknown_processor_binding() {
        let mut c = Configuration::new();
        c.add_processor(Processor::new("p0", 40.0));
        let mut g = TaskGraph::new("T", 10.0);
        g.add_task(Task::new("w", 1.0, ProcessorId::new(3)));
        c.add_task_graph(g);
        assert!(matches!(
            c.validate(),
            Err(ModelError::UnknownProcessor { .. })
        ));
    }

    #[test]
    fn validation_rejects_unknown_memory_binding() {
        let mut c = Configuration::new();
        let p = c.add_processor(Processor::new("p0", 40.0));
        let mut g = TaskGraph::new("T", 10.0);
        let a = g.add_task(Task::new("a", 1.0, p));
        let b = g.add_task(Task::new("b", 1.0, p));
        g.add_buffer(Buffer::new("bab", a, b, MemoryId::new(0)));
        c.add_task_graph(g);
        assert!(matches!(
            c.validate(),
            Err(ModelError::UnknownMemory { .. })
        ));
    }

    #[test]
    fn validation_rejects_unattainable_period() {
        let mut c = Configuration::new();
        let p = c.add_processor(Processor::new("p0", 40.0));
        let mut g = TaskGraph::new("T", 10.0);
        // wcet 12 > period 10: even the whole processor cannot reach it.
        g.add_task(Task::new("heavy", 12.0, p));
        c.add_task_graph(g);
        assert!(matches!(
            c.validate(),
            Err(ModelError::PeriodUnattainable { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "granularity must be at least 1")]
    fn zero_granularity_panics_at_set() {
        let mut c = Configuration::new();
        c.set_budget_granularity(0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = simple_configuration();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Configuration>(&json).unwrap(), c);
    }

    #[test]
    fn canonical_fingerprint_distinguishes_configurations() {
        let a = simple_configuration();
        let b = simple_configuration();
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
        assert_eq!(a.canonical_json(), b.canonical_json());
        let mut c = simple_configuration();
        c.set_budget_granularity(2);
        assert_ne!(a.canonical_fingerprint(), c.canonical_fingerprint());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
