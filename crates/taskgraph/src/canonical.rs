//! Streaming canonical digests: content hashes without serialisation.
//!
//! The batch engine keys every solve by the canonical JSON of its inputs.
//! Serialising a full [`Configuration`](crate::Configuration) to a `String`
//! just to hash it costs a `Value` tree plus a heap-allocated string per
//! lookup — on memo-hit-heavy sweeps that *is* the per-item cost. The
//! [`CanonicalHasher`] removes it: it implements [`serde::Serializer`], so
//! [`serde::Serialize::serialize_canonical`] feeds the canonical bytes
//! straight into two FNV-1a-style lanes with zero allocation.
//!
//! The low lane is *defined* to equal
//! [`fnv1a`](crate::fnv1a)`(canonical_json.as_bytes())` — property-tested —
//! so digests interoperate with every place the 64-bit fingerprint already
//! appears (store entries, logs). The high lane is an independently seeded
//! multiplicative hash over the same bytes; together they form a 128-bit
//! structural digest whose accidental collision probability is negligible
//! (~2⁻⁶⁴ even across billions of distinct instances).

use serde::{Serialize, Serializer};

/// 64-bit FNV-1a offset basis (the low lane; matches [`crate::fnv1a`]).
const LO_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV prime (the low lane).
const LO_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Offset basis of the independent high lane.
const HI_OFFSET: u64 = 0x517c_c1b7_2722_0a95;
/// Odd multiplier of the high lane (the splitmix64 golden gamma).
const HI_PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 128-bit streaming digest of a value's canonical JSON.
///
/// `lo` equals `fnv1a(canonical_json)`; `hi` is an independent second lane
/// over the same byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalDigest {
    /// The FNV-1a lane — interchangeable with
    /// [`Configuration::canonical_fingerprint`](crate::Configuration::canonical_fingerprint).
    pub lo: u64,
    /// The independent second lane.
    pub hi: u64,
}

/// A streaming canonical hasher: a [`serde::Serializer`] that folds the
/// canonical JSON byte stream into a [`CanonicalDigest`] instead of storing
/// it.
///
/// Both lanes run per byte — the low lane because its defining identity
/// with [`fnv1a`](crate::fnv1a) demands it, the high lane because the
/// canonical byte stream arrives as many tiny chunks (one per JSON token),
/// where block-buffering schemes measure *slower* than the straight
/// dependent-multiply loop.
///
/// Beyond serialised values, callers may fold raw bytes and integers into
/// the running state ([`CanonicalHasher::write`] /
/// [`CanonicalHasher::write_u64`]) — that is how the engine folds
/// per-scenario constants into hoisted cache-key seeds.
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use bbs_taskgraph::{fnv1a, CanonicalHasher};
/// use serde::Serialize as _;
///
/// let configuration = producer_consumer(PaperParameters::default(), None);
/// let mut hasher = CanonicalHasher::new();
/// configuration.serialize_canonical(&mut hasher);
/// let digest = hasher.finish();
/// assert_eq!(digest.lo, fnv1a(configuration.canonical_json().as_bytes()));
/// ```
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    lo: u64,
    hi: u64,
}

impl CanonicalHasher {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Self {
            lo: LO_OFFSET,
            hi: HI_OFFSET,
        }
    }

    /// Folds raw bytes into both lanes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for &byte in bytes {
            lo = (lo ^ u64::from(byte)).wrapping_mul(LO_PRIME);
            hi = (hi ^ u64::from(byte)).wrapping_mul(HI_PRIME);
        }
        self.lo = lo;
        self.hi = hi;
    }

    /// Folds a `u64` (little-endian) into both lanes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Folds a whole digest into both lanes (16 little-endian bytes).
    pub fn write_digest(&mut self, digest: CanonicalDigest) {
        self.write_u64(digest.lo);
        self.write_u64(digest.hi);
    }

    /// The digest of everything written so far (the hasher itself is not
    /// consumed and can keep folding).
    pub fn finish(&self) -> CanonicalDigest {
        CanonicalDigest {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Serializer for CanonicalHasher {
    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write(bytes);
    }
}

/// The [`CanonicalDigest`] of any canonically-serialisable value, computed
/// by streaming — no `Value` tree, no string, no allocation.
pub fn canonical_digest_of<T: Serialize + ?Sized>(value: &T) -> CanonicalDigest {
    let mut hasher = CanonicalHasher::new();
    value.serialize_canonical(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv1a;

    #[test]
    fn empty_digest_is_the_offset_bases() {
        let digest = CanonicalHasher::new().finish();
        assert_eq!(digest.lo, fnv1a(b""));
        assert_eq!(digest.hi, HI_OFFSET);
    }

    #[test]
    fn high_lane_separates_prefixes_from_extensions() {
        let mut a = CanonicalHasher::new();
        a.write(b"abc");
        let mut b = CanonicalHasher::new();
        b.write(b"abc\0");
        assert_ne!(a.finish().hi, b.finish().hi);
        // Finishing is non-destructive: keep writing, digest keeps moving.
        let snapshot = a.finish();
        a.write(b"more");
        assert_ne!(a.finish(), snapshot);
    }

    #[test]
    fn low_lane_matches_fnv1a_reference_vectors() {
        for input in [&b""[..], b"a", b"foobar"] {
            let mut hasher = CanonicalHasher::new();
            hasher.write(input);
            assert_eq!(hasher.finish().lo, fnv1a(input));
        }
    }

    #[test]
    fn lanes_are_independent() {
        // Two inputs engineered to agree on neither lane; more importantly,
        // the two lanes of one input must differ from each other and from
        // the other input's lanes.
        let mut a = CanonicalHasher::new();
        a.write(b"lane test A");
        let mut b = CanonicalHasher::new();
        b.write(b"lane test B");
        let (a, b) = (a.finish(), b.finish());
        assert_ne!(a.lo, b.lo);
        assert_ne!(a.hi, b.hi);
        assert_ne!(a.lo, a.hi);
    }

    #[test]
    fn chunking_does_not_change_the_digest() {
        let mut whole = CanonicalHasher::new();
        whole.write(b"split me anywhere");
        let mut parts = CanonicalHasher::new();
        parts.write(b"split ");
        parts.write(b"");
        parts.write(b"me anywhere");
        assert_eq!(whole.finish(), parts.finish());
    }

    #[test]
    fn streaming_digest_of_serialisable_values_matches_json_bytes() {
        let values: Vec<(String, Vec<u64>)> = vec![
            ("first \"quoted\"\n".to_string(), vec![1, 2, 3]),
            (String::new(), Vec::new()),
        ];
        let digest = canonical_digest_of(&values);
        let json = serde_json::to_string(&values).unwrap();
        assert_eq!(digest.lo, fnv1a(json.as_bytes()));
    }

    #[test]
    fn write_u64_folds_little_endian_bytes() {
        let mut via_int = CanonicalHasher::new();
        via_int.write_u64(0x0102_0304_0506_0708);
        let mut via_bytes = CanonicalHasher::new();
        via_bytes.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(via_int.finish(), via_bytes.finish());
    }
}
