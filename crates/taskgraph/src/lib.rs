//! Application and platform model for throughput-constrained streaming jobs.
//!
//! This crate models the *input* of the joint budget/buffer computation of
//! Wiggers et al. (DATE 2010):
//!
//! * [`Configuration`] — the tuple `C = (Q, P, M, µ, ̺, o, ς, g)`:
//!   task graphs, processors with budget (TDM) schedulers, memories, and the
//!   budget allocation granularity;
//! * [`TaskGraph`] — a streaming job: a directed multigraph of [`Task`]s
//!   connected by bounded FIFO [`Buffer`]s, with a throughput requirement
//!   expressed as a period `µ(T)`;
//! * [`ConfigView`] — a copy-on-write view of a configuration (shared base
//!   plus a per-point delta) that serialises canonically byte-identically to
//!   a materialised clone, used by sweeps to avoid clone-per-point costs;
//! * [`ConfigurationBuilder`] — a fluent, name-based builder used by the
//!   examples and benchmarks;
//! * [`presets`] — the paper's experimental set-ups (`T1`, `T2`) and random
//!   workload generators for scaling studies.
//!
//! # Example
//!
//! ```
//! use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
//!
//! let configuration = producer_consumer(PaperParameters::default(), Some(10));
//! assert_eq!(configuration.num_tasks(), 2);
//! assert!(configuration.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod builder;
mod canonical;
mod configuration;
mod error;
mod graph;
mod ids;
mod memory;
mod processor;
mod task;
mod view;

pub mod presets;

pub use buffer::Buffer;
pub use builder::{
    find_buffer, find_task, find_task_graph, ConfigurationBuilder, TaskGraphBuilder,
};
pub use canonical::{canonical_digest_of, CanonicalDigest, CanonicalHasher};
pub use configuration::{fnv1a, Configuration};
pub use error::ModelError;
pub use graph::TaskGraph;
pub use ids::{BufferId, BufferRef, MemoryId, ProcessorId, TaskGraphId, TaskId, TaskRef};
pub use memory::Memory;
pub use processor::Processor;
pub use task::Task;
pub use view::{apply_capacity_cap, ConfigView};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Configuration>();
        assert_send_sync::<ConfigView>();
        assert_send_sync::<TaskGraph>();
        assert_send_sync::<Task>();
        assert_send_sync::<Buffer>();
        assert_send_sync::<Processor>();
        assert_send_sync::<Memory>();
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn crate_example_runs() {
        let configuration =
            presets::producer_consumer(presets::PaperParameters::default(), Some(10));
        assert_eq!(configuration.num_tasks(), 2);
        assert!(configuration.validate().is_ok());
    }
}
