//! Ready-made configurations: the paper's experimental set-ups and random
//! workload generators for scaling studies.

use crate::builder::ConfigurationBuilder;
use crate::configuration::Configuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters shared by the paper's two experiments: 40 Mcycle replenishment
/// intervals, 1 Mcycle worst-case execution times and a 10 Mcycle period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperParameters {
    /// Replenishment interval `̺(p)` of every processor, in cycles.
    pub replenishment_interval: f64,
    /// Worst-case execution time `χ(w)` of every task, in cycles.
    pub wcet: f64,
    /// Throughput requirement `µ(T)` as a period, in cycles.
    pub period: f64,
}

impl Default for PaperParameters {
    fn default() -> Self {
        Self {
            replenishment_interval: 40.0,
            wcet: 1.0,
            period: 10.0,
        }
    }
}

/// The producer/consumer task graph `T1` of the paper's first experiment
/// (Figure 1 / Figure 2): two tasks on two processors connected by a single
/// buffer with unit containers, all initially empty.
///
/// `max_buffer_capacity` caps the buffer (in containers); pass `None` to let
/// the optimiser choose freely.
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// let c = producer_consumer(PaperParameters::default(), Some(4));
/// assert_eq!(c.num_tasks(), 2);
/// assert_eq!(c.num_buffers(), 1);
/// ```
pub fn producer_consumer(
    params: PaperParameters,
    max_buffer_capacity: Option<u64>,
) -> Configuration {
    let mut builder = ConfigurationBuilder::new();
    builder.processor("p1", params.replenishment_interval);
    builder.processor("p2", params.replenishment_interval);
    builder.unbounded_memory("mem");
    {
        let job = builder.task_graph("T1", params.period);
        job.task("wa", params.wcet, "p1");
        job.task("wb", params.wcet, "p2");
        job.buffer_detailed("bab", "wa", "wb", "mem", 1, 0, 1.0, max_buffer_capacity);
    }
    builder.build().expect("producer/consumer preset is valid")
}

/// The three-task chain `T2` of the paper's second experiment (Figure 3):
/// `wa → wb → wc` on three processors, with both buffers capped at the same
/// maximum capacity.
pub fn chain3(params: PaperParameters, max_buffer_capacity: Option<u64>) -> Configuration {
    chain(3, params, max_buffer_capacity)
}

/// A chain of `n ≥ 2` tasks, each on its own processor, with every buffer
/// capped at `max_buffer_capacity` containers (if given).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain(n: usize, params: PaperParameters, max_buffer_capacity: Option<u64>) -> Configuration {
    assert!(n >= 2, "a chain needs at least two tasks");
    let mut builder = ConfigurationBuilder::new();
    for i in 0..n {
        builder.processor(&format!("p{}", i + 1), params.replenishment_interval);
    }
    builder.unbounded_memory("mem");
    {
        let job = builder.task_graph("chain", params.period);
        for i in 0..n {
            job.task(&task_name(i), params.wcet, &format!("p{}", i + 1));
        }
        for i in 0..n - 1 {
            job.buffer_detailed(
                &format!("b{}{}", task_name(i), task_name(i + 1)),
                &task_name(i),
                &task_name(i + 1),
                "mem",
                1,
                0,
                1.0,
                max_buffer_capacity,
            );
        }
    }
    builder.build().expect("chain preset is valid")
}

/// A ring of `n ≥ 2` tasks (a chain closed by a feedback buffer carrying
/// `initial_tokens` initially filled containers). Rings exercise cyclic
/// dependencies, which the paper's formulation supports through the generic
/// PAS constraints.
///
/// # Panics
///
/// Panics if `n < 2` or if `initial_tokens == 0` (a token-free cycle
/// deadlocks).
pub fn ring(
    n: usize,
    params: PaperParameters,
    initial_tokens: u64,
    max_buffer_capacity: Option<u64>,
) -> Configuration {
    assert!(n >= 2, "a ring needs at least two tasks");
    assert!(initial_tokens > 0, "a token-free cycle deadlocks");
    let mut builder = ConfigurationBuilder::new();
    for i in 0..n {
        builder.processor(&format!("p{}", i + 1), params.replenishment_interval);
    }
    builder.unbounded_memory("mem");
    {
        let job = builder.task_graph("ring", params.period);
        for i in 0..n {
            job.task(&task_name(i), params.wcet, &format!("p{}", i + 1));
        }
        for i in 0..n {
            let next = (i + 1) % n;
            let tokens = if next == 0 { initial_tokens } else { 0 };
            job.buffer_detailed(
                &format!("b{}{}", task_name(i), task_name(next)),
                &task_name(i),
                &task_name(next),
                "mem",
                1,
                tokens,
                1.0,
                max_buffer_capacity,
            );
        }
    }
    builder.build().expect("ring preset is valid")
}

/// Parameters of the random workload generator used by the scaling
/// experiments (E4 in DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWorkload {
    /// Number of tasks.
    pub num_tasks: usize,
    /// Number of processors to spread the tasks over.
    pub num_processors: usize,
    /// Probability of adding a forward edge between two consecutive "layers".
    pub extra_edge_probability: f64,
    /// Replenishment interval of every processor.
    pub replenishment_interval: f64,
    /// Worst-case execution time range (uniform).
    pub wcet_range: (f64, f64),
    /// Throughput period of the generated graph.
    pub period: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for RandomWorkload {
    fn default() -> Self {
        Self {
            num_tasks: 8,
            num_processors: 4,
            extra_edge_probability: 0.3,
            replenishment_interval: 40.0,
            wcet_range: (0.5, 2.0),
            period: 10.0,
            seed: 1,
        }
    }
}

/// Generates a random, weakly-connected, acyclic streaming job: a chain
/// backbone (guaranteeing connectivity and a path from source to sink) plus
/// random forward edges, with tasks spread round-robin over the processors.
///
/// # Panics
///
/// Panics if `num_tasks < 2` or `num_processors == 0`.
pub fn random_dag(params: &RandomWorkload) -> Configuration {
    assert!(params.num_tasks >= 2, "need at least two tasks");
    assert!(params.num_processors >= 1, "need at least one processor");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut builder = ConfigurationBuilder::new();
    for p in 0..params.num_processors {
        builder.processor(&format!("p{p}"), params.replenishment_interval);
    }
    builder.unbounded_memory("mem");
    {
        let job = builder.task_graph("random", params.period);
        for t in 0..params.num_tasks {
            let wcet = rng.gen_range(params.wcet_range.0..=params.wcet_range.1);
            // Keep every task individually attainable: χ(w) ≤ µ(T).
            let wcet = wcet.min(params.period * 0.9);
            job.task(
                &task_name(t),
                wcet,
                &format!("p{}", t % params.num_processors),
            );
        }
        // Chain backbone.
        for t in 0..params.num_tasks - 1 {
            job.buffer(
                &format!("b{}_{}", t, t + 1),
                &task_name(t),
                &task_name(t + 1),
                "mem",
            );
        }
        // Random extra forward edges (skip length ≥ 2 to stay a multigraph
        // of distinct shapes rather than duplicating backbone edges).
        for src in 0..params.num_tasks {
            for dst in (src + 2)..params.num_tasks {
                if rng.gen_bool(params.extra_edge_probability) {
                    job.buffer(
                        &format!("x{src}_{dst}"),
                        &task_name(src),
                        &task_name(dst),
                        "mem",
                    );
                }
            }
        }
    }
    builder.build().expect("random DAG preset is valid")
}

/// A declarative, serialisable reference to one of the preset generators:
/// the "workload by name" half of a scenario file.
///
/// Unset fields fall back to the preset's defaults, so
/// `{"preset": "producer-consumer"}` is a complete spec. Known preset names
/// are `producer-consumer`, `chain3`, `chain`, `ring` and `random-dag`.
/// Fields that do not apply to the chosen preset (for example `tasks` on
/// `chain3`, or `initial_tokens` on anything but `ring`) are *rejected*, not
/// ignored — a misplaced parameter in a scenario file must fail loudly
/// rather than silently measure a different workload than declared.
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::PresetSpec;
/// let spec = PresetSpec::named("ring").with_tasks(3).with_initial_tokens(2);
/// let configuration = spec.build().unwrap();
/// assert_eq!(configuration.num_tasks(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetSpec {
    /// Preset name: `producer-consumer`, `chain3`, `chain`, `ring` or
    /// `random-dag`.
    pub preset: String,
    /// Paper parameters (replenishment interval, WCET, period); defaults to
    /// [`PaperParameters::default`]. Rejected by `random-dag` (use `random`).
    pub params: Option<PaperParameters>,
    /// Number of tasks for `chain` and `ring`; rejected elsewhere.
    pub tasks: Option<usize>,
    /// Initially filled containers closing a `ring` (default 1); rejected
    /// elsewhere.
    pub initial_tokens: Option<u64>,
    /// Per-buffer capacity cap applied at construction time. Rejected by
    /// `random-dag` (its buffers are uncapped; sweeps cap them per point).
    pub max_buffer_capacity: Option<u64>,
    /// Generator parameters for `random-dag`; defaults to
    /// [`RandomWorkload::default`].
    pub random: Option<RandomWorkload>,
}

impl PresetSpec {
    /// A spec selecting `preset` with every parameter at its default.
    pub fn named(preset: &str) -> Self {
        Self {
            preset: preset.to_string(),
            params: None,
            tasks: None,
            initial_tokens: None,
            max_buffer_capacity: None,
            random: None,
        }
    }

    /// Sets the task count (for `chain` / `ring`).
    #[must_use]
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Sets the initial token count (for `ring`).
    #[must_use]
    pub fn with_initial_tokens(mut self, tokens: u64) -> Self {
        self.initial_tokens = Some(tokens);
        self
    }

    /// Sets the construction-time buffer capacity cap.
    #[must_use]
    pub fn with_max_buffer_capacity(mut self, cap: u64) -> Self {
        self.max_buffer_capacity = Some(cap);
        self
    }

    /// Sets the random-DAG generator parameters (for `random-dag`).
    #[must_use]
    pub fn with_random(mut self, random: RandomWorkload) -> Self {
        self.random = Some(random);
        self
    }

    /// Builds the configuration the spec describes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown preset name, a field
    /// the chosen preset does not take, or a parameter combination the
    /// preset rejects (for example a ring with zero initial tokens).
    pub fn build(&self) -> Result<Configuration, String> {
        let reject_inapplicable = |field: &str, set: bool| {
            if set {
                Err(format!(
                    "preset `{}` does not take the `{field}` field",
                    self.preset
                ))
            } else {
                Ok(())
            }
        };
        match self.preset.as_str() {
            "producer-consumer" | "chain3" => {
                reject_inapplicable("tasks", self.tasks.is_some())?;
                reject_inapplicable("initial_tokens", self.initial_tokens.is_some())?;
                reject_inapplicable("random", self.random.is_some())?;
            }
            "chain" => {
                reject_inapplicable("initial_tokens", self.initial_tokens.is_some())?;
                reject_inapplicable("random", self.random.is_some())?;
            }
            "ring" => reject_inapplicable("random", self.random.is_some())?,
            "random-dag" => {
                reject_inapplicable("params", self.params.is_some())?;
                reject_inapplicable("tasks", self.tasks.is_some())?;
                reject_inapplicable("initial_tokens", self.initial_tokens.is_some())?;
                reject_inapplicable("max_buffer_capacity", self.max_buffer_capacity.is_some())?;
            }
            _ => {}
        }
        let params = self.params.unwrap_or_default();
        let configuration = match self.preset.as_str() {
            "producer-consumer" => producer_consumer(params, self.max_buffer_capacity),
            "chain3" => chain3(params, self.max_buffer_capacity),
            "chain" => {
                let n = self.tasks.unwrap_or(3);
                if n < 2 {
                    return Err(format!("preset `chain` needs at least 2 tasks, got {n}"));
                }
                chain(n, params, self.max_buffer_capacity)
            }
            "ring" => {
                let n = self.tasks.unwrap_or(3);
                if n < 2 {
                    return Err(format!("preset `ring` needs at least 2 tasks, got {n}"));
                }
                let tokens = self.initial_tokens.unwrap_or(1);
                if tokens == 0 {
                    return Err("preset `ring` needs at least 1 initial token".to_string());
                }
                ring(n, params, tokens, self.max_buffer_capacity)
            }
            "random-dag" => {
                let random = self.random.clone().unwrap_or_default();
                if random.num_tasks < 2 || random.num_processors == 0 {
                    return Err(format!(
                        "preset `random-dag` needs >= 2 tasks and >= 1 processor, got {} and {}",
                        random.num_tasks, random.num_processors
                    ));
                }
                random_dag(&random)
            }
            other => {
                return Err(format!(
                    "unknown preset `{other}`; known: producer-consumer, chain3, chain, ring, \
                     random-dag"
                ))
            }
        };
        Ok(configuration)
    }
}

fn task_name(i: usize) -> String {
    format!("w{}", (b'a' + (i % 26) as u8) as char)
        + &(if i >= 26 {
            (i / 26).to_string()
        } else {
            String::new()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{find_buffer, find_task};

    #[test]
    fn producer_consumer_matches_paper_setup() {
        let c = producer_consumer(PaperParameters::default(), None);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.num_buffers(), 1);
        assert_eq!(c.num_processors(), 2);
        let wa = find_task(&c, "wa").unwrap();
        let task = c.task_graph(wa.graph).task(wa.task);
        assert_eq!(task.wcet(), 1.0);
        assert_eq!(c.processor(task.processor()).replenishment_interval(), 40.0);
        assert_eq!(c.task_graph(wa.graph).period(), 10.0);
        // Tasks are on different processors.
        let wb = find_task(&c, "wb").unwrap();
        assert_ne!(
            c.task_graph(wa.graph).task(wa.task).processor(),
            c.task_graph(wb.graph).task(wb.task).processor()
        );
    }

    #[test]
    fn producer_consumer_capacity_cap_is_applied() {
        let c = producer_consumer(PaperParameters::default(), Some(3));
        let b = find_buffer(&c, "bab").unwrap();
        assert_eq!(
            c.task_graph(b.graph).buffer(b.buffer).max_capacity(),
            Some(3)
        );
    }

    #[test]
    fn chain3_matches_paper_second_experiment() {
        let c = chain3(PaperParameters::default(), Some(5));
        assert_eq!(c.num_tasks(), 3);
        assert_eq!(c.num_buffers(), 2);
        assert_eq!(c.num_processors(), 3);
        for r in c.all_buffers() {
            assert_eq!(
                c.task_graph(r.graph).buffer(r.buffer).max_capacity(),
                Some(5)
            );
        }
    }

    #[test]
    fn chain_is_connected_for_various_lengths() {
        for n in 2..8 {
            let c = chain(n, PaperParameters::default(), None);
            assert_eq!(c.num_tasks(), n);
            assert_eq!(c.num_buffers(), n - 1);
            let (_, graph) = c.task_graphs().next().unwrap();
            assert!(graph.is_weakly_connected());
        }
    }

    #[test]
    #[should_panic(expected = "at least two tasks")]
    fn chain_rejects_single_task() {
        let _ = chain(1, PaperParameters::default(), None);
    }

    #[test]
    fn ring_has_cycle_with_tokens() {
        let c = ring(4, PaperParameters::default(), 2, None);
        assert_eq!(c.num_buffers(), 4);
        let (_, graph) = c.task_graphs().next().unwrap();
        // Exactly one buffer carries the initial tokens closing the ring.
        let with_tokens: Vec<_> = graph
            .buffers()
            .filter(|(_, b)| b.initial_tokens() > 0)
            .collect();
        assert_eq!(with_tokens.len(), 1);
        assert_eq!(with_tokens[0].1.initial_tokens(), 2);
    }

    #[test]
    #[should_panic(expected = "token-free cycle")]
    fn ring_rejects_zero_tokens() {
        let _ = ring(3, PaperParameters::default(), 0, None);
    }

    #[test]
    fn random_dag_is_reproducible_and_valid() {
        let params = RandomWorkload {
            num_tasks: 10,
            seed: 42,
            ..RandomWorkload::default()
        };
        let a = random_dag(&params);
        let b = random_dag(&params);
        assert_eq!(a, b, "same seed must give the same workload");
        assert!(a.validate().is_ok());
        assert_eq!(a.num_tasks(), 10);
        assert!(a.num_buffers() >= 9);
        let (_, graph) = a.task_graphs().next().unwrap();
        assert!(graph.is_weakly_connected());
    }

    #[test]
    fn random_dag_different_seeds_differ() {
        let a = random_dag(&RandomWorkload {
            seed: 1,
            ..RandomWorkload::default()
        });
        let b = random_dag(&RandomWorkload {
            seed: 2,
            ..RandomWorkload::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn preset_spec_builds_every_preset_by_name() {
        for (name, expected_tasks) in [
            ("producer-consumer", 2),
            ("chain3", 3),
            ("chain", 3),
            ("ring", 3),
            ("random-dag", 8),
        ] {
            let c = PresetSpec::named(name).build().unwrap();
            assert_eq!(c.num_tasks(), expected_tasks, "preset {name}");
            assert!(c.validate().is_ok(), "preset {name}");
        }
    }

    #[test]
    fn preset_spec_matches_direct_construction() {
        let via_spec = PresetSpec::named("producer-consumer")
            .with_max_buffer_capacity(4)
            .build()
            .unwrap();
        assert_eq!(
            via_spec,
            producer_consumer(PaperParameters::default(), Some(4))
        );
        let via_spec = PresetSpec::named("ring")
            .with_tasks(4)
            .with_initial_tokens(2)
            .build()
            .unwrap();
        assert_eq!(via_spec, ring(4, PaperParameters::default(), 2, None));
    }

    #[test]
    fn preset_spec_rejects_bad_input() {
        assert!(PresetSpec::named("no-such-preset").build().is_err());
        assert!(PresetSpec::named("chain").with_tasks(1).build().is_err());
        let mut spec = PresetSpec::named("ring");
        spec.initial_tokens = Some(0);
        assert!(spec.build().is_err());
    }

    #[test]
    fn preset_spec_rejects_inapplicable_fields() {
        // A misplaced field must fail loudly, not silently build a
        // different workload than the spec declares.
        let error = PresetSpec::named("chain3")
            .with_tasks(9)
            .build()
            .unwrap_err();
        assert!(error.contains("does not take"), "{error}");
        assert!(PresetSpec::named("producer-consumer")
            .with_initial_tokens(2)
            .build()
            .is_err());
        assert!(PresetSpec::named("chain")
            .with_tasks(4)
            .with_initial_tokens(1)
            .build()
            .is_err());
        assert!(PresetSpec::named("random-dag")
            .with_max_buffer_capacity(4)
            .build()
            .is_err());
        let mut with_params = PresetSpec::named("random-dag");
        with_params.params = Some(PaperParameters::default());
        assert!(with_params.build().is_err());
        assert!(PresetSpec::named("ring")
            .with_random(RandomWorkload::default())
            .build()
            .is_err());
    }

    #[test]
    fn preset_spec_round_trips_through_json() {
        let spec = PresetSpec::named("ring")
            .with_tasks(5)
            .with_initial_tokens(3);
        let json = serde_json::to_string(&spec).unwrap();
        let back: PresetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.build().unwrap(), spec.build().unwrap());
    }

    #[test]
    fn task_names_do_not_collide_for_large_graphs() {
        let params = RandomWorkload {
            num_tasks: 60,
            num_processors: 4,
            extra_edge_probability: 0.0,
            ..RandomWorkload::default()
        };
        let c = random_dag(&params);
        assert_eq!(c.num_tasks(), 60);
        let (_, graph) = c.task_graphs().next().unwrap();
        let mut names: Vec<_> = graph.tasks().map(|(_, t)| t.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 60, "task names must be unique");
    }
}
