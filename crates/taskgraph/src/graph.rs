//! Task graphs: directed multigraphs of tasks connected by FIFO buffers.

use crate::buffer::Buffer;
use crate::error::ModelError;
use crate::ids::{BufferId, TaskId};
use crate::task::Task;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A task graph (one streaming job) with a throughput requirement.
///
/// The throughput requirement is expressed as a *period* `µ(T)` in cycles:
/// the job must be able to process one unit of work (one firing of every
/// task) every `µ(T)` cycles in steady state. This matches the paper, which
/// uses the period of the periodic admissible schedule of the corresponding
/// dataflow graph.
///
/// Task graphs are directed multigraphs: multiple buffers between the same
/// pair of tasks, buffer cycles and self-loops are all allowed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    period: f64,
    tasks: Vec<Task>,
    buffers: Vec<Buffer>,
}

impl TaskGraph {
    /// Creates an empty task graph with the given throughput period.
    ///
    /// # Panics
    ///
    /// Panics if the period is not strictly positive and finite.
    pub fn new(name: impl Into<String>, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "throughput period must be positive and finite"
        );
        Self {
            name: name.into(),
            period,
            tasks: Vec::new(),
            buffers: Vec::new(),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Throughput requirement `µ(T)` as a period in cycles.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Adds a task, returning its identifier.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(task);
        id
    }

    /// Adds a buffer, returning its identifier.
    ///
    /// # Panics
    ///
    /// Panics if the buffer references a task that does not exist in this
    /// graph.
    pub fn add_buffer(&mut self, buffer: Buffer) -> BufferId {
        assert!(
            buffer.producer().index() < self.tasks.len()
                && buffer.consumer().index() < self.tasks.len(),
            "buffer references a task that is not part of this graph"
        );
        let id = BufferId::new(self.buffers.len());
        self.buffers.push(buffer);
        id
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of buffers.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Access a task.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Access a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.index()]
    }

    /// Mutable access to a buffer (used by trade-off sweeps to adjust
    /// capacity caps).
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut Buffer {
        &mut self.buffers[id.index()]
    }

    /// Iterator over `(TaskId, &Task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// Iterator over `(BufferId, &Buffer)` pairs.
    pub fn buffers(&self) -> impl Iterator<Item = (BufferId, &Buffer)> {
        self.buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (BufferId::new(i), b))
    }

    /// Buffers produced by the given task (its outgoing edges).
    pub fn output_buffers(&self, task: TaskId) -> Vec<BufferId> {
        self.buffers()
            .filter(|(_, b)| b.producer() == task)
            .map(|(id, _)| id)
            .collect()
    }

    /// Buffers consumed by the given task (its incoming edges).
    pub fn input_buffers(&self, task: TaskId) -> Vec<BufferId> {
        self.buffers()
            .filter(|(_, b)| b.consumer() == task)
            .map(|(id, _)| id)
            .collect()
    }

    /// Tasks with no incoming buffers (sources of the job).
    pub fn source_tasks(&self) -> Vec<TaskId> {
        self.tasks()
            .map(|(id, _)| id)
            .filter(|&id| self.input_buffers(id).is_empty())
            .collect()
    }

    /// Tasks with no outgoing buffers (sinks of the job).
    pub fn sink_tasks(&self) -> Vec<TaskId> {
        self.tasks()
            .map(|(id, _)| id)
            .filter(|&id| self.output_buffers(id).is_empty())
            .collect()
    }

    /// Returns `true` when every task can reach every other task ignoring
    /// edge directions (i.e. the graph is weakly connected). The empty graph
    /// and single-task graphs are considered connected.
    pub fn is_weakly_connected(&self) -> bool {
        if self.tasks.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.tasks.len()];
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        seen[0] = true;
        let mut count = 1;
        while let Some(t) = queue.pop_front() {
            for (_, b) in self.buffers() {
                let (p, c) = (b.producer().index(), b.consumer().index());
                let next = if p == t && !seen[c] {
                    Some(c)
                } else if c == t && !seen[p] {
                    Some(p)
                } else {
                    None
                };
                if let Some(n) = next {
                    seen[n] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        count == self.tasks.len()
    }

    /// Weakly-connected components, each given as a sorted list of tasks.
    pub fn weakly_connected_components(&self) -> Vec<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut component = vec![usize::MAX; n];
        let mut next_component = 0;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::new();
            queue.push_back(start);
            component[start] = next_component;
            while let Some(t) = queue.pop_front() {
                for (_, b) in self.buffers() {
                    let (p, c) = (b.producer().index(), b.consumer().index());
                    for (from, to) in [(p, c), (c, p)] {
                        if from == t && component[to] == usize::MAX {
                            component[to] = next_component;
                            queue.push_back(to);
                        }
                    }
                }
            }
            next_component += 1;
        }
        let mut out = vec![Vec::new(); next_component];
        for (task, &comp) in component.iter().enumerate() {
            out[comp].push(TaskId::new(task));
        }
        out
    }

    /// Validates the graph structure: it must contain at least one task and
    /// all buffer endpoints must exist.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.tasks.is_empty() {
            return Err(ModelError::EmptyTaskGraph {
                graph: self.name.clone(),
            });
        }
        for (id, b) in self.buffers() {
            if b.producer().index() >= self.tasks.len() || b.consumer().index() >= self.tasks.len()
            {
                return Err(ModelError::DanglingBuffer {
                    graph: self.name.clone(),
                    buffer: id,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tasks, {} buffers, period {})",
            self.name,
            self.tasks.len(),
            self.buffers.len(),
            self.period
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MemoryId, ProcessorId};

    fn two_task_graph() -> TaskGraph {
        let mut g = TaskGraph::new("T1", 10.0);
        let a = g.add_task(Task::new("wa", 1.0, ProcessorId::new(0)));
        let b = g.add_task(Task::new("wb", 1.0, ProcessorId::new(1)));
        g.add_buffer(Buffer::new("bab", a, b, MemoryId::new(0)));
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = two_task_graph();
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.num_buffers(), 1);
        assert_eq!(g.period(), 10.0);
        assert_eq!(g.name(), "T1");
        assert_eq!(g.task(TaskId::new(0)).name(), "wa");
        assert_eq!(g.buffer(BufferId::new(0)).name(), "bab");
        assert!(g.to_string().contains("T1"));
    }

    #[test]
    fn topology_queries() {
        let g = two_task_graph();
        let a = TaskId::new(0);
        let b = TaskId::new(1);
        assert_eq!(g.output_buffers(a), vec![BufferId::new(0)]);
        assert_eq!(g.input_buffers(b), vec![BufferId::new(0)]);
        assert!(g.input_buffers(a).is_empty());
        assert_eq!(g.source_tasks(), vec![a]);
        assert_eq!(g.sink_tasks(), vec![b]);
    }

    #[test]
    fn connectivity() {
        let g = two_task_graph();
        assert!(g.is_weakly_connected());
        assert_eq!(g.weakly_connected_components().len(), 1);

        let mut disconnected = TaskGraph::new("T", 5.0);
        disconnected.add_task(Task::new("x", 1.0, ProcessorId::new(0)));
        disconnected.add_task(Task::new("y", 1.0, ProcessorId::new(0)));
        assert!(!disconnected.is_weakly_connected());
        assert_eq!(disconnected.weakly_connected_components().len(), 2);
    }

    #[test]
    fn buffer_mut_allows_cap_updates() {
        let mut g = two_task_graph();
        *g.buffer_mut(BufferId::new(0)) = g.buffer(BufferId::new(0)).clone().with_max_capacity(5);
        assert_eq!(g.buffer(BufferId::new(0)).max_capacity(), Some(5));
    }

    #[test]
    fn validation() {
        assert!(two_task_graph().validate().is_ok());
        let empty = TaskGraph::new("empty", 1.0);
        assert!(matches!(
            empty.validate(),
            Err(ModelError::EmptyTaskGraph { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "not part of this graph")]
    fn add_buffer_rejects_unknown_task() {
        let mut g = TaskGraph::new("T", 1.0);
        g.add_task(Task::new("only", 1.0, ProcessorId::new(0)));
        g.add_buffer(Buffer::new(
            "bad",
            TaskId::new(0),
            TaskId::new(7),
            MemoryId::new(0),
        ));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_non_positive_period() {
        let _ = TaskGraph::new("T", 0.0);
    }

    #[test]
    fn multigraph_and_self_loops_supported() {
        let mut g = TaskGraph::new("T", 10.0);
        let a = g.add_task(Task::new("a", 1.0, ProcessorId::new(0)));
        let b = g.add_task(Task::new("b", 1.0, ProcessorId::new(0)));
        g.add_buffer(Buffer::new("b1", a, b, MemoryId::new(0)));
        g.add_buffer(Buffer::new("b2", a, b, MemoryId::new(0)));
        g.add_buffer(Buffer::new("loop", b, b, MemoryId::new(0)));
        assert_eq!(g.num_buffers(), 3);
        assert_eq!(g.output_buffers(a).len(), 2);
        assert!(g.buffer(BufferId::new(2)).is_self_loop());
    }

    #[test]
    fn serde_roundtrip() {
        let g = two_task_graph();
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<TaskGraph>(&json).unwrap(), g);
    }
}
