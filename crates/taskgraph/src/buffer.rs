//! FIFO buffers connecting tasks.

use crate::ids::{MemoryId, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bounded FIFO buffer between two tasks of the same task graph.
///
/// A buffer `b` from task `w_a` to task `w_b` is placed in memory `ν(b)`,
/// has a container size `ζ(b)` (data units per container), starts with
/// `ι(b)` filled containers, and carries an objective weight `b(b)` that
/// steers how strongly the optimiser tries to keep this buffer small. An
/// optional maximum capacity caps the number of containers the optimiser may
/// allocate — this is the knob used to sweep the budget/buffer trade-off in
/// the paper's experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Buffer {
    name: String,
    producer: TaskId,
    consumer: TaskId,
    memory: MemoryId,
    container_size: u64,
    initial_tokens: u64,
    storage_weight: f64,
    max_capacity: Option<u64>,
}

impl Buffer {
    /// Creates a buffer with unit container size, no initial tokens, unit
    /// storage weight and no capacity cap.
    pub fn new(
        name: impl Into<String>,
        producer: TaskId,
        consumer: TaskId,
        memory: MemoryId,
    ) -> Self {
        Self {
            name: name.into(),
            producer,
            consumer,
            memory,
            container_size: 1,
            initial_tokens: 0,
            storage_weight: 1.0,
            max_capacity: None,
        }
    }

    /// Sets the container size `ζ(b)` in data units.
    ///
    /// # Panics
    ///
    /// Panics if the container size is zero.
    #[must_use]
    pub fn with_container_size(mut self, container_size: u64) -> Self {
        assert!(container_size > 0, "container size must be positive");
        self.container_size = container_size;
        self
    }

    /// Sets the number of initially filled containers `ι(b)`.
    #[must_use]
    pub fn with_initial_tokens(mut self, initial_tokens: u64) -> Self {
        self.initial_tokens = initial_tokens;
        self
    }

    /// Sets the objective weight `b(b)` of this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative or not finite.
    #[must_use]
    pub fn with_storage_weight(mut self, storage_weight: f64) -> Self {
        assert!(
            storage_weight.is_finite() && storage_weight >= 0.0,
            "storage weight must be non-negative and finite"
        );
        self.storage_weight = storage_weight;
        self
    }

    /// Caps the capacity (number of containers) the optimiser may allocate.
    ///
    /// # Panics
    ///
    /// Panics if the cap is zero.
    #[must_use]
    pub fn with_max_capacity(mut self, max_capacity: u64) -> Self {
        assert!(max_capacity > 0, "maximum capacity must be positive");
        self.max_capacity = Some(max_capacity);
        self
    }

    /// Removes the capacity cap.
    #[must_use]
    pub fn without_max_capacity(mut self) -> Self {
        self.max_capacity = None;
        self
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The producing task.
    pub fn producer(&self) -> TaskId {
        self.producer
    }

    /// The consuming task.
    pub fn consumer(&self) -> TaskId {
        self.consumer
    }

    /// The memory this buffer is placed in, `ν(b)`.
    pub fn memory(&self) -> MemoryId {
        self.memory
    }

    /// Container size `ζ(b)` in data units.
    pub fn container_size(&self) -> u64 {
        self.container_size
    }

    /// Number of initially filled containers `ι(b)`.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Objective weight `b(b)`.
    pub fn storage_weight(&self) -> f64 {
        self.storage_weight
    }

    /// Optional cap on the allocated capacity, in containers.
    pub fn max_capacity(&self) -> Option<u64> {
        self.max_capacity
    }

    /// Returns `true` when the buffer connects a task to itself.
    pub fn is_self_loop(&self) -> bool {
        self.producer == self.consumer
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} (container {} units, {} initial, memory {})",
            self.name,
            self.producer,
            self.consumer,
            self.container_size,
            self.initial_tokens,
            self.memory
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> Buffer {
        Buffer::new("bab", TaskId::new(0), TaskId::new(1), MemoryId::new(0))
    }

    #[test]
    fn defaults_match_paper_experiments() {
        let b = buffer();
        assert_eq!(b.container_size(), 1);
        assert_eq!(b.initial_tokens(), 0);
        assert_eq!(b.storage_weight(), 1.0);
        assert_eq!(b.max_capacity(), None);
        assert!(!b.is_self_loop());
    }

    #[test]
    fn builder_style_setters() {
        let b = buffer()
            .with_container_size(64)
            .with_initial_tokens(2)
            .with_storage_weight(0.25)
            .with_max_capacity(10);
        assert_eq!(b.container_size(), 64);
        assert_eq!(b.initial_tokens(), 2);
        assert_eq!(b.storage_weight(), 0.25);
        assert_eq!(b.max_capacity(), Some(10));
        let b = b.without_max_capacity();
        assert_eq!(b.max_capacity(), None);
    }

    #[test]
    fn self_loop_detection() {
        let b = Buffer::new("loop", TaskId::new(2), TaskId::new(2), MemoryId::new(0));
        assert!(b.is_self_loop());
    }

    #[test]
    #[should_panic(expected = "container size must be positive")]
    fn rejects_zero_container_size() {
        let _ = buffer().with_container_size(0);
    }

    #[test]
    #[should_panic(expected = "maximum capacity must be positive")]
    fn rejects_zero_capacity_cap() {
        let _ = buffer().with_max_capacity(0);
    }

    #[test]
    fn display_and_serde() {
        let b = buffer();
        assert!(b.to_string().contains("bab"));
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<Buffer>(&json).unwrap(), b);
    }
}
