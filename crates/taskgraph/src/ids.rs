//! Strongly-typed identifiers for the application and platform model.
//!
//! All identifiers are plain indices into the owning collection, wrapped in
//! newtypes so that tasks, buffers, processors, memories and task graphs can
//! never be confused with one another (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Creates an identifier from a raw index.
            pub fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw index into the owning collection.
            pub fn index(&self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a task within its task graph.
    TaskId,
    "w"
);
define_id!(
    /// Identifier of a FIFO buffer within its task graph.
    BufferId,
    "b"
);
define_id!(
    /// Identifier of a processor in the platform.
    ProcessorId,
    "p"
);
define_id!(
    /// Identifier of a memory in the platform.
    MemoryId,
    "m"
);
define_id!(
    /// Identifier of a task graph within a configuration.
    TaskGraphId,
    "T"
);

/// A task reference that is unique across a whole configuration: the task
/// graph it belongs to plus the task-local identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskRef {
    /// The owning task graph.
    pub graph: TaskGraphId,
    /// The task within that graph.
    pub task: TaskId,
}

impl TaskRef {
    /// Creates a task reference.
    pub fn new(graph: TaskGraphId, task: TaskId) -> Self {
        Self { graph, task }
    }
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.graph, self.task)
    }
}

/// A buffer reference that is unique across a whole configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferRef {
    /// The owning task graph.
    pub graph: TaskGraphId,
    /// The buffer within that graph.
    pub buffer: BufferId,
}

impl BufferRef {
    /// Creates a buffer reference.
    pub fn new(graph: TaskGraphId, buffer: BufferId) -> Self {
        Self { graph, buffer }
    }
}

impl fmt::Display for BufferRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.graph, self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_through_usize() {
        let t = TaskId::new(3);
        assert_eq!(t.index(), 3);
        assert_eq!(usize::from(t), 3);
        assert_eq!(TaskId::from(3), t);
    }

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(TaskId::new(0).to_string(), "w0");
        assert_eq!(BufferId::new(1).to_string(), "b1");
        assert_eq!(ProcessorId::new(2).to_string(), "p2");
        assert_eq!(MemoryId::new(3).to_string(), "m3");
        assert_eq!(TaskGraphId::new(4).to_string(), "T4");
        assert_eq!(
            TaskRef::new(TaskGraphId::new(0), TaskId::new(1)).to_string(),
            "T0.w1"
        );
        assert_eq!(
            BufferRef::new(TaskGraphId::new(2), BufferId::new(0)).to_string(),
            "T2.b0"
        );
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TaskId::new(0));
        set.insert(TaskId::new(0));
        set.insert(TaskId::new(1));
        assert_eq!(set.len(), 2);
        assert!(TaskId::new(0) < TaskId::new(1));
    }

    #[test]
    fn serde_roundtrip() {
        let r = TaskRef::new(TaskGraphId::new(1), TaskId::new(2));
        let json = serde_json::to_string(&r).unwrap();
        let back: TaskRef = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
