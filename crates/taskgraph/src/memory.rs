//! Memories holding FIFO buffers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory with a bounded storage capacity.
///
/// FIFO buffers are placed in memories; the sum of the storage taken by the
/// buffers placed in a memory `m` (number of containers times container
/// size) must not exceed the capacity `ς(m)` (Constraint 10 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    name: String,
    capacity: u64,
}

impl Memory {
    /// Creates a memory with the given storage capacity (in the same data
    /// unit used for container sizes, e.g. bytes or words).
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self {
            name: name.into(),
            capacity,
        }
    }

    /// Creates a memory that is large enough to never constrain buffer
    /// sizing (useful for experiments that only study the budget/buffer
    /// trade-off, like the paper's Figures 2 and 3).
    pub fn unbounded(name: impl Into<String>) -> Self {
        Self::new(name, u64::MAX / 4)
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage capacity `ς(m)`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns `true` when the memory was created with
    /// [`Memory::unbounded`] (or an equally enormous capacity) and therefore
    /// never constrains buffer sizing. Analyses skip capacity constraints
    /// for such memories so the optimisation stays well-scaled.
    pub fn is_unbounded(&self) -> bool {
        self.capacity >= u64::MAX / 4
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (capacity {})", self.name, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Memory::new("sram0", 4096);
        assert_eq!(m.name(), "sram0");
        assert_eq!(m.capacity(), 4096);
        assert!(m.to_string().contains("4096"));
    }

    #[test]
    fn unbounded_memory_is_huge() {
        let m = Memory::unbounded("dram");
        assert!(m.capacity() > 1 << 60);
        assert!(m.is_unbounded());
        assert!(!Memory::new("sram", 4096).is_unbounded());
    }

    #[test]
    fn serde_roundtrip() {
        let m = Memory::new("sram1", 128);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<Memory>(&json).unwrap(), m);
    }
}
