//! Validation errors for the application/platform model.

use crate::ids::{BufferId, MemoryId, ProcessorId, TaskGraphId, TaskId};
use std::error::Error;
use std::fmt;

/// Errors produced when validating a configuration or task graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A task graph contains no tasks.
    EmptyTaskGraph {
        /// Name of the offending graph.
        graph: String,
    },
    /// A buffer references a task outside its graph.
    DanglingBuffer {
        /// Name of the offending graph.
        graph: String,
        /// The offending buffer.
        buffer: BufferId,
    },
    /// A task is bound to a processor that does not exist.
    UnknownProcessor {
        /// The owning graph.
        graph: TaskGraphId,
        /// The offending task.
        task: TaskId,
        /// The missing processor.
        processor: ProcessorId,
    },
    /// A buffer is placed in a memory that does not exist.
    UnknownMemory {
        /// The owning graph.
        graph: TaskGraphId,
        /// The offending buffer.
        buffer: BufferId,
        /// The missing memory.
        memory: MemoryId,
    },
    /// The configuration has no task graphs.
    EmptyConfiguration,
    /// The configuration has no processors.
    NoProcessors,
    /// The budget allocation granularity is zero.
    ZeroGranularity,
    /// A task's worst-case execution time stretched over a full
    /// replenishment interval already exceeds the required period, so no
    /// budget (however large) can satisfy the throughput requirement.
    PeriodUnattainable {
        /// The owning graph.
        graph: TaskGraphId,
        /// The offending task.
        task: TaskId,
        /// The minimum period attainable for this task (with the whole
        /// processor allocated to it).
        minimum_period: f64,
        /// The required period.
        required_period: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyTaskGraph { graph } => {
                write!(f, "task graph '{graph}' contains no tasks")
            }
            ModelError::DanglingBuffer { graph, buffer } => {
                write!(
                    f,
                    "buffer {buffer} of task graph '{graph}' references a task outside the graph"
                )
            }
            ModelError::UnknownProcessor {
                graph,
                task,
                processor,
            } => write!(
                f,
                "task {task} of graph {graph} is bound to unknown processor {processor}"
            ),
            ModelError::UnknownMemory {
                graph,
                buffer,
                memory,
            } => write!(
                f,
                "buffer {buffer} of graph {graph} is placed in unknown memory {memory}"
            ),
            ModelError::EmptyConfiguration => write!(f, "configuration contains no task graphs"),
            ModelError::NoProcessors => write!(f, "configuration contains no processors"),
            ModelError::ZeroGranularity => {
                write!(f, "budget allocation granularity must be at least 1")
            }
            ModelError::PeriodUnattainable {
                graph,
                task,
                minimum_period,
                required_period,
            } => write!(
                f,
                "task {task} of graph {graph} cannot reach the required period {required_period} \
                 (best attainable is {minimum_period})"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<ModelError> = vec![
            ModelError::EmptyTaskGraph { graph: "T1".into() },
            ModelError::DanglingBuffer {
                graph: "T1".into(),
                buffer: BufferId::new(0),
            },
            ModelError::UnknownProcessor {
                graph: TaskGraphId::new(0),
                task: TaskId::new(1),
                processor: ProcessorId::new(9),
            },
            ModelError::UnknownMemory {
                graph: TaskGraphId::new(0),
                buffer: BufferId::new(2),
                memory: MemoryId::new(5),
            },
            ModelError::EmptyConfiguration,
            ModelError::NoProcessors,
            ModelError::ZeroGranularity,
            ModelError::PeriodUnattainable {
                graph: TaskGraphId::new(0),
                task: TaskId::new(0),
                minimum_period: 40.0,
                required_period: 10.0,
            },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn period_unattainable_mentions_both_periods() {
        let e = ModelError::PeriodUnattainable {
            graph: TaskGraphId::new(0),
            task: TaskId::new(3),
            minimum_period: 80.0,
            required_period: 10.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("80") && msg.contains("10"));
    }
}
