//! Fluent builders for configurations and task graphs.
//!
//! The builders are a convenience layer on top of the plain model types:
//! they let examples and benchmarks describe platforms and jobs by name
//! instead of by identifier, and they validate the result on
//! [`ConfigurationBuilder::build`].

use crate::buffer::Buffer;
use crate::configuration::Configuration;
use crate::error::ModelError;
use crate::graph::TaskGraph;
use crate::ids::{BufferRef, MemoryId, ProcessorId, TaskGraphId, TaskRef};
use crate::memory::Memory;
use crate::processor::Processor;
use crate::task::Task;
use std::collections::HashMap;

/// Fluent builder for a whole [`Configuration`].
///
/// # Example
///
/// The paper's producer/consumer set-up (`T1`), built by name:
///
/// ```
/// use bbs_taskgraph::ConfigurationBuilder;
///
/// # fn main() -> Result<(), bbs_taskgraph::ModelError> {
/// let mut builder = ConfigurationBuilder::new();
/// builder.processor("p1", 40.0);
/// builder.processor("p2", 40.0);
/// builder.unbounded_memory("mem");
/// let job = builder.task_graph("T1", 10.0);
/// job.task("wa", 1.0, "p1");
/// job.task("wb", 1.0, "p2");
/// job.buffer("bab", "wa", "wb", "mem");
/// let configuration = builder.build()?;
/// assert_eq!(configuration.num_tasks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ConfigurationBuilder {
    configuration: Configuration,
    processor_names: HashMap<String, ProcessorId>,
    memory_names: HashMap<String, MemoryId>,
    graphs: Vec<TaskGraphBuilder>,
}

impl ConfigurationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processor with the given replenishment interval and no
    /// scheduling overhead.
    pub fn processor(&mut self, name: &str, replenishment_interval: f64) -> ProcessorId {
        self.processor_with_overhead(name, replenishment_interval, 0.0)
    }

    /// Adds a processor with an explicit scheduling overhead.
    ///
    /// # Panics
    ///
    /// Panics if a processor with the same name already exists.
    pub fn processor_with_overhead(
        &mut self,
        name: &str,
        replenishment_interval: f64,
        overhead: f64,
    ) -> ProcessorId {
        assert!(
            !self.processor_names.contains_key(name),
            "duplicate processor name '{name}'"
        );
        let id = self.configuration.add_processor(Processor::with_overhead(
            name,
            replenishment_interval,
            overhead,
        ));
        self.processor_names.insert(name.to_string(), id);
        id
    }

    /// Adds a memory with a bounded capacity.
    ///
    /// # Panics
    ///
    /// Panics if a memory with the same name already exists.
    pub fn memory(&mut self, name: &str, capacity: u64) -> MemoryId {
        assert!(
            !self.memory_names.contains_key(name),
            "duplicate memory name '{name}'"
        );
        let id = self.configuration.add_memory(Memory::new(name, capacity));
        self.memory_names.insert(name.to_string(), id);
        id
    }

    /// Adds a memory that never constrains buffer sizing.
    pub fn unbounded_memory(&mut self, name: &str) -> MemoryId {
        assert!(
            !self.memory_names.contains_key(name),
            "duplicate memory name '{name}'"
        );
        let id = self.configuration.add_memory(Memory::unbounded(name));
        self.memory_names.insert(name.to_string(), id);
        id
    }

    /// Sets the budget allocation granularity.
    pub fn budget_granularity(&mut self, granularity: u64) -> &mut Self {
        self.configuration.set_budget_granularity(granularity);
        self
    }

    /// Starts a new task graph with the given throughput period and returns
    /// a builder for it.
    pub fn task_graph(&mut self, name: &str, period: f64) -> &mut TaskGraphBuilder {
        self.graphs.push(TaskGraphBuilder::new(name, period));
        self.graphs.last_mut().expect("just pushed")
    }

    /// Finalises the configuration, resolving all names and validating the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when a referenced processor, memory or task
    /// name is unknown, or when the assembled configuration fails
    /// [`Configuration::validate`].
    ///
    /// # Panics
    ///
    /// Panics if a task or buffer references a name that was never declared
    /// (programming error in the calling code).
    pub fn build(mut self) -> Result<Configuration, ModelError> {
        for graph_builder in self.graphs.drain(..) {
            let graph = graph_builder.into_task_graph(&self.processor_names, &self.memory_names);
            self.configuration.add_task_graph(graph);
        }
        self.configuration.validate()?;
        Ok(self.configuration)
    }

    /// Resolves a task by `(graph name, task name)` after `build` has *not*
    /// yet been called — useful for tests that need references early.
    pub fn processor_id(&self, name: &str) -> Option<ProcessorId> {
        self.processor_names.get(name).copied()
    }

    /// Resolves a memory by name.
    pub fn memory_id(&self, name: &str) -> Option<MemoryId> {
        self.memory_names.get(name).copied()
    }
}

/// Builder for one task graph inside a [`ConfigurationBuilder`].
#[derive(Debug)]
pub struct TaskGraphBuilder {
    name: String,
    period: f64,
    tasks: Vec<(String, f64, String, f64)>,
    buffers: Vec<PendingBuffer>,
}

#[derive(Debug)]
struct PendingBuffer {
    name: String,
    producer: String,
    consumer: String,
    memory: String,
    container_size: u64,
    initial_tokens: u64,
    storage_weight: f64,
    max_capacity: Option<u64>,
}

impl TaskGraphBuilder {
    fn new(name: &str, period: f64) -> Self {
        Self {
            name: name.to_string(),
            period,
            tasks: Vec::new(),
            buffers: Vec::new(),
        }
    }

    /// Adds a task with unit budget weight.
    pub fn task(&mut self, name: &str, wcet: f64, processor: &str) -> &mut Self {
        self.weighted_task(name, wcet, processor, 1.0)
    }

    /// Adds a task with an explicit budget weight.
    pub fn weighted_task(
        &mut self,
        name: &str,
        wcet: f64,
        processor: &str,
        weight: f64,
    ) -> &mut Self {
        self.tasks
            .push((name.to_string(), wcet, processor.to_string(), weight));
        self
    }

    /// Adds a unit-container buffer with no initial tokens.
    pub fn buffer(
        &mut self,
        name: &str,
        producer: &str,
        consumer: &str,
        memory: &str,
    ) -> &mut Self {
        self.buffer_detailed(name, producer, consumer, memory, 1, 0, 1.0, None)
    }

    /// Adds a buffer with full control over its parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn buffer_detailed(
        &mut self,
        name: &str,
        producer: &str,
        consumer: &str,
        memory: &str,
        container_size: u64,
        initial_tokens: u64,
        storage_weight: f64,
        max_capacity: Option<u64>,
    ) -> &mut Self {
        self.buffers.push(PendingBuffer {
            name: name.to_string(),
            producer: producer.to_string(),
            consumer: consumer.to_string(),
            memory: memory.to_string(),
            container_size,
            initial_tokens,
            storage_weight,
            max_capacity,
        });
        self
    }

    fn into_task_graph(
        self,
        processors: &HashMap<String, ProcessorId>,
        memories: &HashMap<String, MemoryId>,
    ) -> TaskGraph {
        let mut graph = TaskGraph::new(&self.name, self.period);
        let mut task_names = HashMap::new();
        for (name, wcet, processor, weight) in &self.tasks {
            let pid = *processors
                .get(processor)
                .unwrap_or_else(|| panic!("unknown processor name '{processor}'"));
            let id = graph.add_task(Task::with_weight(name.clone(), *wcet, pid, *weight));
            task_names.insert(name.clone(), id);
        }
        for pending in self.buffers {
            let producer = *task_names
                .get(&pending.producer)
                .unwrap_or_else(|| panic!("unknown task name '{}'", pending.producer));
            let consumer = *task_names
                .get(&pending.consumer)
                .unwrap_or_else(|| panic!("unknown task name '{}'", pending.consumer));
            let memory = *memories
                .get(&pending.memory)
                .unwrap_or_else(|| panic!("unknown memory name '{}'", pending.memory));
            let mut buffer = Buffer::new(pending.name, producer, consumer, memory)
                .with_container_size(pending.container_size)
                .with_initial_tokens(pending.initial_tokens)
                .with_storage_weight(pending.storage_weight);
            if let Some(cap) = pending.max_capacity {
                buffer = buffer.with_max_capacity(cap);
            }
            graph.add_buffer(buffer);
        }
        graph
    }
}

/// Finds a task by name across a configuration.
///
/// Returns the first match; names are expected to be unique within the
/// configuration for this helper to be useful.
pub fn find_task(configuration: &Configuration, name: &str) -> Option<TaskRef> {
    for (gid, graph) in configuration.task_graphs() {
        for (tid, task) in graph.tasks() {
            if task.name() == name {
                return Some(TaskRef::new(gid, tid));
            }
        }
    }
    None
}

/// Finds a buffer by name across a configuration.
pub fn find_buffer(configuration: &Configuration, name: &str) -> Option<BufferRef> {
    for (gid, graph) in configuration.task_graphs() {
        for (bid, buffer) in graph.buffers() {
            if buffer.name() == name {
                return Some(BufferRef::new(gid, bid));
            }
        }
    }
    None
}

/// Finds a task graph by name.
pub fn find_task_graph(configuration: &Configuration, name: &str) -> Option<TaskGraphId> {
    configuration
        .task_graphs()
        .find(|(_, g)| g.name() == name)
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built() -> Configuration {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor_with_overhead("p2", 40.0, 1.0);
        builder.memory("sram", 1024);
        builder.unbounded_memory("dram");
        builder.budget_granularity(2);
        {
            let job = builder.task_graph("T1", 10.0);
            job.task("wa", 1.0, "p1");
            job.weighted_task("wb", 1.0, "p2", 3.0);
            job.buffer("bab", "wa", "wb", "sram");
            job.buffer_detailed("bba", "wb", "wa", "dram", 2, 1, 0.5, Some(8));
        }
        builder.build().unwrap()
    }

    #[test]
    fn builds_a_valid_configuration() {
        let c = built();
        assert_eq!(c.num_processors(), 2);
        assert_eq!(c.num_memories(), 2);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.num_buffers(), 2);
        assert_eq!(c.budget_granularity(), 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn name_lookup_helpers() {
        let c = built();
        let wa = find_task(&c, "wa").unwrap();
        assert_eq!(c.task_graph(wa.graph).task(wa.task).name(), "wa");
        let bba = find_buffer(&c, "bba").unwrap();
        let buffer = c.task_graph(bba.graph).buffer(bba.buffer);
        assert_eq!(buffer.container_size(), 2);
        assert_eq!(buffer.initial_tokens(), 1);
        assert_eq!(buffer.max_capacity(), Some(8));
        assert!(find_task(&c, "nonexistent").is_none());
        assert!(find_buffer(&c, "nonexistent").is_none());
        assert!(find_task_graph(&c, "T1").is_some());
        assert!(find_task_graph(&c, "T9").is_none());
    }

    #[test]
    fn processor_and_memory_id_lookup() {
        let mut builder = ConfigurationBuilder::new();
        let p = builder.processor("cpu", 100.0);
        let m = builder.memory("mem", 64);
        assert_eq!(builder.processor_id("cpu"), Some(p));
        assert_eq!(builder.memory_id("mem"), Some(m));
        assert_eq!(builder.processor_id("gpu"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate processor name")]
    fn duplicate_processor_names_panic() {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p", 10.0);
        builder.processor("p", 20.0);
    }

    #[test]
    #[should_panic(expected = "unknown task name")]
    fn unknown_task_reference_panics() {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p", 10.0);
        builder.unbounded_memory("m");
        {
            let job = builder.task_graph("T", 5.0);
            job.task("a", 1.0, "p");
            job.buffer("bad", "a", "ghost", "m");
        }
        let _ = builder.build();
    }

    #[test]
    fn build_propagates_validation_errors() {
        // A task heavier than the period must be rejected by validation.
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p", 40.0);
        builder.unbounded_memory("m");
        builder.task_graph("T", 10.0).task("heavy", 20.0, "p");
        assert!(matches!(
            builder.build(),
            Err(ModelError::PeriodUnattainable { .. })
        ));
    }
}
