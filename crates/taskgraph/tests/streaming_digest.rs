//! Property tests pinning the streaming digest to the canonical JSON bytes.
//!
//! The engine's cache keys are derived from [`CanonicalDigest`]s instead of
//! canonical-JSON strings; that is only sound if the streaming byte feed is
//! exactly the serialised text. The property below generates arbitrary
//! *valid* configurations — including names that need every JSON escape
//! class — and asserts the defining identity of the low lane:
//! `digest.lo == fnv1a(canonical_json().as_bytes())`.

use bbs_taskgraph::{
    apply_capacity_cap, canonical_digest_of, fnv1a, Buffer, ConfigView, Configuration, Memory,
    Processor, ProcessorId, Task, TaskGraph, TaskId,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Splitmix64: a tiny deterministic stream of u64s from one seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Names drawn from a palette that exercises plain identifiers, every JSON
/// escape class, multi-byte UTF-8 and control characters.
fn name(mix: &mut Mix, role: &str, index: usize) -> String {
    let decorations = [
        "",
        " space",
        "\"quoted\"",
        "back\\slash",
        "line\nbreak",
        "tab\there",
        "carriage\rreturn",
        "control\u{1}char",
        "ünïcødé ✓",
        "null\u{0}byte",
    ];
    let decoration = decorations[mix.pick(decorations.len() as u64) as usize];
    format!("{role}{index}{decoration}")
}

/// Builds an arbitrary configuration that always passes
/// [`Configuration::validate`]: every task's wcet stays below its graph's
/// period, and every processor/memory reference is in range.
fn arbitrary_valid_configuration(seed: u64) -> Configuration {
    let mut mix = Mix(seed);
    let mut configuration = Configuration::new();
    configuration.set_budget_granularity(1 + mix.pick(16));

    let processors = 1 + mix.pick(3) as usize;
    for p in 0..processors {
        let interval = 10.0 + mix.pick(100) as f64;
        configuration.add_processor(Processor::new(name(&mut mix, "p", p), interval));
    }
    let memories = 1 + mix.pick(3) as usize;
    for m in 0..memories {
        let memory = if mix.pick(2) == 0 {
            Memory::unbounded(name(&mut mix, "m", m))
        } else {
            Memory::new(name(&mut mix, "m", m), 1 + mix.pick(1000))
        };
        configuration.add_memory(memory);
    }

    let graphs = 1 + mix.pick(3) as usize;
    for g in 0..graphs {
        let period = 20.0 + mix.pick(80) as f64 + 0.25;
        let mut graph = TaskGraph::new(name(&mut mix, "T", g), period);
        let tasks = 1 + mix.pick(4) as usize;
        for t in 0..tasks {
            // Strictly below the period so validation's attainability check
            // always passes.
            let wcet = 0.5 + (mix.pick(1000) as f64 / 1000.0) * (period * 0.9);
            let processor = ProcessorId::new(mix.pick(processors as u64) as usize);
            graph.add_task(Task::new(name(&mut mix, "w", t), wcet, processor));
        }
        let buffers = mix.pick(4) as usize;
        for b in 0..buffers {
            let producer = TaskId::new(mix.pick(tasks as u64) as usize);
            let consumer = TaskId::new(mix.pick(tasks as u64) as usize);
            let memory = bbs_taskgraph::MemoryId::new(mix.pick(memories as u64) as usize);
            let mut buffer = Buffer::new(name(&mut mix, "b", b), producer, consumer, memory)
                .with_container_size(1 + mix.pick(8))
                .with_initial_tokens(mix.pick(3));
            if mix.pick(2) == 0 {
                buffer = buffer.with_max_capacity(1 + mix.pick(12));
            }
            graph.add_buffer(buffer);
        }
        configuration.add_task_graph(graph);
    }
    configuration
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_digest_low_lane_equals_fnv_of_canonical_json(seed in 0u64..u64::MAX) {
        let configuration = arbitrary_valid_configuration(seed);
        prop_assert!(configuration.validate().is_ok(), "generator must stay valid");
        let json = configuration.canonical_json();
        let digest = configuration.canonical_digest();
        // The defining identity of the low lane.
        prop_assert_eq!(digest.lo, fnv1a(json.as_bytes()));
        // The fingerprint API and the generic digest helper agree with it.
        prop_assert_eq!(configuration.canonical_fingerprint(), digest.lo);
        prop_assert_eq!(canonical_digest_of(&configuration), digest);
        // The streamed bytes themselves are the canonical JSON.
        let mut streamed = String::new();
        serde::Serialize::serialize_canonical(&configuration, &mut streamed);
        prop_assert_eq!(streamed, json);
    }

    #[test]
    fn capped_views_stream_the_bytes_of_materialised_clones(
        seed in 0u64..u64::MAX,
        cap in 1u64..64,
    ) {
        let base = Arc::new(arbitrary_valid_configuration(seed));
        let view = ConfigView::with_capacity_cap(Arc::clone(&base), cap);
        let clone = apply_capacity_cap(&base, cap);
        // The view streams exactly the canonical JSON of the capped clone …
        prop_assert_eq!(view.canonical_json(), clone.canonical_json());
        // … so both CanonicalHasher lanes agree with the clone's digest …
        let view_digest = canonical_digest_of(&view);
        prop_assert_eq!(view_digest, clone.canonical_digest());
        prop_assert_eq!(view_digest.lo, fnv1a(clone.canonical_json().as_bytes()));
        // … and materialising the view reproduces the clone exactly.
        prop_assert_eq!(view.config(), &clone);
    }

    #[test]
    fn uncapped_views_are_transparent(seed in 0u64..u64::MAX) {
        let base = Arc::new(arbitrary_valid_configuration(seed));
        let view = ConfigView::new(Arc::clone(&base));
        prop_assert_eq!(view.canonical_json(), base.canonical_json());
        prop_assert_eq!(canonical_digest_of(&view), base.canonical_digest());
    }

    #[test]
    fn equal_configurations_share_digests_and_perturbations_do_not(seed in 0u64..u64::MAX) {
        let a = arbitrary_valid_configuration(seed);
        let b = arbitrary_valid_configuration(seed);
        prop_assert_eq!(a.canonical_digest(), b.canonical_digest());
        let mut c = arbitrary_valid_configuration(seed);
        c.set_budget_granularity(a.budget_granularity() + 17);
        prop_assert_ne!(a.canonical_digest(), c.canonical_digest());
    }
}
