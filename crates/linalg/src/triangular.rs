//! Forward and backward substitution with triangular matrices.

use crate::{DMatrix, DVector};

/// Solves `L x = b` where `L` is lower triangular (entries above the diagonal
/// are ignored).
///
/// # Panics
///
/// Panics if `L` is not square, if the dimensions do not match, or if a
/// diagonal entry is exactly zero.
///
/// ```
/// use bbs_linalg::{DMatrix, DVector, solve_lower};
/// let l = DMatrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
/// let b = DVector::from_slice(&[4.0, 5.0]);
/// let x = solve_lower(&l, &b);
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve_lower(l: &DMatrix, b: &DVector) -> DVector {
    let n = check_square(l, b);
    let mut x = DVector::zeros(n);
    for i in 0..n {
        let mut acc = b[i];
        let row = l.row(i);
        for (j, xv) in x.as_slice()[..i].iter().enumerate() {
            acc -= row[j] * xv;
        }
        let d = row[i];
        assert!(d != 0.0, "solve_lower: zero diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solves `Lᵀ x = b` where `L` is lower triangular.
///
/// # Panics
///
/// Panics if `L` is not square, if the dimensions do not match, or if a
/// diagonal entry is exactly zero.
pub fn solve_lower_transpose(l: &DMatrix, b: &DVector) -> DVector {
    let n = check_square(l, b);
    let mut x = DVector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        let d = l[(i, i)];
        assert!(d != 0.0, "solve_lower_transpose: zero diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solves `U x = b` where `U` is upper triangular (entries below the diagonal
/// are ignored).
///
/// # Panics
///
/// Panics if `U` is not square, if the dimensions do not match, or if a
/// diagonal entry is exactly zero.
pub fn solve_upper(u: &DMatrix, b: &DVector) -> DVector {
    let n = check_square(u, b);
    let mut x = DVector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = b[i];
        let row = u.row(i);
        for j in (i + 1)..n {
            acc -= row[j] * x[j];
        }
        let d = row[i];
        assert!(d != 0.0, "solve_upper: zero diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

fn check_square(m: &DMatrix, b: &DVector) -> usize {
    assert_eq!(m.nrows(), m.ncols(), "triangular solve: matrix not square");
    assert_eq!(m.nrows(), b.len(), "triangular solve: dimension mismatch");
    m.nrows()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower() -> DMatrix {
        DMatrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[-1.0, 2.0, 4.0]])
    }

    #[test]
    fn lower_solve_roundtrip() {
        let l = lower();
        let x_true = DVector::from_slice(&[1.0, -2.0, 3.0]);
        let b = l.matvec(&x_true);
        let x = solve_lower(&l, &b);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_transpose_solve_roundtrip() {
        let l = lower();
        let lt = l.transpose();
        let x_true = DVector::from_slice(&[0.5, 1.5, -0.5]);
        let b = lt.matvec(&x_true);
        let x = solve_lower_transpose(&l, &b);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve_roundtrip() {
        let u = lower().transpose();
        let x_true = DVector::from_slice(&[2.0, 0.0, -1.0]);
        let b = u.matvec(&x_true);
        let x = solve_upper(&u, &b);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn singular_lower_panics() {
        let l = DMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let _ = solve_lower(&l, &DVector::zeros(2));
    }

    #[test]
    #[should_panic(expected = "matrix not square")]
    fn non_square_panics() {
        let l = DMatrix::zeros(2, 3);
        let _ = solve_lower(&l, &DVector::zeros(2));
    }
}
