//! Dense, heap-allocated `f64` vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense column vector of `f64` values.
///
/// `DVector` is a thin wrapper around `Vec<f64>` that adds the numerical
/// operations needed by the interior-point solver (dot products, norms, axpy
/// updates, element-wise products) while keeping indexing and iteration as
/// cheap as on a plain slice.
///
/// # Example
///
/// ```
/// use bbs_linalg::DVector;
///
/// let x = DVector::from_slice(&[1.0, 2.0, 3.0]);
/// let y = DVector::from_slice(&[4.0, 5.0, 6.0]);
/// assert_eq!(x.dot(&y), 32.0);
/// assert_eq!((&x + &y).as_slice(), &[5.0, 7.0, 9.0]);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct DVector {
    data: Vec<f64>,
}

impl DVector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from an owned `Vec<f64>` without copying.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { data: values }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Infinity norm (maximum absolute value); `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum element; `+inf` for the empty vector.
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Maximum element; `-inf` for the empty vector.
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// In-place `self += alpha * x` (the BLAS `axpy` update).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: &Self) {
        assert_eq!(self.len(), x.len(), "axpy: length mismatch");
        for (s, &v) in self.data.iter_mut().zip(x.data.iter()) {
            *s += alpha * v;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns a scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Self {
        let mut out = self.clone();
        out.scale_mut(alpha);
        out
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "hadamard: length mismatch");
        Self::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// Element-wise division.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn element_div(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "element_div: length mismatch");
        Self::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a / b)
                .collect(),
        )
    }

    /// Returns a sub-vector copy of the half-open range `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn segment(&self, start: usize, len: usize) -> Self {
        Self::from_slice(&self.data[start..start + len])
    }

    /// Copies `values` into the range starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn set_segment(&mut self, start: usize, values: &[f64]) {
        self.data[start..start + values.len()].copy_from_slice(values);
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for DVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DVector").field(&self.data).finish()
    }
}

impl fmt::Display for DVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for DVector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for DVector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for DVector {
    fn from(values: Vec<f64>) -> Self {
        Self::from_vec(values)
    }
}

impl FromIterator<f64> for DVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a DVector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &DVector {
    type Output = DVector;
    fn add(self, rhs: &DVector) -> DVector {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        DVector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub for &DVector {
    type Output = DVector;
    fn sub(self, rhs: &DVector) -> DVector {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        DVector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl Neg for &DVector {
    type Output = DVector;
    fn neg(self) -> DVector {
        DVector::from_vec(self.data.iter().map(|v| -v).collect())
    }
}

impl Mul<f64> for &DVector {
    type Output = DVector;
    fn mul(self, rhs: f64) -> DVector {
        self.scaled(rhs)
    }
}

impl AddAssign<&DVector> for DVector {
    fn add_assign(&mut self, rhs: &DVector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&DVector> for DVector {
    fn sub_assign(&mut self, rhs: &DVector) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_filled() {
        let z = DVector::zeros(3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let f = DVector::filled(2, 7.5);
        assert_eq!(f.as_slice(), &[7.5, 7.5]);
        assert!(!f.is_empty());
        assert!(DVector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let x = DVector::from_slice(&[3.0, -4.0]);
        assert_eq!(x.dot(&x), 25.0);
        assert_eq!(x.norm2(), 5.0);
        assert_eq!(x.norm_inf(), 4.0);
        assert_eq!(x.sum(), -1.0);
        assert_eq!(x.min(), -4.0);
        assert_eq!(x.max(), 3.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = DVector::from_slice(&[1.0, 1.0]);
        let x = DVector::from_slice(&[2.0, -3.0]);
        y.axpy(2.0, &x);
        assert_eq!(y.as_slice(), &[5.0, -5.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let x = DVector::from_slice(&[1.0, 2.0]);
        let y = DVector::from_slice(&[3.0, 5.0]);
        assert_eq!((&x + &y).as_slice(), &[4.0, 7.0]);
        assert_eq!((&y - &x).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&x).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&x * 3.0).as_slice(), &[3.0, 6.0]);
        let mut z = x.clone();
        z += &y;
        assert_eq!(z.as_slice(), &[4.0, 7.0]);
        z -= &y;
        assert_eq!(z.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn hadamard_and_division() {
        let x = DVector::from_slice(&[2.0, 3.0]);
        let y = DVector::from_slice(&[4.0, 6.0]);
        assert_eq!(x.hadamard(&y).as_slice(), &[8.0, 18.0]);
        assert_eq!(y.element_div(&x).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn segment_roundtrip() {
        let mut x = DVector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.segment(1, 2).as_slice(), &[2.0, 3.0]);
        x.set_segment(2, &[9.0, 8.0]);
        assert_eq!(x.as_slice(), &[1.0, 2.0, 9.0, 8.0]);
    }

    #[test]
    fn finite_detection() {
        assert!(DVector::from_slice(&[1.0, -2.0]).is_finite());
        assert!(!DVector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!DVector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn display_and_debug_nonempty() {
        let x = DVector::from_slice(&[1.0]);
        assert!(!format!("{x}").is_empty());
        assert!(format!("{x:?}").contains("DVector"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let x = DVector::zeros(2);
        let y = DVector::zeros(3);
        let _ = x.dot(&y);
    }

    #[test]
    fn from_iterator_collects() {
        let x: DVector = (0..4).map(|i| i as f64).collect();
        assert_eq!(x.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let total: f64 = (&x).into_iter().sum();
        assert_eq!(total, 6.0);
    }

    proptest! {
        #[test]
        fn prop_dot_commutes(a in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let n = a.len();
            let b: Vec<f64> = a.iter().map(|v| v * 0.5 + 1.0).collect();
            let x = DVector::from_slice(&a);
            let y = DVector::from_slice(&b[..n]);
            prop_assert!((x.dot(&y) - y.dot(&x)).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(a in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let x = DVector::from_slice(&a);
            let y = x.scaled(-0.3);
            let lhs = (&x + &y).norm2();
            prop_assert!(lhs <= x.norm2() + y.norm2() + 1e-9);
        }

        #[test]
        fn prop_axpy_matches_operator(a in proptest::collection::vec(-1e2f64..1e2, 1..16),
                                      alpha in -10.0f64..10.0) {
            let x = DVector::from_slice(&a);
            let mut y = x.scaled(2.0);
            let expected = &y + &x.scaled(alpha);
            y.axpy(alpha, &x);
            for i in 0..y.len() {
                prop_assert!((y[i] - expected[i]).abs() < 1e-9);
            }
        }
    }
}
