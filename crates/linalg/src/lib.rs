//! Small, dependency-free dense linear algebra kernels.
//!
//! The conic interior-point solver in `bbs-conic` needs a handful of dense
//! operations on small matrices (tens to a few hundreds of rows): vector
//! arithmetic, matrix products, symmetric rank updates, and Cholesky / LDLᵀ
//! factorisations with solves. This crate provides exactly those kernels with
//! a deliberately small and well-tested surface instead of pulling in a large
//! external linear-algebra dependency.
//!
//! # Example
//!
//! ```
//! use bbs_linalg::{DMatrix, DVector, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = DMatrix::from_rows(&[
//!     &[4.0, 1.0],
//!     &[1.0, 3.0],
//! ]);
//! let b = DVector::from_slice(&[1.0, 2.0]);
//! let chol = Cholesky::factor(&a).expect("matrix is SPD");
//! let x = chol.solve(&b);
//! let r = &a.matvec(&x) - &b;
//! assert!(r.norm_inf() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod ldlt;
mod matrix;
mod triangular;
mod vector;

pub use cholesky::{Cholesky, CholeskyError};
pub use ldlt::{Ldlt, LdltError};
pub use matrix::DMatrix;
pub use triangular::{solve_lower, solve_lower_transpose, solve_upper};
pub use vector::DVector;

/// Numerical tolerance helpers shared by the factorisations and their tests.
pub mod tol {
    /// Default pivot threshold below which a factorisation reports a
    /// non-positive-definite / singular matrix.
    pub const PIVOT_EPS: f64 = 1e-13;

    /// Returns `true` when two floating point numbers agree to within an
    /// absolute tolerance `atol` or a relative tolerance `rtol`.
    ///
    /// ```
    /// assert!(bbs_linalg::tol::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
    /// assert!(!bbs_linalg::tol::approx_eq(1.0, 1.1, 1e-9, 1e-9));
    /// ```
    pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
        let diff = (a - b).abs();
        diff <= atol || diff <= rtol * a.abs().max(b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_roundtrip() {
        let a = DMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = DVector::from_slice(&[1.0, 2.0]);
        let chol = Cholesky::factor(&a).unwrap();
        let x = chol.solve(&b);
        let r = &a.matvec(&x) - &b;
        assert!(r.norm_inf() < 1e-12);
    }

    #[test]
    fn approx_eq_is_symmetric() {
        assert_eq!(
            tol::approx_eq(3.0, 3.0000001, 1e-3, 0.0),
            tol::approx_eq(3.0000001, 3.0, 1e-3, 0.0)
        );
    }
}
