//! Dense, row-major `f64` matrices.

use crate::DVector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64` values.
///
/// The interior-point solver works with constraint matrices `G` of a few
/// hundred rows at most, so a straightforward row-major dense layout is both
/// simple and fast enough.
///
/// # Example
///
/// ```
/// use bbs_linalg::{DMatrix, DVector};
///
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = DVector::from_slice(&[1.0, 1.0]);
/// assert_eq!(a.matvec(&x).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "from_rows: inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_row_major: size mismatch");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from a vector.
    pub fn from_diagonal(diag: &DVector) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow a row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a copy of column `c`.
    pub fn column(&self, c: usize) -> DVector {
        DVector::from_vec((0..self.rows).map(|r| self[(r, c)]).collect())
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn matvec(&self, x: &DVector) -> DVector {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut out = DVector::zeros(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows()`.
    pub fn matvec_transpose(&self, x: &DVector) -> DVector {
        assert_eq!(x.len(), self.rows, "matvec_transpose: dimension mismatch");
        let mut out = DVector::zeros(self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            for (c, a) in row.iter().enumerate() {
                out[c] += a * xr;
            }
        }
        out
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (j, b) in brow.iter().enumerate() {
                    orow[j] += aik * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Computes `Aᵀ D A` for a diagonal matrix `D` given as a vector.
    ///
    /// This is the normal-equations building block of the interior-point
    /// method when all cones are one-dimensional.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != nrows()`.
    pub fn congruence_diag(&self, d: &DVector) -> DMatrix {
        assert_eq!(d.len(), self.rows, "congruence_diag: dimension mismatch");
        let n = self.cols;
        let mut out = DMatrix::zeros(n, n);
        for r in 0..self.rows {
            let w = d[r];
            if w == 0.0 {
                continue;
            }
            let row = self.row(r);
            for i in 0..n {
                let wi = w * row[i];
                if wi == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for j in 0..n {
                    orow[j] += wi * row[j];
                }
            }
        }
        out
    }

    /// In-place symmetric rank-one update `self += alpha * v vᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square of dimension `v.len()`.
    pub fn syr(&mut self, alpha: f64, v: &DVector) {
        assert_eq!(self.rows, self.cols, "syr: matrix must be square");
        assert_eq!(self.rows, v.len(), "syr: dimension mismatch");
        for i in 0..self.rows {
            let vi = alpha * v[i];
            if vi == 0.0 {
                continue;
            }
            let row = self.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r += vi * v[j];
            }
        }
    }

    /// In-place addition `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &DMatrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds `value` to every diagonal entry (used for regularisation).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &DMatrix {
    type Output = DMatrix;
    fn add(self, rhs: &DMatrix) -> DMatrix {
        let mut out = self.clone();
        out.add_scaled(1.0, rhs);
        out
    }
}

impl Sub for &DMatrix {
    type Output = DMatrix;
    fn sub(self, rhs: &DMatrix) -> DMatrix {
        let mut out = self.clone();
        out.add_scaled(-1.0, rhs);
        out
    }
}

impl Mul<&DVector> for &DMatrix {
    type Output = DVector;
    fn mul(self, rhs: &DVector) -> DVector {
        self.matvec(rhs)
    }
}

impl Mul<&DMatrix> for &DMatrix {
    type Output = DMatrix;
    fn mul(self, rhs: &DMatrix) -> DMatrix {
        self.matmul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix() -> DMatrix {
        DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn construction_and_indexing() {
        let m = small_matrix();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 5.0]);
        assert!(!m.is_empty());
        assert!(DMatrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn identity_and_diagonal() {
        let i = DMatrix::identity(3);
        let x = DVector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(i.matvec(&x).as_slice(), x.as_slice());
        let d = DMatrix::from_diagonal(&x);
        assert_eq!(d.matvec(&x).as_slice(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = small_matrix();
        let x = DVector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).as_slice(), &[-2.0, -2.0]);
        let y = DVector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.matvec_transpose(&y).as_slice(), &[5.0, 7.0, 9.0]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        let d = &a * &b;
        assert_eq!(d, c);
    }

    #[test]
    fn congruence_diag_is_symmetric_psd() {
        let g = small_matrix();
        let d = DVector::from_slice(&[2.0, 3.0]);
        let m = g.congruence_diag(&d);
        assert!(m.is_symmetric(1e-12));
        // xᵀ (Gᵀ D G) x = Σ d_r (G x)_r² ≥ 0
        let x = DVector::from_slice(&[0.3, -0.7, 1.1]);
        let gx = g.matvec(&x);
        let expected: f64 = (0..2).map(|r| d[r] * gx[r] * gx[r]).sum();
        assert!((x.dot(&m.matvec(&x)) - expected).abs() < 1e-9);
    }

    #[test]
    fn syr_rank_one_update() {
        let mut m = DMatrix::zeros(2, 2);
        let v = DVector::from_slice(&[1.0, 2.0]);
        m.syr(3.0, &v);
        assert_eq!(m.row(0), &[3.0, 6.0]);
        assert_eq!(m.row(1), &[6.0, 12.0]);
    }

    #[test]
    fn add_sub_and_norms() {
        let a = DMatrix::identity(2);
        let b = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = &a + &b;
        assert_eq!(c.row(0), &[1.0, 1.0]);
        let d = &c - &b;
        assert_eq!(d, a);
        assert_eq!(b.norm_inf(), 1.0);
        assert!((c.norm_frobenius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn regularisation_and_checks() {
        let mut a = DMatrix::identity(2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert!(a.is_finite());
        assert!(a.is_symmetric(0.0));
        assert!(!small_matrix().is_symmetric(0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_size_panics() {
        let m = small_matrix();
        let _ = m.matvec(&DVector::zeros(2));
    }

    #[test]
    fn debug_and_display_nonempty() {
        let m = DMatrix::identity(1);
        assert!(format!("{m:?}").contains("DMatrix"));
        assert!(!format!("{m}").is_empty());
    }

    proptest! {
        #[test]
        fn prop_matvec_linearity(vals in proptest::collection::vec(-10.0f64..10.0, 12),
                                 alpha in -5.0f64..5.0) {
            let a = DMatrix::from_row_major(3, 4, vals);
            let x = DVector::from_slice(&[1.0, -2.0, 0.5, 3.0]);
            let y = DVector::from_slice(&[0.1, 0.2, 0.3, 0.4]);
            let mut xs = x.clone();
            xs.axpy(alpha, &y);
            let lhs = a.matvec(&xs);
            let mut rhs = a.matvec(&x);
            rhs.axpy(alpha, &a.matvec(&y));
            for i in 0..3 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_transpose_involution(vals in proptest::collection::vec(-10.0f64..10.0, 12)) {
            let a = DMatrix::from_row_major(4, 3, vals);
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_matvec_transpose_adjoint(vals in proptest::collection::vec(-10.0f64..10.0, 12)) {
            // <A x, y> == <x, Aᵀ y>
            let a = DMatrix::from_row_major(3, 4, vals);
            let x = DVector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
            let y = DVector::from_slice(&[-1.0, 0.5, 2.0]);
            let lhs = a.matvec(&x).dot(&y);
            let rhs = x.dot(&a.matvec_transpose(&y));
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }
}
