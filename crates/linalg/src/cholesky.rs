//! Cholesky factorisation of symmetric positive definite matrices.

use crate::{solve_lower, solve_lower_transpose, DMatrix, DVector};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix cannot be Cholesky-factorised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot was non-positive (matrix not positive definite), reporting the
    /// offending column.
    NotPositiveDefinite {
        /// Column index of the failing pivot.
        column: usize,
    },
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite (pivot {column})")
            }
        }
    }
}

impl Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// # Example
///
/// ```
/// use bbs_linalg::{Cholesky, DMatrix, DVector};
/// # fn main() -> Result<(), bbs_linalg::CholeskyError> {
/// let a = DMatrix::from_rows(&[&[25.0, 15.0, -5.0],
///                              &[15.0, 18.0,  0.0],
///                              &[-5.0,  0.0, 11.0]]);
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&DVector::from_slice(&[1.0, 2.0, 3.0]));
/// assert!((&a.matvec(&x) - &DVector::from_slice(&[1.0, 2.0, 3.0])).norm_inf() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factorises a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError::NotSquare`] when `a` is not square and
    /// [`CholeskyError::NotPositiveDefinite`] when a pivot drops below the
    /// numerical threshold [`crate::tol::PIVOT_EPS`].
    pub fn factor(a: &DMatrix) -> Result<Self, CholeskyError> {
        Self::factor_regularized(a, 0.0)
    }

    /// Factorises `a + reg * I`, which is useful to keep nearly singular
    /// normal-equation systems solvable inside the interior-point method.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::factor`].
    pub fn factor_regularized(a: &DMatrix, reg: f64) -> Result<Self, CholeskyError> {
        if a.nrows() != a.ncols() {
            return Err(CholeskyError::NotSquare);
        }
        let n = a.nrows();
        let mut l = DMatrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)] + reg;
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= crate::tol::PIVOT_EPS {
                return Err(CholeskyError::NotPositiveDefinite { column: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor_l(&self) -> &DMatrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &DVector) -> DVector {
        let y = solve_lower(&self.l, b);
        solve_lower_transpose(&self.l, &y)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// log-determinant of `A` (twice the sum of log diagonal entries of `L`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn spd(n: usize, seed: u64) -> DMatrix {
        // Build A = B Bᵀ + n*I which is SPD by construction.
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = DMatrix::from_row_major(n, n, data);
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_solve_small() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        let b = DVector::from_slice(&[6.0, 5.0]);
        let x = chol.solve(&b);
        assert!((&a.matvec(&x) - &b).norm_inf() < 1e-12);
        assert_eq!(chol.dim(), 2);
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::zeros(2, 3);
        assert_eq!(Cholesky::factor(&a), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        match Cholesky::factor(&a) {
            Err(CholeskyError::NotPositiveDefinite { column }) => assert_eq!(column, 1),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn regularisation_recovers_singular() {
        let a = DMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        assert!(Cholesky::factor_regularized(&a, 1e-6).is_ok());
    }

    #[test]
    fn log_det_matches_known_value() {
        let a = DMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!CholeskyError::NotSquare.to_string().is_empty());
        assert!(CholeskyError::NotPositiveDefinite { column: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn factor_l_is_lower_triangular() {
        let a = spd(5, 7);
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_l();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_factor_reconstructs(seed in 0u64..500, n in 1usize..8) {
            let a = spd(n, seed);
            let chol = Cholesky::factor(&a).unwrap();
            let l = chol.factor_l();
            let reconstructed = l.matmul(&l.transpose());
            prop_assert!((&reconstructed - &a).norm_inf() < 1e-8 * (1.0 + a.norm_inf()));
        }

        #[test]
        fn prop_solve_residual_small(seed in 0u64..500, n in 1usize..8) {
            let a = spd(n, seed);
            let chol = Cholesky::factor(&a).unwrap();
            let b = DVector::from_vec((0..n).map(|i| (i as f64) - 1.5).collect());
            let x = chol.solve(&b);
            prop_assert!((&a.matvec(&x) - &b).norm_inf() < 1e-8 * (1.0 + b.norm_inf()));
        }
    }
}
