//! LDLᵀ factorisation for symmetric (possibly indefinite but non-singular
//! quasi-definite) matrices.
//!
//! The interior-point KKT systems solved in `bbs-conic` are symmetric
//! quasi-definite after regularisation, which is exactly the class for which
//! an unpivoted LDLᵀ factorisation is numerically acceptable.

use crate::{DMatrix, DVector};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix cannot be LDLᵀ-factorised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdltError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot was too close to zero, reporting the offending column.
    SingularPivot {
        /// Column index of the failing pivot.
        column: usize,
    },
}

impl fmt::Display for LdltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdltError::NotSquare => write!(f, "matrix is not square"),
            LdltError::SingularPivot { column } => {
                write!(f, "matrix is numerically singular (pivot {column})")
            }
        }
    }
}

impl Error for LdltError {}

/// Unpivoted LDLᵀ factorisation `A = L D Lᵀ` with unit lower-triangular `L`
/// and diagonal `D`.
///
/// # Example
///
/// ```
/// use bbs_linalg::{Ldlt, DMatrix, DVector};
/// # fn main() -> Result<(), bbs_linalg::LdltError> {
/// // A symmetric quasi-definite matrix (positive and negative diagonal blocks).
/// let a = DMatrix::from_rows(&[&[ 2.0,  1.0],
///                              &[ 1.0, -3.0]]);
/// let f = Ldlt::factor(&a)?;
/// let b = DVector::from_slice(&[1.0, 2.0]);
/// let x = f.solve(&b);
/// assert!((&a.matvec(&x) - &b).norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ldlt {
    l: DMatrix,
    d: DVector,
}

impl Ldlt {
    /// Factorises a symmetric matrix without pivoting.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`LdltError::NotSquare`] when `a` is not square and
    /// [`LdltError::SingularPivot`] when a pivot magnitude drops below
    /// [`crate::tol::PIVOT_EPS`].
    pub fn factor(a: &DMatrix) -> Result<Self, LdltError> {
        if a.nrows() != a.ncols() {
            return Err(LdltError::NotSquare);
        }
        let n = a.nrows();
        let mut l = DMatrix::identity(n);
        let mut d = DVector::zeros(n);
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.abs() <= crate::tol::PIVOT_EPS {
                return Err(LdltError::SingularPivot { column: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Self { l, d })
    }

    /// The unit lower-triangular factor `L`.
    pub fn factor_l(&self) -> &DMatrix {
        &self.l
    }

    /// The diagonal factor `D` as a vector.
    pub fn factor_d(&self) -> &DVector {
        &self.d
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Number of negative pivots (the matrix inertia's negative count).
    pub fn negative_pivots(&self) -> usize {
        self.d.iter().filter(|&&v| v < 0.0).count()
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &DVector) -> DVector {
        let n = self.dim();
        assert_eq!(b.len(), n, "ldlt solve: dimension mismatch");
        // Forward substitution with unit lower-triangular L.
        let mut y = b.clone();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Diagonal solve.
        for i in 0..n {
            y[i] /= self.d[i];
        }
        // Backward substitution with Lᵀ.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * y[j];
            }
            y[i] = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn quasi_definite(n: usize, m: usize, seed: u64) -> DMatrix {
        // [ P   Gᵀ ]
        // [ G  -Q  ]  with P, Q SPD — the structure of IPM KKT systems.
        let mut rng = SmallRng::seed_from_u64(seed);
        let dim = n + m;
        let mut a = DMatrix::zeros(dim, dim);
        for i in 0..n {
            a[(i, i)] = rng.gen_range(1.0..3.0);
        }
        for i in 0..m {
            a[(n + i, n + i)] = -rng.gen_range(1.0..3.0);
        }
        for i in 0..m {
            for j in 0..n {
                let v = rng.gen_range(-1.0..1.0);
                a[(n + i, j)] = v;
                a[(j, n + i)] = v;
            }
        }
        a
    }

    #[test]
    fn factor_solve_roundtrip() {
        let a = quasi_definite(3, 2, 11);
        let f = Ldlt::factor(&a).unwrap();
        let b = DVector::from_slice(&[1.0, -1.0, 2.0, 0.5, -0.25]);
        let x = f.solve(&b);
        assert!((&a.matvec(&x) - &b).norm_inf() < 1e-9);
        assert_eq!(f.dim(), 5);
    }

    #[test]
    fn inertia_counts_negative_block() {
        let a = quasi_definite(3, 2, 3);
        let f = Ldlt::factor(&a).unwrap();
        assert_eq!(f.negative_pivots(), 2);
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(
            Ldlt::factor(&DMatrix::zeros(2, 3)),
            Err(LdltError::NotSquare)
        );
    }

    #[test]
    fn rejects_singular() {
        let a = DMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        match Ldlt::factor(&a) {
            Err(LdltError::SingularPivot { column }) => assert_eq!(column, 1),
            other => panic!("expected singular pivot, got {other:?}"),
        }
    }

    #[test]
    fn factors_accessible() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let f = Ldlt::factor(&a).unwrap();
        assert_eq!(f.factor_l()[(1, 0)], 0.5);
        assert_eq!(f.factor_d()[0], 4.0);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!LdltError::NotSquare.to_string().is_empty());
        assert!(LdltError::SingularPivot { column: 1 }
            .to_string()
            .contains('1'));
    }

    proptest! {
        #[test]
        fn prop_reconstruction(seed in 0u64..300, n in 1usize..5, m in 1usize..5) {
            let a = quasi_definite(n, m, seed);
            let f = Ldlt::factor(&a).unwrap();
            let l = f.factor_l();
            let d = DMatrix::from_diagonal(f.factor_d());
            let rec = l.matmul(&d).matmul(&l.transpose());
            prop_assert!((&rec - &a).norm_inf() < 1e-8 * (1.0 + a.norm_inf()));
        }

        #[test]
        fn prop_solve_residual(seed in 0u64..300, n in 1usize..5, m in 1usize..5) {
            let a = quasi_definite(n, m, seed);
            let f = Ldlt::factor(&a).unwrap();
            let b = DVector::from_vec((0..n + m).map(|i| (i as f64) * 0.7 - 1.0).collect());
            let x = f.solve(&b);
            prop_assert!((&a.matvec(&x) - &b).norm_inf() < 1e-7 * (1.0 + b.norm_inf()));
        }
    }
}
