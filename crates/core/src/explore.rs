//! Trade-off exploration: the drivers behind the paper's figures.
//!
//! The budget/buffer trade-off is explored exactly as in the paper's
//! experiments: the maximum buffer capacity is swept and for every value the
//! joint optimisation is solved with weights that prioritise budget
//! minimisation. The resulting series are the data behind Figure 2(a)
//! (budget versus capacity), Figure 2(b) (the discrete derivative of that
//! curve) and Figure 3 (per-task budgets for the three-task chain).

use crate::error::MappingError;
use crate::options::SolveOptions;
use crate::solution::Mapping;
use crate::solver::compute_mapping;
use bbs_taskgraph::Configuration;
use std::time::{Duration, Instant};

/// One point of a capacity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// The capacity cap applied to every buffer of the configuration, in
    /// containers.
    pub capacity_cap: u64,
    /// The mapping computed under that cap.
    pub mapping: Mapping,
    /// Wall-clock time of the solve.
    pub solve_time: Duration,
}

impl TradeoffPoint {
    /// Sum of all budgets at this point, in cycles.
    pub fn total_budget(&self) -> u64 {
        self.mapping.total_budget()
    }
}

/// Sweeps the maximum buffer capacity over `caps`, applying the same cap to
/// *every* buffer of the configuration (as the paper does for both of its
/// experiments), and solves the joint problem for each value.
///
/// # Errors
///
/// Propagates the first error encountered. An infeasible cap (for example a
/// single container when the processors cannot afford the implied budgets)
/// is reported as [`MappingError::Infeasible`].
pub fn sweep_buffer_capacity(
    configuration: &Configuration,
    caps: impl IntoIterator<Item = u64>,
    options: &SolveOptions,
) -> Result<Vec<TradeoffPoint>, MappingError> {
    let mut points = Vec::new();
    for cap in caps {
        let constrained = with_capacity_cap(configuration, cap);
        let start = Instant::now();
        let mapping = compute_mapping(&constrained, options)?;
        let solve_time = start.elapsed();
        points.push(TradeoffPoint {
            capacity_cap: cap,
            mapping,
            solve_time,
        });
    }
    Ok(points)
}

/// Returns a copy of the configuration with every buffer's maximum capacity
/// set to `cap` containers.
///
/// This is the materialisation of a capped
/// [`ConfigView`](bbs_taskgraph::ConfigView) — both delegate to the same
/// primitive ([`bbs_taskgraph::apply_capacity_cap`]), so sweeping with views
/// and sweeping with clones can never diverge.
pub fn with_capacity_cap(configuration: &Configuration, cap: u64) -> Configuration {
    bbs_taskgraph::apply_capacity_cap(configuration, cap)
}

/// The per-step budget reduction of a sweep (Figure 2(b)): element `i` is
/// the decrease in total budget when going from `points[i]` to
/// `points[i+1]` (one more container). Entries are clamped at zero so a
/// granularity artefact can never show as a negative saving.
pub fn budget_reduction_series(points: &[TradeoffPoint]) -> Vec<f64> {
    budget_reduction_from_totals(
        &points
            .iter()
            .map(TradeoffPoint::total_budget)
            .collect::<Vec<_>>(),
    )
}

/// [`budget_reduction_series`] over a bare series of total budgets, for
/// callers (such as the batch engine's reports) that do not hold
/// [`TradeoffPoint`]s. Keeps the clamp-at-zero rule in one place.
pub fn budget_reduction_from_totals(totals: &[u64]) -> Vec<f64> {
    totals
        .windows(2)
        .map(|w| (w[0] as f64 - w[1] as f64).max(0.0))
        .collect()
}

/// A point is Pareto-optimal when no other point has both a smaller total
/// budget and a smaller total storage. Returns the Pareto-optimal subset of
/// the sweep (in input order).
pub fn pareto_front(configuration: &Configuration, points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    points
        .iter()
        .filter(|candidate| {
            !points.iter().any(|other| {
                other.total_budget() < candidate.total_budget()
                    && other.mapping.total_storage(configuration)
                        < candidate.mapping.total_storage(configuration)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};

    fn options() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn figure2a_sweep_is_convex_and_decreasing() {
        let c = producer_consumer(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(&c, 1..=10, &options()).unwrap();
        assert_eq!(points.len(), 10);
        // Decreasing total budget.
        for w in points.windows(2) {
            assert!(w[1].total_budget() <= w[0].total_budget());
        }
        // End points match the hand analysis: ≈36–37 per task at capacity 1,
        // the floor of 4 per task at capacity 10.
        assert_eq!(points[0].mapping.budget_of_named(&c, "wa"), Some(37));
        assert_eq!(points[9].mapping.budget_of_named(&c, "wa"), Some(4));
    }

    #[test]
    fn figure2b_derivative_is_nonnegative_and_sums_to_total_drop() {
        let c = producer_consumer(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(&c, 1..=10, &options()).unwrap();
        let deltas = budget_reduction_series(&points);
        assert_eq!(deltas.len(), 9);
        assert!(deltas.iter().all(|&d| d >= 0.0));
        let total_drop: f64 = deltas.iter().sum();
        assert!(
            (total_drop - (points[0].total_budget() as f64 - points[9].total_budget() as f64))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn figure3_chain_sweep_orders_middle_task_last() {
        let c = chain3(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(&c, 1..=10, &options()).unwrap();
        for p in &points {
            let wa = p.mapping.budget_of_named(&c, "wa").unwrap();
            let wb = p.mapping.budget_of_named(&c, "wb").unwrap();
            let wc = p.mapping.budget_of_named(&c, "wc").unwrap();
            assert_eq!(
                wa, wc,
                "outer tasks stay symmetric at cap {}",
                p.capacity_cap
            );
            assert!(
                wb + 1 >= wa,
                "middle task must not be reduced ahead of the outer ones (cap {})",
                p.capacity_cap
            );
        }
        // At the largest capacity everything reaches the floor.
        let last = points.last().unwrap();
        assert_eq!(last.mapping.budget_of_named(&c, "wb"), Some(4));
    }

    #[test]
    fn capacity_cap_helper_applies_to_every_buffer() {
        let c = chain3(PaperParameters::default(), None);
        let capped = with_capacity_cap(&c, 7);
        for r in capped.all_buffers() {
            assert_eq!(
                capped.task_graph(r.graph).buffer(r.buffer).max_capacity(),
                Some(7)
            );
        }
    }

    #[test]
    fn pareto_front_is_nonempty_and_subset() {
        let c = producer_consumer(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(&c, [2u64, 4, 6, 8, 10], &options()).unwrap();
        let front = pareto_front(&c, &points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        for p in &front {
            assert!(points.iter().any(|q| q.capacity_cap == p.capacity_cap));
        }
    }

    #[test]
    fn solve_times_are_recorded() {
        let c = producer_consumer(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(&c, [5u64], &options()).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].solve_time > Duration::ZERO);
    }
}
