//! The output of the joint computation: a mapped configuration.

use bbs_taskgraph::{BufferRef, Configuration, MemoryId, ProcessorId, TaskRef};
use std::collections::BTreeMap;
use std::fmt;

/// A mapped configuration: one budget per task (a multiple of the budget
/// granularity) and one capacity per buffer (in containers), together with
/// the raw solver values they were rounded from.
///
/// Use [`crate::report::mapping_report`] for a serialisable view keyed by
/// task and buffer names.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    budgets: BTreeMap<TaskRef, u64>,
    raw_budgets: BTreeMap<TaskRef, f64>,
    capacities: BTreeMap<BufferRef, u64>,
    raw_space: BTreeMap<BufferRef, f64>,
    objective: f64,
    solver_iterations: usize,
    granularity: u64,
}

impl Mapping {
    /// Assembles a mapping from raw solver values, applying the paper's
    /// conservative rounding: `β(w) = g·⌈β'(w)/g⌉` and
    /// `γ(b) = ι(b) + ⌈δ'(b)⌉`.
    ///
    /// A tiny tolerance keeps values that are integral up to floating-point
    /// noise from being rounded a full step up.
    pub fn from_raw(
        configuration: &Configuration,
        raw_budgets: BTreeMap<TaskRef, f64>,
        raw_space: BTreeMap<BufferRef, f64>,
        objective: f64,
        solver_iterations: usize,
    ) -> Self {
        let granularity = configuration.budget_granularity();
        let g = granularity as f64;
        let budgets = raw_budgets
            .iter()
            .map(|(&task, &beta)| (task, (g * ((beta - 1e-6) / g).ceil()).max(g) as u64))
            .collect();
        let capacities = raw_space
            .iter()
            .map(|(&buffer, &delta)| {
                let initial = configuration
                    .task_graph(buffer.graph)
                    .buffer(buffer.buffer)
                    .initial_tokens();
                (buffer, initial + (delta - 1e-6).max(0.0).ceil() as u64)
            })
            .collect();
        Self {
            budgets,
            raw_budgets,
            capacities,
            raw_space,
            objective,
            solver_iterations,
            granularity,
        }
    }

    /// The rounded budget `β(w)` of a task, in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the task is not part of this mapping.
    pub fn budget(&self, task: TaskRef) -> u64 {
        self.budgets[&task]
    }

    /// The raw (pre-rounding) budget `β'(w)` of a task.
    ///
    /// # Panics
    ///
    /// Panics if the task is not part of this mapping.
    pub fn raw_budget(&self, task: TaskRef) -> f64 {
        self.raw_budgets[&task]
    }

    /// The capacity `γ(b)` of a buffer, in containers.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not part of this mapping.
    pub fn capacity(&self, buffer: BufferRef) -> u64 {
        self.capacities[&buffer]
    }

    /// The raw (pre-rounding) free-space token count `δ'(b)` of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not part of this mapping.
    pub fn raw_space(&self, buffer: BufferRef) -> f64 {
        self.raw_space[&buffer]
    }

    /// Iterator over `(task, budget)` pairs.
    pub fn budgets(&self) -> impl Iterator<Item = (TaskRef, u64)> + '_ {
        self.budgets.iter().map(|(&t, &b)| (t, b))
    }

    /// Iterator over `(buffer, capacity)` pairs.
    pub fn capacities(&self) -> impl Iterator<Item = (BufferRef, u64)> + '_ {
        self.capacities.iter().map(|(&b, &c)| (b, c))
    }

    /// The objective value reported by the solver (weighted sum of raw
    /// budgets and storage).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Interior-point (or cutting-plane LP) iterations used.
    pub fn solver_iterations(&self) -> usize {
        self.solver_iterations
    }

    /// The budget granularity the budgets are multiples of.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Sum of all budgets, in cycles.
    pub fn total_budget(&self) -> u64 {
        self.budgets.values().sum()
    }

    /// Sum of budgets allocated on one processor, in cycles.
    pub fn budget_on_processor(
        &self,
        configuration: &Configuration,
        processor: ProcessorId,
    ) -> u64 {
        self.budgets
            .iter()
            .filter(|(task, _)| {
                configuration
                    .task_graph(task.graph)
                    .task(task.task)
                    .processor()
                    == processor
            })
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total storage (capacity times container size) of the buffers placed
    /// in one memory.
    pub fn storage_in_memory(&self, configuration: &Configuration, memory: MemoryId) -> u64 {
        self.capacities
            .iter()
            .filter(|(buffer, _)| {
                configuration
                    .task_graph(buffer.graph)
                    .buffer(buffer.buffer)
                    .memory()
                    == memory
            })
            .map(|(buffer, &c)| {
                c * configuration
                    .task_graph(buffer.graph)
                    .buffer(buffer.buffer)
                    .container_size()
            })
            .sum()
    }

    /// Total storage over all memories.
    pub fn total_storage(&self, configuration: &Configuration) -> u64 {
        configuration
            .memories()
            .map(|(mid, _)| self.storage_in_memory(configuration, mid))
            .sum()
    }

    /// Looks up a budget by task name (first match across all graphs).
    pub fn budget_of_named(&self, configuration: &Configuration, name: &str) -> Option<u64> {
        bbs_taskgraph::find_task(configuration, name).map(|t| self.budget(t))
    }

    /// Looks up a capacity by buffer name (first match across all graphs).
    pub fn capacity_of_named(&self, configuration: &Configuration, name: &str) -> Option<u64> {
        bbs_taskgraph::find_buffer(configuration, name).map(|b| self.capacity(b))
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mapping (objective {:.4}, {} solver iterations):",
            self.objective, self.solver_iterations
        )?;
        for (task, budget) in &self.budgets {
            writeln!(
                f,
                "  task {task}: budget {budget} cycles (raw {:.3})",
                self.raw_budgets[task]
            )?;
        }
        for (buffer, capacity) in &self.capacities {
            writeln!(
                f,
                "  buffer {buffer}: capacity {capacity} containers (raw space {:.3})",
                self.raw_space[buffer]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use bbs_taskgraph::{find_buffer, find_task};

    fn sample_mapping() -> (Configuration, Mapping) {
        let c = producer_consumer(PaperParameters::default(), None);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut raw_budgets = BTreeMap::new();
        raw_budgets.insert(wa, 36.12);
        raw_budgets.insert(wb, 4.0 + 1e-9);
        let mut raw_space = BTreeMap::new();
        raw_space.insert(bab, 2.3);
        let m = Mapping::from_raw(&c, raw_budgets, raw_space, 40.12, 11);
        (c, m)
    }

    #[test]
    fn rounding_is_conservative_ceiling() {
        let (c, m) = sample_mapping();
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        assert_eq!(m.budget(wa), 37);
        // Values integral up to floating point noise are not bumped a step.
        assert_eq!(m.budget(wb), 4);
        assert_eq!(m.capacity(bab), 3);
        assert_eq!(m.raw_budget(wa), 36.12);
        assert_eq!(m.raw_space(bab), 2.3);
        assert_eq!(m.granularity(), 1);
    }

    #[test]
    fn rounding_respects_granularity() {
        let mut c = producer_consumer(PaperParameters::default(), None);
        c.set_budget_granularity(5);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let mut raw_budgets = BTreeMap::new();
        raw_budgets.insert(wa, 31.0);
        raw_budgets.insert(wb, 4.0);
        let m = Mapping::from_raw(&c, raw_budgets, BTreeMap::new(), 0.0, 0);
        assert_eq!(m.budget(wa), 35);
        assert_eq!(m.budget(wb), 5);
    }

    #[test]
    fn initial_tokens_are_added_to_capacity() {
        let c = {
            let mut builder = bbs_taskgraph::ConfigurationBuilder::new();
            builder.processor("p1", 40.0);
            builder.processor("p2", 40.0);
            builder.unbounded_memory("mem");
            let job = builder.task_graph("T", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 2, 3, 1.0, None);
            builder.build().unwrap()
        };
        let bab = find_buffer(&c, "bab").unwrap();
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let mut raw_budgets = BTreeMap::new();
        raw_budgets.insert(wa, 4.0);
        raw_budgets.insert(wb, 4.0);
        let mut raw_space = BTreeMap::new();
        raw_space.insert(bab, 1.5);
        let m = Mapping::from_raw(&c, raw_budgets, raw_space, 0.0, 0);
        assert_eq!(m.capacity(bab), 3 + 2);
        // Storage counts containers times container size (2 units each).
        assert_eq!(m.total_storage(&c), 10);
    }

    #[test]
    fn aggregates_per_resource() {
        let (c, m) = sample_mapping();
        assert_eq!(m.total_budget(), 37 + 4);
        let p1 = c.processors().next().unwrap().0;
        assert_eq!(m.budget_on_processor(&c, p1), 37);
        let mem = c.memories().next().unwrap().0;
        assert_eq!(m.storage_in_memory(&c, mem), 3);
        assert_eq!(m.total_storage(&c), 3);
        assert_eq!(m.budget_of_named(&c, "wa"), Some(37));
        assert_eq!(m.capacity_of_named(&c, "bab"), Some(3));
        assert_eq!(m.budget_of_named(&c, "ghost"), None);
    }

    #[test]
    fn display_and_iterators() {
        let (_, m) = sample_mapping();
        let text = m.to_string();
        assert!(text.contains("budget"));
        assert!(text.contains("capacity"));
        assert_eq!(m.budgets().count(), 2);
        assert_eq!(m.capacities().count(), 1);
        assert_eq!(m.solver_iterations(), 11);
        assert!((m.objective() - 40.12).abs() < 1e-12);
    }
}
