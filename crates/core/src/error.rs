//! Errors of the joint budget/buffer computation.

use bbs_conic::ConicError;
use bbs_taskgraph::{BufferRef, MemoryId, ModelError, ProcessorId, TaskGraphId};
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::compute_mapping`] and related entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The input configuration failed validation.
    Model(ModelError),
    /// The underlying conic solver failed numerically.
    Solver(ConicError),
    /// A processor cannot host its tasks even with the minimum budgets
    /// implied by the throughput requirements.
    ProcessorOverloaded {
        /// The overloaded processor.
        processor: ProcessorId,
        /// Minimum cycles needed per replenishment interval (budgets at
        /// their throughput-implied minima, plus granularity and overhead).
        required: f64,
        /// Cycles available per replenishment interval.
        available: f64,
    },
    /// A memory cannot hold even the minimum-size buffers placed in it.
    MemoryOverflow {
        /// The overflowing memory.
        memory: MemoryId,
        /// Minimum storage needed.
        required: u64,
        /// Storage available.
        available: u64,
    },
    /// A buffer's capacity cap is smaller than its number of initially
    /// filled containers, so no feasible capacity exists.
    CapBelowInitialTokens {
        /// The offending buffer.
        buffer: BufferRef,
        /// The configured cap.
        cap: u64,
        /// The number of initially filled containers.
        initial_tokens: u64,
    },
    /// The optimiser reported the constraint system infeasible: no budget
    /// and buffer assignment satisfies every throughput, processor-capacity,
    /// memory-capacity and buffer-cap constraint simultaneously.
    Infeasible {
        /// Termination status reported by the solver.
        detail: String,
    },
    /// The solver returned an answer, but the independently verified rounded
    /// mapping violates a constraint (this indicates a bug and is surfaced
    /// loudly instead of being papered over).
    VerificationFailed {
        /// The task graph whose throughput check failed, if any.
        graph: Option<TaskGraphId>,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Model(e) => write!(f, "invalid configuration: {e}"),
            MappingError::Solver(e) => write!(f, "conic solver failure: {e}"),
            MappingError::ProcessorOverloaded {
                processor,
                required,
                available,
            } => write!(
                f,
                "processor {processor} is overloaded: the throughput requirements already \
                 imply {required} cycles per replenishment interval but only {available} are available"
            ),
            MappingError::MemoryOverflow {
                memory,
                required,
                available,
            } => write!(
                f,
                "memory {memory} cannot hold the minimum-size buffers: needs {required}, has {available}"
            ),
            MappingError::CapBelowInitialTokens {
                buffer,
                cap,
                initial_tokens,
            } => write!(
                f,
                "buffer {buffer} is capped at {cap} containers but starts with {initial_tokens} filled containers"
            ),
            MappingError::Infeasible { detail } => {
                write!(f, "no feasible budget/buffer assignment exists: {detail}")
            }
            MappingError::VerificationFailed { graph, detail } => match graph {
                Some(g) => write!(f, "verification of the computed mapping failed for graph {g}: {detail}"),
                None => write!(f, "verification of the computed mapping failed: {detail}"),
            },
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MappingError::Model(e) => Some(e),
            MappingError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for MappingError {
    fn from(e: ModelError) -> Self {
        MappingError::Model(e)
    }
}

impl From<ConicError> for MappingError {
    fn from(e: ConicError) -> Self {
        MappingError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::BufferId;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<MappingError> = vec![
            MappingError::Model(ModelError::EmptyConfiguration),
            MappingError::Solver(ConicError::NonFiniteData),
            MappingError::ProcessorOverloaded {
                processor: ProcessorId::new(0),
                required: 50.0,
                available: 40.0,
            },
            MappingError::MemoryOverflow {
                memory: MemoryId::new(1),
                required: 100,
                available: 64,
            },
            MappingError::CapBelowInitialTokens {
                buffer: BufferRef::new(TaskGraphId::new(0), BufferId::new(0)),
                cap: 1,
                initial_tokens: 3,
            },
            MappingError::Infeasible {
                detail: "primal infeasible".into(),
            },
            MappingError::VerificationFailed {
                graph: Some(TaskGraphId::new(0)),
                detail: "period exceeded".into(),
            },
            MappingError::VerificationFailed {
                graph: None,
                detail: "memory".into(),
            },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_source() {
        let e: MappingError = ModelError::NoProcessors.into();
        assert!(matches!(e, MappingError::Model(_)));
        assert!(e.source().is_some());
        let e: MappingError = ConicError::Unbounded.into();
        assert!(matches!(e, MappingError::Solver(_)));
        let plain = MappingError::Infeasible { detail: "x".into() };
        assert!(plain.source().is_none());
    }
}
