//! Independent verification of a computed mapping.
//!
//! The optimisation argues conservativeness analytically (monotonicity of
//! SRDF graphs under the rounding of budgets and token counts); this module
//! *checks* it: the rounded mapping is plugged back into the dataflow model
//! and the existence of a periodic admissible schedule with the required
//! period is re-established with the independent Bellman–Ford analysis of
//! `bbs-srdf`, together with the processor- and memory-capacity constraints.

use crate::error::MappingError;
use crate::model::DataflowModel;
use crate::solution::Mapping;
use bbs_srdf::analysis::{maximum_cycle_ratio, periodic_schedule, CycleRatio};
use bbs_taskgraph::{Configuration, MemoryId, ProcessorId, TaskGraphId};
use std::collections::HashMap;

/// Per-graph outcome of the verification.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphVerification {
    /// The verified task graph.
    pub graph: TaskGraphId,
    /// Required period `µ(T)`.
    pub required_period: f64,
    /// Smallest period attainable with the mapped budgets and capacities
    /// (the maximum cycle ratio of the instantiated dataflow graph); `None`
    /// for acyclic models (unconstrained).
    pub attainable_period: Option<f64>,
}

impl GraphVerification {
    /// Throughput slack: required period minus attainable period (≥ 0 for a
    /// verified mapping). `None` when the model is acyclic.
    pub fn period_slack(&self) -> Option<f64> {
        self.attainable_period.map(|p| self.required_period - p)
    }
}

/// Per-processor outcome of the verification.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorVerification {
    /// The processor.
    pub processor: ProcessorId,
    /// Sum of allocated budgets plus scheduling overhead, in cycles.
    pub allocated: f64,
    /// Replenishment interval, in cycles.
    pub capacity: f64,
}

impl ProcessorVerification {
    /// Fraction of the replenishment interval that is allocated.
    pub fn utilisation(&self) -> f64 {
        self.allocated / self.capacity
    }
}

/// Per-memory outcome of the verification.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryVerification {
    /// The memory.
    pub memory: MemoryId,
    /// Storage used by the mapped buffers.
    pub used: u64,
    /// Storage capacity.
    pub capacity: u64,
}

/// The full verification report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerificationReport {
    /// Per-task-graph throughput verification.
    pub graphs: Vec<GraphVerification>,
    /// Per-processor capacity verification.
    pub processors: Vec<ProcessorVerification>,
    /// Per-memory capacity verification.
    pub memories: Vec<MemoryVerification>,
}

/// Verifies a mapping against a configuration.
///
/// # Errors
///
/// Returns [`MappingError::VerificationFailed`] describing the first
/// violated constraint, if any.
pub fn verify_mapping(
    configuration: &Configuration,
    mapping: &Mapping,
) -> Result<VerificationReport, MappingError> {
    let model = DataflowModel::build(configuration);
    let mut report = VerificationReport::default();

    // Throughput per task graph.
    for (gid, graph) in configuration.task_graphs() {
        let budgets: HashMap<_, _> = graph
            .tasks()
            .map(|(tid, _)| {
                (
                    tid,
                    mapping.budget(bbs_taskgraph::TaskRef::new(gid, tid)) as f64,
                )
            })
            .collect();
        let capacities: HashMap<_, _> = graph
            .buffers()
            .map(|(bid, _)| {
                (
                    bid,
                    mapping.capacity(bbs_taskgraph::BufferRef::new(gid, bid)),
                )
            })
            .collect();
        let srdf = model.instantiate(configuration, gid, &budgets, &capacities);
        if !periodic_schedule(&srdf, graph.period()).is_feasible() {
            return Err(MappingError::VerificationFailed {
                graph: Some(gid),
                detail: format!(
                    "no periodic admissible schedule with period {} exists for the rounded mapping",
                    graph.period()
                ),
            });
        }
        let attainable_period = match maximum_cycle_ratio(&srdf, 1e-6) {
            CycleRatio::Finite(v) => Some(v),
            CycleRatio::Acyclic => None,
            CycleRatio::Deadlocked => {
                return Err(MappingError::VerificationFailed {
                    graph: Some(gid),
                    detail: "the instantiated dataflow graph deadlocks".to_string(),
                })
            }
        };
        report.graphs.push(GraphVerification {
            graph: gid,
            required_period: graph.period(),
            attainable_period,
        });
    }

    // Processor capacities (Constraint 4 with the rounded budgets).
    for (pid, processor) in configuration.processors() {
        let allocated = mapping.budget_on_processor(configuration, pid) as f64
            + processor.scheduling_overhead();
        if allocated > processor.replenishment_interval() + 1e-9 {
            return Err(MappingError::VerificationFailed {
                graph: None,
                detail: format!(
                    "processor {pid} overallocated: {allocated} > {}",
                    processor.replenishment_interval()
                ),
            });
        }
        report.processors.push(ProcessorVerification {
            processor: pid,
            allocated,
            capacity: processor.replenishment_interval(),
        });
    }

    // Memory capacities (Constraint 10 with the rounded capacities).
    for (mid, memory) in configuration.memories() {
        let used = mapping.storage_in_memory(configuration, mid);
        if used > memory.capacity() {
            return Err(MappingError::VerificationFailed {
                graph: None,
                detail: format!("memory {mid} overflows: {used} > {}", memory.capacity()),
            });
        }
        report.memories.push(MemoryVerification {
            memory: mid,
            used,
            capacity: memory.capacity(),
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SolveOptions;
    use crate::solver::compute_mapping;
    use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};
    use bbs_taskgraph::{find_buffer, find_task, TaskRef};
    use std::collections::BTreeMap;

    fn budget_first() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn computed_mappings_verify_for_all_capacities() {
        for cap in 1..=10u64 {
            let c = producer_consumer(PaperParameters::default(), Some(cap));
            let m = compute_mapping(&c, &budget_first()).unwrap();
            let report = verify_mapping(&c, &m).unwrap();
            assert_eq!(report.graphs.len(), 1);
            let g = &report.graphs[0];
            // The attainable period is computed by bisection to 1e-6, so it
            // may overshoot the exact maximum cycle ratio by that much.
            assert!(g.period_slack().unwrap() >= -1e-5);
            assert!(g.attainable_period.unwrap() <= 10.0 + 1e-5);
            for p in &report.processors {
                assert!(p.utilisation() <= 1.0 + 1e-12);
            }
            for mem in &report.memories {
                assert!(mem.used <= mem.capacity);
            }
        }
    }

    #[test]
    fn chain_mapping_verifies() {
        let c = chain3(PaperParameters::default(), Some(4));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        let report = verify_mapping(&c, &m).unwrap();
        assert_eq!(report.processors.len(), 3);
        assert_eq!(report.memories.len(), 1);
    }

    #[test]
    fn hand_built_infeasible_mapping_is_rejected() {
        let c = producer_consumer(PaperParameters::default(), None);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        // Budget 4 with a single container cannot reach period 10
        // (cycle ratio (36 + 10 + 36 + 10) / 1 = 92 ≫ 10).
        let mut raw_budgets = BTreeMap::new();
        raw_budgets.insert(wa, 4.0);
        raw_budgets.insert(wb, 4.0);
        let mut raw_space = BTreeMap::new();
        raw_space.insert(bab, 1.0);
        let bogus = Mapping::from_raw(&c, raw_budgets, raw_space, 0.0, 0);
        let err = verify_mapping(&c, &bogus).unwrap_err();
        assert!(matches!(
            err,
            MappingError::VerificationFailed { graph: Some(_), .. }
        ));
    }

    #[test]
    fn overallocated_processor_is_rejected() {
        let c = producer_consumer(PaperParameters::default(), None);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut raw_budgets = BTreeMap::new();
        raw_budgets.insert(wa, 45.0); // exceeds the 40-cycle interval
        raw_budgets.insert(wb, 4.0);
        let mut raw_space = BTreeMap::new();
        raw_space.insert(bab, 10.0);
        let bogus = Mapping::from_raw(&c, raw_budgets, raw_space, 0.0, 0);
        // Instantiation itself guards against budgets above the interval, so
        // the verification reports a failure (either through the panic guard
        // being avoided here or the processor check); use capacities that
        // keep instantiation legal but the processor overallocated.
        let err = std::panic::catch_unwind(|| verify_mapping(&c, &bogus));
        assert!(err.is_err() || err.unwrap().is_err());
    }

    #[test]
    fn report_exposes_slack_and_utilisation() {
        let c = producer_consumer(PaperParameters::default(), Some(10));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        let report = verify_mapping(&c, &m).unwrap();
        let graph = &report.graphs[0];
        // With capacity 10 and budgets 4 the attainable period equals the
        // required 10 (up to the bisection tolerance of the analysis).
        assert!(graph.attainable_period.unwrap() < 10.0 + 1e-5);
        let p = &report.processors[0];
        assert!((p.utilisation() - 4.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn tasks_refs_in_mapping_match_configuration() {
        let c = producer_consumer(PaperParameters::default(), Some(2));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        for (task, _) in m.budgets() {
            // Round-trip through the configuration to make sure the refs are valid.
            let _ = c.task_graph(task.graph).task(task.task);
            assert_eq!(task, TaskRef::new(task.graph, task.task));
        }
    }
}
