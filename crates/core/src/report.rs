//! Human-readable and machine-readable reports.
//!
//! The benchmark harness uses these helpers to print the data series behind
//! every figure of the paper as aligned text tables and CSV, and to export
//! mappings with name-based keys for further processing.

use crate::explore::{budget_reduction_series, TradeoffPoint};
use crate::solution::Mapping;
use bbs_taskgraph::Configuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A serialisable view of a [`Mapping`] keyed by task and buffer names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingReport {
    /// Budget per task name, in cycles.
    pub budgets: BTreeMap<String, u64>,
    /// Capacity per buffer name, in containers.
    pub capacities: BTreeMap<String, u64>,
    /// Objective value reported by the solver.
    pub objective: f64,
    /// Solver iterations.
    pub solver_iterations: usize,
}

/// Builds the name-keyed report of a mapping.
pub fn mapping_report(configuration: &Configuration, mapping: &Mapping) -> MappingReport {
    let budgets = mapping
        .budgets()
        .map(|(task, budget)| {
            (
                configuration
                    .task_graph(task.graph)
                    .task(task.task)
                    .name()
                    .to_string(),
                budget,
            )
        })
        .collect();
    let capacities = mapping
        .capacities()
        .map(|(buffer, capacity)| {
            (
                configuration
                    .task_graph(buffer.graph)
                    .buffer(buffer.buffer)
                    .name()
                    .to_string(),
                capacity,
            )
        })
        .collect();
    MappingReport {
        budgets,
        capacities,
        objective: mapping.objective(),
        solver_iterations: mapping.solver_iterations(),
    }
}

/// Formats a table with aligned columns. The first row is the header.
///
/// # Panics
///
/// Panics if the rows do not all have the same number of columns as the
/// header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    for row in rows {
        assert_eq!(row.len(), columns, "table rows must match the header width");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&mut out, &separator);
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Renders a capacity sweep as a comma-separated-values string with one row
/// per capacity and one column per task budget (plus the totals).
pub fn sweep_to_csv(configuration: &Configuration, points: &[TradeoffPoint]) -> String {
    let mut task_names: Vec<String> = configuration
        .all_tasks()
        .into_iter()
        .map(|t| {
            configuration
                .task_graph(t.graph)
                .task(t.task)
                .name()
                .to_string()
        })
        .collect();
    task_names.sort();
    let mut out = String::from("capacity");
    for name in &task_names {
        let _ = write!(out, ",budget_{name}");
    }
    out.push_str(",total_budget,total_storage,solve_time_us\n");
    for point in points {
        let _ = write!(out, "{}", point.capacity_cap);
        for name in &task_names {
            let _ = write!(
                out,
                ",{}",
                point
                    .mapping
                    .budget_of_named(configuration, name)
                    .expect("task name from the same configuration")
            );
        }
        let _ = writeln!(
            out,
            ",{},{},{}",
            point.total_budget(),
            point.mapping.total_storage(configuration),
            point.solve_time.as_micros()
        );
    }
    out
}

/// Renders the Figure 2(a)-style table: one row per capacity with the
/// (common) per-task budget and the totals.
pub fn tradeoff_table(configuration: &Configuration, points: &[TradeoffPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let per_task: Vec<String> = p
                .mapping
                .budgets()
                .map(|(_, budget)| budget.to_string())
                .collect();
            vec![
                p.capacity_cap.to_string(),
                per_task.join("/"),
                p.total_budget().to_string(),
                p.mapping.total_storage(configuration).to_string(),
                format!("{:.2}", p.solve_time.as_secs_f64() * 1e3),
            ]
        })
        .collect();
    format_table(
        &[
            "capacity (containers)",
            "budgets (cycles)",
            "total budget",
            "total storage",
            "solve time (ms)",
        ],
        &rows,
    )
}

/// Renders the Figure 2(b)-style table: the per-container budget reduction.
pub fn derivative_table(points: &[TradeoffPoint]) -> String {
    let deltas = budget_reduction_series(points);
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| {
            vec![
                format!("{}", points[i + 1].capacity_cap),
                format!("{:.1}", d),
            ]
        })
        .collect();
    format_table(&["capacity (containers)", "delta budget (cycles)"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::sweep_buffer_capacity;
    use crate::options::SolveOptions;
    use crate::solver::compute_mapping;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};

    fn sample() -> (Configuration, Vec<TradeoffPoint>) {
        let c = producer_consumer(PaperParameters::default(), None);
        let points = sweep_buffer_capacity(
            &c,
            [1u64, 5, 10],
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        (c, points)
    }

    #[test]
    fn mapping_report_uses_names_and_serialises() {
        let c = producer_consumer(PaperParameters::default(), Some(10));
        let m = compute_mapping(&c, &SolveOptions::default().prefer_budget_minimisation()).unwrap();
        let report = mapping_report(&c, &m);
        assert_eq!(report.budgets.get("wa"), Some(&4));
        assert_eq!(report.capacities.get("bab"), Some(&10));
        let json = serde_json::to_string(&report).unwrap();
        let back: MappingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn format_table_aligns_columns() {
        let table = format_table(
            &["a", "long header"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["100".to_string(), "x".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    #[should_panic(expected = "match the header width")]
    fn format_table_rejects_ragged_rows() {
        let _ = format_table(&["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let (c, points) = sample();
        let csv = sweep_to_csv(&c, &points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + points.len());
        assert!(lines[0].starts_with("capacity,budget_wa,budget_wb"));
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn tables_render_every_point() {
        let (c, points) = sample();
        let t = tradeoff_table(&c, &points);
        assert_eq!(t.lines().count(), 2 + points.len());
        let d = derivative_table(&points);
        assert_eq!(d.lines().count(), 2 + points.len() - 1);
    }
}
