//! The two-phase baseline: budgets first, buffer sizes second.
//!
//! Existing mapping flows (the paper cites Moreira et al. and Stuijk et al.)
//! determine scheduler settings and buffer capacities in *separate* phases.
//! This module implements that baseline so the benchmarks can quantify what
//! the joint formulation buys:
//!
//! 1. **Budget phase** — budgets are fixed without looking at buffer sizes,
//!    either at the throughput-implied minimum (`̺·χ/µ`, rounded up to the
//!    granularity) or at an equal share of the processor capacity.
//! 2. **Buffer phase** — with budgets fixed, the PAS constraints become
//!    linear in the token counts; a plain LP minimises the weighted storage.
//!
//! The baseline can fail (a *false negative*) where the joint formulation
//! succeeds: with budgets fixed too small, no finite buffer capacity meets
//! the throughput requirement once capacities are capped, and with budgets
//! fixed too large, processors that host several tasks run out of capacity.

use crate::error::MappingError;
use crate::model::{DataflowModel, QueueRole, TokenCount};
use crate::options::SolveOptions;
use crate::solution::Mapping;
use crate::verify::verify_mapping;
use bbs_conic::{LinExpr, ModelBuilder, SolveStatus, VarId};
use bbs_taskgraph::{BufferRef, Configuration, TaskRef};
use std::collections::BTreeMap;

/// How the budget phase fixes the budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BudgetPolicy {
    /// The minimum budget that satisfies the task's own throughput-implied
    /// bound `β ≥ ̺·χ/µ`, rounded up to the granularity. Cheapest in
    /// processor capacity, most demanding in buffer space.
    #[default]
    ThroughputMinimum,
    /// An equal share of the processor's allocatable capacity among the
    /// tasks bound to it (capped below by the throughput minimum). Cheaper
    /// in buffer space, wasteful in processor capacity.
    FairShare,
}

/// Result of the two-phase baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPhaseOutcome {
    /// The mapping found by the baseline.
    pub mapping: Mapping,
    /// The policy used in the budget phase.
    pub policy: BudgetPolicy,
}

/// Runs the two-phase baseline.
///
/// # Errors
///
/// Returns the same error kinds as [`crate::compute_mapping`]; in
/// particular [`MappingError::Infeasible`] when the second phase cannot find
/// buffer capacities for the budgets fixed in the first phase — the *false
/// negative* situation that motivates the paper.
pub fn compute_mapping_two_phase(
    configuration: &Configuration,
    policy: BudgetPolicy,
    options: &SolveOptions,
) -> Result<TwoPhaseOutcome, MappingError> {
    configuration.validate()?;
    let model = DataflowModel::build(configuration);

    // --- Phase 1: fix budgets --------------------------------------------
    let budgets = fixed_budgets(configuration, policy)?;

    // --- Phase 2: buffer sizing LP with budgets fixed ---------------------
    let mut builder = ModelBuilder::new();
    let mut space_vars: BTreeMap<BufferRef, VarId> = BTreeMap::new();
    for buffer_ref in configuration.all_buffers() {
        let buffer = configuration
            .task_graph(buffer_ref.graph)
            .buffer(buffer_ref.buffer);
        let delta = builder.add_var_with_cost(
            format!("delta[{buffer_ref}]"),
            options.storage_weight_scale * buffer.storage_weight() * buffer.container_size() as f64,
        );
        builder.bound_lower(delta, 0.0);
        if let Some(cap) = buffer.max_capacity() {
            if cap < buffer.initial_tokens() {
                return Err(MappingError::CapBelowInitialTokens {
                    buffer: buffer_ref,
                    cap,
                    initial_tokens: buffer.initial_tokens(),
                });
            }
            builder.bound_upper(delta, (cap - buffer.initial_tokens()) as f64);
        }
        space_vars.insert(buffer_ref, delta);
    }

    // Start-time variables, one pinned per weakly connected component.
    let mut start_vars: BTreeMap<(usize, usize), Option<VarId>> = BTreeMap::new();
    for (graph_index, graph_model) in model.graphs().iter().enumerate() {
        for component in graph_model.weakly_connected_components() {
            for (position, &actor) in component.iter().enumerate() {
                let var = if position == 0 {
                    None
                } else {
                    Some(builder.add_var(format!(
                        "start[{}:{}]",
                        graph_model.graph_id, graph_model.actors[actor].name
                    )))
                };
                start_vars.insert((graph_index, actor), var);
            }
        }
    }

    // PAS constraints with budgets substituted as constants.
    for (graph_index, graph_model) in model.graphs().iter().enumerate() {
        let graph = configuration.task_graph(graph_model.graph_id);
        for queue in &graph_model.queues {
            let source_task = graph_model.actors[queue.source].role.task();
            let task_ref = TaskRef::new(graph_model.graph_id, source_task);
            let task = graph.task(source_task);
            let processor = configuration.processor(task.processor());
            let replenishment = processor.replenishment_interval();
            let beta = budgets[&task_ref];

            let mut expr = LinExpr::new();
            if let Some(var) = start_vars[&(graph_index, queue.target)] {
                expr = expr.plus(1.0, var);
            }
            if let Some(var) = start_vars[&(graph_index, queue.source)] {
                expr = expr.plus(-1.0, var);
            }
            match queue.role {
                QueueRole::IntraTask(_) => {
                    // s(v2) − s(v1) ≥ ̺ − β.
                    builder.add_ge(expr, replenishment - beta);
                }
                QueueRole::ExecutionSelfLoop(_) | QueueRole::Data(_) | QueueRole::Space(_) => {
                    let execution = replenishment * task.wcet() / beta;
                    let rhs = match queue.tokens {
                        TokenCount::Fixed(t) => execution - t as f64 * graph_model.period,
                        TokenCount::BufferSpace(bid) => {
                            let buffer_ref = BufferRef::new(graph_model.graph_id, bid);
                            expr = expr.plus(graph_model.period, space_vars[&buffer_ref]);
                            execution
                        }
                    };
                    builder.add_ge(expr, rhs);
                }
            }
        }
    }

    // Memory capacity constraints.
    for (mid, memory) in configuration.memories() {
        let buffers = configuration.buffers_in_memory(mid);
        if buffers.is_empty() || memory.is_unbounded() {
            continue;
        }
        let mut expr = LinExpr::new();
        let mut fixed = 0.0;
        for buffer_ref in &buffers {
            let buffer = configuration
                .task_graph(buffer_ref.graph)
                .buffer(buffer_ref.buffer);
            expr = expr.plus(buffer.container_size() as f64, space_vars[buffer_ref]);
            fixed += (buffer.initial_tokens() as f64 + 1.0) * buffer.container_size() as f64;
        }
        builder.add_le(expr, memory.capacity() as f64 - fixed);
    }

    let lp = builder.build()?;
    let solution = lp.solve(&options.ipm)?;
    if solution.status() != SolveStatus::Optimal {
        return Err(MappingError::Infeasible {
            detail: format!(
                "buffer-sizing phase failed with fixed budgets ({}): {}",
                policy_name(policy),
                solution.status()
            ),
        });
    }

    let raw_space: BTreeMap<_, _> = space_vars
        .iter()
        .map(|(&b, &v)| (b, solution.value(v)))
        .collect();
    let iterations = solution.iterations();
    let mapping = Mapping::from_raw(
        configuration,
        budgets,
        raw_space,
        solution.objective(),
        iterations,
    );
    if options.verify {
        verify_mapping(configuration, &mapping)?;
    }
    Ok(TwoPhaseOutcome { mapping, policy })
}

/// Phase 1: fixed budgets according to the policy.
fn fixed_budgets(
    configuration: &Configuration,
    policy: BudgetPolicy,
) -> Result<BTreeMap<TaskRef, f64>, MappingError> {
    let granularity = configuration.budget_granularity() as f64;
    let mut budgets = BTreeMap::new();
    for (pid, processor) in configuration.processors() {
        let tasks = configuration.tasks_on_processor(pid);
        if tasks.is_empty() {
            continue;
        }
        let share = (processor.allocatable_capacity() - granularity * tasks.len() as f64)
            / tasks.len() as f64;
        for task_ref in tasks {
            let graph = configuration.task_graph(task_ref.graph);
            let task = graph.task(task_ref.task);
            let minimum = processor.replenishment_interval() * task.wcet() / graph.period();
            let minimum = granularity * (minimum / granularity).ceil();
            let budget = match policy {
                BudgetPolicy::ThroughputMinimum => minimum,
                BudgetPolicy::FairShare => {
                    let fair = granularity * (share / granularity).floor();
                    fair.max(minimum)
                }
            };
            budgets.insert(task_ref, budget);
        }
    }
    // Check the fixed budgets fit their processors.
    for (pid, processor) in configuration.processors() {
        let allocated: f64 = configuration
            .tasks_on_processor(pid)
            .iter()
            .map(|t| budgets[t])
            .sum::<f64>()
            + processor.scheduling_overhead();
        if allocated > processor.replenishment_interval() + 1e-9 {
            return Err(MappingError::ProcessorOverloaded {
                processor: pid,
                required: allocated,
                available: processor.replenishment_interval(),
            });
        }
    }
    Ok(budgets)
}

fn policy_name(policy: BudgetPolicy) -> &'static str {
    match policy {
        BudgetPolicy::ThroughputMinimum => "throughput-minimum budgets",
        BudgetPolicy::FairShare => "fair-share budgets",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::compute_mapping;
    use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};

    fn options() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn minimum_budget_policy_buys_the_largest_buffers() {
        let c = producer_consumer(PaperParameters::default(), None);
        let outcome =
            compute_mapping_two_phase(&c, BudgetPolicy::ThroughputMinimum, &options()).unwrap();
        // Budgets are pinned at the floor of 4 cycles, which requires the
        // full 10 containers — same as the joint solution when budgets are
        // prioritised.
        assert_eq!(outcome.mapping.budget_of_named(&c, "wa"), Some(4));
        assert_eq!(outcome.mapping.capacity_of_named(&c, "bab"), Some(10));
        assert_eq!(outcome.policy, BudgetPolicy::ThroughputMinimum);
    }

    #[test]
    fn fair_share_policy_wastes_processor_but_needs_small_buffers() {
        let c = producer_consumer(PaperParameters::default(), None);
        let outcome = compute_mapping_two_phase(&c, BudgetPolicy::FairShare, &options()).unwrap();
        // A single task per 40-cycle processor gets (40 − 1) → 39 cycles.
        assert!(outcome.mapping.budget_of_named(&c, "wa").unwrap() >= 30);
        assert!(outcome.mapping.capacity_of_named(&c, "bab").unwrap() <= 2);
    }

    #[test]
    fn false_negative_demonstrated_with_capped_buffer() {
        // Cap the buffer at 3 containers. Jointly, budgets ≈ 16 make it work;
        // with budgets fixed at the throughput minimum of 4, no capacity ≤ 3
        // reaches the period, so the two-phase flow reports infeasibility.
        let c = producer_consumer(PaperParameters::default(), Some(3));
        let joint = compute_mapping(&c, &options()).unwrap();
        assert!(joint.budget_of_named(&c, "wa").unwrap() > 4);
        let baseline = compute_mapping_two_phase(&c, BudgetPolicy::ThroughputMinimum, &options());
        assert!(
            matches!(baseline, Err(MappingError::Infeasible { .. })),
            "expected the two-phase baseline to fail, got {baseline:?}"
        );
    }

    #[test]
    fn minimum_budget_baseline_fails_when_jobs_share_processors() {
        // Three producer/consumer jobs share two processors and every buffer
        // is capped at 7 containers. Jointly, budgets of ≈13 cycles per task
        // fit (3·13 ≤ 40) and 7 containers suffice. With budgets fixed at the
        // throughput minimum of 4 cycles, each buffer would need 10
        // containers — more than the cap — so the baseline reports a false
        // negative.
        let mut builder = bbs_taskgraph::ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        for name in ["T1", "T2", "T3"] {
            let job = builder.task_graph(name, 10.0);
            job.task(&format!("{name}a"), 1.0, "p1");
            job.task(&format!("{name}b"), 1.0, "p2");
            job.buffer_detailed(
                &format!("{name}buf"),
                &format!("{name}a"),
                &format!("{name}b"),
                "mem",
                1,
                0,
                1.0,
                Some(7),
            );
        }
        let c = builder.build().unwrap();
        // The joint formulation balances budgets and the capped buffers.
        let joint = compute_mapping(&c, &options());
        assert!(joint.is_ok(), "joint mapping should exist: {joint:?}");
        let joint = joint.unwrap();
        for (pid, _) in c.processors() {
            assert!(joint.budget_on_processor(&c, pid) <= 40);
        }
        // The minimum-budget baseline under-provisions budgets (4 each) and
        // then cannot satisfy the throughput with only 7 containers.
        let baseline = compute_mapping_two_phase(&c, BudgetPolicy::ThroughputMinimum, &options());
        assert!(matches!(baseline, Err(MappingError::Infeasible { .. })));
    }

    #[test]
    fn joint_never_costs_more_storage_than_minimum_budget_baseline() {
        for cap in [4u64, 6, 8, 10] {
            let c = producer_consumer(PaperParameters::default(), Some(cap));
            let joint = compute_mapping(&c, &options()).unwrap();
            if let Ok(baseline) =
                compute_mapping_two_phase(&c, BudgetPolicy::ThroughputMinimum, &options())
            {
                // Joint optimises budgets first (same priority as baseline's
                // budget phase) so its budget total is never larger.
                assert!(joint.total_budget() <= baseline.mapping.total_budget());
            }
        }
    }

    #[test]
    fn chain_two_phase_verifies_when_feasible() {
        let c = chain3(PaperParameters::default(), None);
        let outcome =
            compute_mapping_two_phase(&c, BudgetPolicy::ThroughputMinimum, &options()).unwrap();
        let report = verify_mapping(&c, &outcome.mapping).unwrap();
        assert_eq!(report.graphs.len(), 1);
    }
}
