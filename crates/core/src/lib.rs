//! Simultaneous budget and buffer size computation for
//! throughput-constrained task graphs.
//!
//! This crate reproduces the method of Wiggers, Bekooij, Geilen and Basten,
//! *"Simultaneous Budget and Buffer Size Computation for
//! Throughput-Constrained Task Graphs"* (DATE 2010): streaming jobs are task
//! graphs whose tasks run under budget (TDM) schedulers and communicate over
//! bounded FIFO buffers; both the per-task budgets and the per-buffer
//! capacities are computed *in one shot* by a second-order cone program so
//! that every job meets its throughput requirement, instead of the
//! traditional two-phase flow that fixes one before the other.
//!
//! # Quick start
//!
//! ```
//! use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
//! use budget_buffer::{compute_mapping, SolveOptions};
//!
//! # fn main() -> Result<(), budget_buffer::MappingError> {
//! // The paper's producer/consumer job: two tasks on two 40 Mcycle TDM
//! // processors, one FIFO buffer, a 10 Mcycle period, buffer capped at 4.
//! let configuration = producer_consumer(PaperParameters::default(), Some(4));
//! let mapping = compute_mapping(
//!     &configuration,
//!     &SolveOptions::default().prefer_budget_minimisation(),
//! )?;
//! // Each task receives a budget (a multiple of the granularity) and the
//! // buffer receives a capacity, all verified against the throughput
//! // requirement by an independent dataflow analysis.
//! assert!(mapping.budget_of_named(&configuration, "wa").unwrap() >= 4);
//! assert!(mapping.capacity_of_named(&configuration, "bab").unwrap() <= 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate layout
//!
//! * [`model`] — the budget-scheduler dataflow model (Section II-C);
//! * [`formulation`] — Algorithm 1, the SOCP;
//! * [`compute_mapping`] — the main entry point (solve + conservative
//!   rounding + verification), with [`compute_mapping_view`] as the
//!   clone-free variant for copy-on-write sweep views;
//! * [`two_phase`] — the separate-phases baseline the paper argues against;
//! * [`explore`] — capacity sweeps behind Figures 2 and 3;
//! * [`verify`] — independent re-verification of any mapping;
//! * [`report`] — text/CSV/serialisable reporting used by the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod explore;
pub mod formulation;
pub mod model;
mod options;
pub mod report;
mod solution;
mod solver;
pub mod two_phase;
pub mod verify;

pub use error::MappingError;
pub use explore::{sweep_buffer_capacity, with_capacity_cap, TradeoffPoint};
pub use options::{SolveOptions, SolverKind};
pub use report::{mapping_report, MappingReport};
pub use solution::Mapping;
pub use solver::{compute_mapping, compute_mapping_view};
pub use two_phase::{compute_mapping_two_phase, BudgetPolicy, TwoPhaseOutcome};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mapping>();
        assert_send_sync::<MappingError>();
        assert_send_sync::<SolveOptions>();
        assert_send_sync::<model::DataflowModel>();
        assert_send_sync::<verify::VerificationReport>();
    }

    #[test]
    fn quickstart_example_runs() {
        let configuration = bbs_taskgraph::presets::producer_consumer(
            bbs_taskgraph::presets::PaperParameters::default(),
            Some(4),
        );
        let mapping = compute_mapping(
            &configuration,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        assert!(mapping.budget_of_named(&configuration, "wa").unwrap() >= 4);
    }
}
