//! Construction of the budget-scheduler dataflow model (Section II-C of the
//! paper).
//!
//! Every task `w` bound to processor `p` becomes a two-actor component:
//!
//! * a *budget-wait* actor `v1` with firing duration `̺(p) − β(w)`
//!   (the worst-case wait before the task's budget is replenished), and
//! * an *execution* actor `v2` with firing duration `̺(p)·χ(w)/β(w)`
//!   (the execution of `χ(w)` cycles of work spread over TDM slots of
//!   `β(w)` cycles each),
//!
//! connected by a token-free queue `v1 → v2` and with a one-token self-loop
//! on `v2` serialising consecutive firings. Every FIFO buffer becomes a pair
//! of opposite queues between the components of its producer and consumer:
//! the *data* queue (initial tokens = initially filled containers `ι(b)`)
//! and the *space* queue (initial tokens = initially empty containers
//! `γ(b) − ι(b)`).
//!
//! Because the budgets `β` and capacities `γ` are the unknowns of the
//! optimisation, the model is kept *symbolic*: actors know which task they
//! belong to and queues know whether their token count is a constant or the
//! variable free space of a buffer. [`DataflowModel::instantiate`] plugs in
//! concrete values and produces an ordinary [`SrdfGraph`] for verification
//! and simulation.

use bbs_srdf::{Actor, Queue, SrdfGraph};
use bbs_taskgraph::{BufferId, ConfigView, Configuration, TaskGraphId, TaskId};
use std::collections::HashMap;

/// Role of an actor in the two-actor task component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorRole {
    /// First actor `v1`: waits for the budget, duration `̺(p) − β(w)`.
    BudgetWait(TaskId),
    /// Second actor `v2`: executes, duration `̺(p)·χ(w)/β(w)`.
    Execution(TaskId),
}

impl ActorRole {
    /// The task this actor models.
    pub fn task(&self) -> TaskId {
        match *self {
            ActorRole::BudgetWait(t) | ActorRole::Execution(t) => t,
        }
    }
}

/// Token count of a model queue: either a constant or the optimisation
/// variable "free space of buffer `b`" (`γ(b) − ι(b)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenCount {
    /// A fixed number of initial tokens.
    Fixed(u64),
    /// The initially empty containers of the given buffer — an optimisation
    /// variable.
    BufferSpace(BufferId),
}

/// Structural role of a model queue; determines which PAS constraint class
/// (E1 or E2 of the paper) it instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueRole {
    /// The token-free queue `v1 → v2` inside a task component (class E1).
    IntraTask(TaskId),
    /// The one-token self-loop on the execution actor (class E2).
    ExecutionSelfLoop(TaskId),
    /// The data queue of a buffer, producer `v2` → consumer `v1` (class E2).
    Data(BufferId),
    /// The space queue of a buffer, consumer `v2` → producer `v1`
    /// (class E2, variable tokens).
    Space(BufferId),
}

/// A symbolic actor of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelActor {
    /// Role (which task, wait or execution).
    pub role: ActorRole,
    /// Name carried over into instantiated graphs, e.g. `"wa.v2"`.
    pub name: String,
}

/// A symbolic queue of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelQueue {
    /// Index of the source actor within the owning [`GraphModel`].
    pub source: usize,
    /// Index of the target actor within the owning [`GraphModel`].
    pub target: usize,
    /// Token count (constant or buffer-space variable).
    pub tokens: TokenCount,
    /// Structural role of the queue.
    pub role: QueueRole,
}

impl ModelQueue {
    /// Returns `true` for queues in the paper's class `E1` (output queues of
    /// `v1` actors, always token-free by construction).
    pub fn is_class_e1(&self) -> bool {
        matches!(self.role, QueueRole::IntraTask(_))
    }
}

/// The dataflow model of one task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphModel {
    /// The task graph this model was derived from.
    pub graph_id: TaskGraphId,
    /// Throughput period `µ(T)` of the task graph.
    pub period: f64,
    /// Actors, indexed densely from 0.
    pub actors: Vec<ModelActor>,
    /// Queues between the actors.
    pub queues: Vec<ModelQueue>,
    /// For every task of the graph: the indices of its `(v1, v2)` actors.
    pub task_actors: Vec<(usize, usize)>,
}

impl GraphModel {
    /// Indices of the `(v1, v2)` actors of a task.
    pub fn actors_of_task(&self, task: TaskId) -> (usize, usize) {
        self.task_actors[task.index()]
    }

    /// Weakly-connected components of the model graph (actor indices).
    /// The mapping formulation pins one start-time per component to zero to
    /// remove the translational degeneracy of the PAS constraints.
    pub fn weakly_connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.actors.len();
        let mut component = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            component[start] = count;
            while let Some(v) = stack.pop() {
                for q in &self.queues {
                    for (a, b) in [(q.source, q.target), (q.target, q.source)] {
                        if a == v && component[b] == usize::MAX {
                            component[b] = count;
                            stack.push(b);
                        }
                    }
                }
            }
            count += 1;
        }
        let mut out = vec![Vec::new(); count];
        for (actor, &c) in component.iter().enumerate() {
            out[c].push(actor);
        }
        out
    }
}

/// The dataflow models of every task graph in a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowModel {
    graphs: Vec<GraphModel>,
}

impl DataflowModel {
    /// Builds the symbolic dataflow model for a configuration.
    ///
    /// The configuration is assumed to be structurally valid (see
    /// [`Configuration::validate`]); the higher-level entry points validate
    /// before calling this.
    pub fn build(configuration: &Configuration) -> Self {
        Self::build_from(configuration)
    }

    /// Builds the symbolic dataflow model for a copy-on-write
    /// [`ConfigView`]. The model depends only on graph structure — never on
    /// capacity caps, which enter the formulation as variable bounds — so
    /// the shared base is read directly and nothing is materialised.
    pub fn build_view(view: &ConfigView) -> Self {
        Self::build_from(view.base())
    }

    /// Shared body of the two build entry points.
    fn build_from(configuration: &Configuration) -> Self {
        let mut graphs = Vec::new();
        for (gid, graph) in configuration.task_graphs() {
            let mut actors = Vec::new();
            let mut queues = Vec::new();
            let mut task_actors = Vec::new();
            for (tid, task) in graph.tasks() {
                let v1 = actors.len();
                actors.push(ModelActor {
                    role: ActorRole::BudgetWait(tid),
                    name: format!("{}.v1", task.name()),
                });
                let v2 = actors.len();
                actors.push(ModelActor {
                    role: ActorRole::Execution(tid),
                    name: format!("{}.v2", task.name()),
                });
                task_actors.push((v1, v2));
                // E1 queue v1 -> v2 with zero tokens.
                queues.push(ModelQueue {
                    source: v1,
                    target: v2,
                    tokens: TokenCount::Fixed(0),
                    role: QueueRole::IntraTask(tid),
                });
                // One-token self-loop on the execution actor.
                queues.push(ModelQueue {
                    source: v2,
                    target: v2,
                    tokens: TokenCount::Fixed(1),
                    role: QueueRole::ExecutionSelfLoop(tid),
                });
            }
            for (bid, buffer) in graph.buffers() {
                let (_, producer_v2) = task_actors[buffer.producer().index()];
                let (consumer_v1, consumer_v2) = task_actors[buffer.consumer().index()];
                let (producer_v1, _) = task_actors[buffer.producer().index()];
                // Data queue: producer v2 -> consumer v1, ι(b) tokens.
                queues.push(ModelQueue {
                    source: producer_v2,
                    target: consumer_v1,
                    tokens: TokenCount::Fixed(buffer.initial_tokens()),
                    role: QueueRole::Data(bid),
                });
                // Space queue: consumer v2 -> producer v1, γ(b) − ι(b) tokens.
                queues.push(ModelQueue {
                    source: consumer_v2,
                    target: producer_v1,
                    tokens: TokenCount::BufferSpace(bid),
                    role: QueueRole::Space(bid),
                });
            }
            graphs.push(GraphModel {
                graph_id: gid,
                period: graph.period(),
                actors,
                queues,
                task_actors,
            });
        }
        Self { graphs }
    }

    /// The per-graph models.
    pub fn graphs(&self) -> &[GraphModel] {
        &self.graphs
    }

    /// The model of a specific task graph.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn graph(&self, id: TaskGraphId) -> &GraphModel {
        &self.graphs[id.index()]
    }

    /// Instantiates the model of one task graph into a concrete SRDF graph,
    /// given concrete budgets (cycles) and buffer capacities (containers).
    ///
    /// Firing durations follow the paper exactly:
    /// `ρ(v1) = ̺(π(w)) − β(w)` and `ρ(v2) = ̺(π(w))·χ(w)/β(w)`.
    ///
    /// # Panics
    ///
    /// Panics if a budget or capacity is missing, if a budget is zero or
    /// exceeds its processor's replenishment interval, or if a capacity is
    /// smaller than the buffer's initially filled containers.
    pub fn instantiate(
        &self,
        configuration: &Configuration,
        graph_id: TaskGraphId,
        budgets: &HashMap<TaskId, f64>,
        capacities: &HashMap<BufferId, u64>,
    ) -> SrdfGraph {
        let model = self.graph(graph_id);
        let graph = configuration.task_graph(graph_id);
        let mut srdf = SrdfGraph::new();
        let mut actor_ids = Vec::with_capacity(model.actors.len());
        for actor in &model.actors {
            let task = graph.task(actor.role.task());
            let processor = configuration.processor(task.processor());
            let replenishment = processor.replenishment_interval();
            let budget = *budgets
                .get(&actor.role.task())
                .unwrap_or_else(|| panic!("missing budget for task {}", task.name()));
            assert!(
                budget > 0.0 && budget <= replenishment,
                "budget {budget} for task {} must be in (0, {replenishment}]",
                task.name()
            );
            let duration = match actor.role {
                ActorRole::BudgetWait(_) => replenishment - budget,
                ActorRole::Execution(_) => replenishment * task.wcet() / budget,
            };
            actor_ids.push(srdf.add_actor(Actor::new(actor.name.clone(), duration)));
        }
        for queue in &model.queues {
            let tokens = match queue.tokens {
                TokenCount::Fixed(t) => t,
                TokenCount::BufferSpace(bid) => {
                    let buffer = graph.buffer(bid);
                    let capacity = *capacities
                        .get(&bid)
                        .unwrap_or_else(|| panic!("missing capacity for buffer {}", buffer.name()));
                    assert!(
                        capacity >= buffer.initial_tokens(),
                        "capacity {capacity} of buffer {} is below its {} initial tokens",
                        buffer.name(),
                        buffer.initial_tokens()
                    );
                    capacity - buffer.initial_tokens()
                }
            };
            srdf.add_queue(Queue::new(
                actor_ids[queue.source],
                actor_ids[queue.target],
                tokens,
            ));
        }
        srdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_srdf::analysis::{maximum_cycle_ratio, CycleRatio};
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use bbs_taskgraph::{find_buffer, find_task};

    fn model_and_config() -> (DataflowModel, Configuration) {
        let c = producer_consumer(PaperParameters::default(), None);
        let m = DataflowModel::build(&c);
        (m, c)
    }

    #[test]
    fn two_actors_per_task_and_two_queues_per_buffer() {
        let (m, c) = model_and_config();
        let gm = &m.graphs()[0];
        assert_eq!(gm.actors.len(), 2 * c.task_graph(gm.graph_id).num_tasks());
        // Per task: 1 intra queue + 1 self-loop; per buffer: data + space.
        assert_eq!(
            gm.queues.len(),
            2 * c.task_graph(gm.graph_id).num_tasks() + 2 * c.task_graph(gm.graph_id).num_buffers()
        );
        assert_eq!(gm.period, 10.0);
    }

    #[test]
    fn queue_classes_follow_the_paper() {
        let (m, _) = model_and_config();
        let gm = &m.graphs()[0];
        let e1: Vec<_> = gm.queues.iter().filter(|q| q.is_class_e1()).collect();
        assert_eq!(e1.len(), 2, "one E1 queue per task");
        for q in e1 {
            assert_eq!(q.tokens, TokenCount::Fixed(0), "E1 queues are token-free");
        }
        let self_loops: Vec<_> = gm
            .queues
            .iter()
            .filter(|q| matches!(q.role, QueueRole::ExecutionSelfLoop(_)))
            .collect();
        for q in self_loops {
            assert_eq!(q.source, q.target);
            assert_eq!(q.tokens, TokenCount::Fixed(1));
        }
        let space: Vec<_> = gm
            .queues
            .iter()
            .filter(|q| matches!(q.role, QueueRole::Space(_)))
            .collect();
        assert_eq!(space.len(), 1);
        assert!(matches!(space[0].tokens, TokenCount::BufferSpace(_)));
    }

    #[test]
    fn buffer_queues_connect_the_right_actors() {
        let (m, c) = model_and_config();
        let gm = &m.graphs()[0];
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let (a1, a2) = gm.actors_of_task(wa.task);
        let (b1, b2) = gm.actors_of_task(wb.task);
        let data = gm
            .queues
            .iter()
            .find(|q| matches!(q.role, QueueRole::Data(_)))
            .unwrap();
        assert_eq!((data.source, data.target), (a2, b1));
        let space = gm
            .queues
            .iter()
            .find(|q| matches!(q.role, QueueRole::Space(_)))
            .unwrap();
        assert_eq!((space.source, space.target), (b2, a1));
        assert_eq!(ActorRole::BudgetWait(wa.task).task(), wa.task);
    }

    #[test]
    fn model_is_weakly_connected_for_connected_jobs() {
        let (m, _) = model_and_config();
        let gm = &m.graphs()[0];
        assert_eq!(gm.weakly_connected_components().len(), 1);
    }

    #[test]
    fn instantiation_matches_paper_durations() {
        let (m, c) = model_and_config();
        let gid = TaskGraphId::new(0);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut budgets = HashMap::new();
        budgets.insert(wa.task, 8.0);
        budgets.insert(wb.task, 10.0);
        let mut capacities = HashMap::new();
        capacities.insert(bab.buffer, 4);
        let srdf = m.instantiate(&c, gid, &budgets, &capacities);
        assert_eq!(srdf.num_actors(), 4);
        assert_eq!(srdf.num_queues(), 6);
        // Durations: wa.v1 = 40-8 = 32, wa.v2 = 40*1/8 = 5,
        //            wb.v1 = 40-10 = 30, wb.v2 = 40*1/10 = 4.
        let durations: Vec<f64> = srdf.actors().map(|(_, a)| a.firing_duration()).collect();
        assert_eq!(durations, vec![32.0, 5.0, 30.0, 4.0]);
        // Space queue carries capacity − initial = 4 tokens.
        let total_tokens = srdf.total_tokens();
        // 2 self-loops (1 each) + data (0) + space (4) = 6.
        assert_eq!(total_tokens, 6);
    }

    #[test]
    fn instantiated_graph_throughput_matches_hand_analysis() {
        // With budgets 8/8 and capacity d the cycle ratio of the big cycle is
        // ((40-8) + 5 + (40-8) + 5) / d = 74/d, and the self-loops contribute 5.
        let (m, c) = model_and_config();
        let gid = TaskGraphId::new(0);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut budgets = HashMap::new();
        budgets.insert(wa.task, 8.0);
        budgets.insert(wb.task, 8.0);
        for capacity in 1..=10u64 {
            let mut capacities = HashMap::new();
            capacities.insert(bab.buffer, capacity);
            let srdf = m.instantiate(&c, gid, &budgets, &capacities);
            let mcr = match maximum_cycle_ratio(&srdf, 1e-6) {
                CycleRatio::Finite(v) => v,
                other => panic!("unexpected {other:?}"),
            };
            let expected = (74.0 / capacity as f64).max(5.0);
            assert!(
                (mcr - expected).abs() < 1e-3,
                "capacity {capacity}: got {mcr}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "missing budget")]
    fn instantiate_requires_all_budgets() {
        let (m, c) = model_and_config();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut capacities = HashMap::new();
        capacities.insert(bab.buffer, 4);
        let _ = m.instantiate(&c, TaskGraphId::new(0), &HashMap::new(), &capacities);
    }

    #[test]
    #[should_panic(expected = "must be in (0,")]
    fn instantiate_rejects_budget_above_replenishment() {
        let (m, c) = model_and_config();
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut budgets = HashMap::new();
        budgets.insert(wa.task, 50.0);
        budgets.insert(wb.task, 10.0);
        let mut capacities = HashMap::new();
        capacities.insert(bab.buffer, 4);
        let _ = m.instantiate(&c, TaskGraphId::new(0), &budgets, &capacities);
    }

    #[test]
    #[should_panic(expected = "below its")]
    fn instantiate_rejects_capacity_below_initial_tokens() {
        let c = {
            let mut builder = bbs_taskgraph::ConfigurationBuilder::new();
            builder.processor("p1", 40.0);
            builder.processor("p2", 40.0);
            builder.unbounded_memory("mem");
            let job = builder.task_graph("T", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 1, 3, 1.0, None);
            builder.build().unwrap()
        };
        let m = DataflowModel::build(&c);
        let wa = find_task(&c, "wa").unwrap();
        let wb = find_task(&c, "wb").unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        let mut budgets = HashMap::new();
        budgets.insert(wa.task, 10.0);
        budgets.insert(wb.task, 10.0);
        let mut capacities = HashMap::new();
        capacities.insert(bab.buffer, 2);
        let _ = m.instantiate(&c, TaskGraphId::new(0), &budgets, &capacities);
    }
}
