//! Algorithm 1 of the paper: the second-order cone program that jointly
//! computes budgets and buffer sizes.
//!
//! Decision variables:
//!
//! * `β'(w)` — real-valued budget of every task (Constraint 9 reserves the
//!   `+g` rounding slack per task);
//! * `λ(w)` — the budget reciprocal, coupled to `β'` through the hyperbolic
//!   (rotated-cone) Constraint 8 `λ(w)·β'(w) ≥ 1`;
//! * `δ'(e)` — real-valued token count of every *space* queue (the free
//!   containers of a buffer); data queues and self-loops have constant
//!   token counts;
//! * `s(v)` — start-time offsets of the periodic admissible schedule, with
//!   one actor per weakly-connected component pinned to zero to remove the
//!   translational degree of freedom.
//!
//! Constraints 6 and 7 are the PAS conditions for the queue classes E1 and
//! E2, Constraint 9 is the processor capacity and Constraint 10 the memory
//! capacity; the objective is the weighted sum of budgets and buffer
//! storage.

use crate::error::MappingError;
use crate::model::{DataflowModel, GraphModel, QueueRole, TokenCount};
use crate::options::SolveOptions;
use bbs_conic::{LinExpr, ModelBuilder, VarId};
use bbs_taskgraph::{BufferRef, ConfigView, Configuration, TaskRef};
use std::collections::BTreeMap;

/// Variable handles of a built formulation, used to extract the solution.
#[derive(Debug, Clone, Default)]
pub struct FormulationVariables {
    /// `β'(w)` per task.
    pub budgets: BTreeMap<TaskRef, VarId>,
    /// `λ(w)` per task.
    pub reciprocals: BTreeMap<TaskRef, VarId>,
    /// `δ'` of the space queue per buffer.
    pub buffer_space: BTreeMap<BufferRef, VarId>,
    /// Start-time variable per (graph, actor index); `None` for the pinned
    /// reference actors whose start time is fixed at zero.
    pub start_times: BTreeMap<(usize, usize), Option<VarId>>,
}

/// The assembled optimisation problem together with its variable handles.
#[derive(Debug, Clone)]
pub struct Formulation {
    /// The conic model builder holding objective and constraints.
    pub builder: ModelBuilder,
    /// Handles used to read the solution back.
    pub variables: FormulationVariables,
}

impl Formulation {
    /// Builds the joint budget/buffer formulation for a validated
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::CapBelowInitialTokens`] when a buffer's
    /// capacity cap cannot even hold its initially filled containers, and
    /// [`MappingError::ProcessorOverloaded`] / [`MappingError::MemoryOverflow`]
    /// when a resource cannot satisfy the structural minimum requirements
    /// (early, precise infeasibility detection).
    pub fn build(
        configuration: &Configuration,
        model: &DataflowModel,
        options: &SolveOptions,
    ) -> Result<Self, MappingError> {
        Self::build_inner(configuration, None, model, options)
    }

    /// Builds the formulation for a copy-on-write [`ConfigView`] without
    /// materialising the capped clone: the view's uniform capacity cap is
    /// applied symbolically to every buffer's `δ'` upper bound, replacing
    /// per-buffer caps of the base — exactly what
    /// [`Formulation::build`] on the materialised configuration would do.
    ///
    /// # Errors
    ///
    /// Same as [`Formulation::build`].
    pub fn build_view(
        view: &ConfigView,
        model: &DataflowModel,
        options: &SolveOptions,
    ) -> Result<Self, MappingError> {
        Self::build_inner(view.base(), view.capacity_cap(), model, options)
    }

    /// Shared body of [`Formulation::build`] / [`Formulation::build_view`]:
    /// `cap_override`, when present, replaces every buffer's own cap.
    fn build_inner(
        configuration: &Configuration,
        cap_override: Option<u64>,
        model: &DataflowModel,
        options: &SolveOptions,
    ) -> Result<Self, MappingError> {
        preflight(configuration)?;

        let mut builder = ModelBuilder::new();
        let mut variables = FormulationVariables::default();
        let granularity = configuration.budget_granularity() as f64;

        // --- Per-task variables: β' and λ -----------------------------------
        for task_ref in configuration.all_tasks() {
            let graph = configuration.task_graph(task_ref.graph);
            let task = graph.task(task_ref.task);
            let processor = configuration.processor(task.processor());
            let replenishment = processor.replenishment_interval();
            let beta = builder.add_var_with_cost(
                format!("beta[{task_ref}]"),
                options.budget_weight_scale * task.budget_weight(),
            );
            // Throughput-implied lower bound β ≥ ̺·χ/µ (the self-loop of the
            // execution actor) and the structural upper bound β ≤ ̺.
            let beta_min = (replenishment * task.wcet() / graph.period()).min(replenishment);
            builder.bound_lower(beta, beta_min.max(1e-6));
            builder.bound_upper(beta, replenishment);
            let lambda = builder.add_var(format!("lambda[{task_ref}]"));
            builder.bound_lower(lambda, 1e-9);
            // Constraint 8: λ·β' ≥ 1.
            builder.add_hyperbolic(lambda, beta, 1.0);
            variables.budgets.insert(task_ref, beta);
            variables.reciprocals.insert(task_ref, lambda);
        }

        // --- Per-buffer variables: δ' of the space queue ---------------------
        for buffer_ref in configuration.all_buffers() {
            let graph = configuration.task_graph(buffer_ref.graph);
            let buffer = graph.buffer(buffer_ref.buffer);
            let delta = builder.add_var_with_cost(
                format!("delta[{buffer_ref}]"),
                options.storage_weight_scale
                    * buffer.storage_weight()
                    * buffer.container_size() as f64,
            );
            builder.bound_lower(delta, 0.0);
            if let Some(cap) = cap_override.or_else(|| buffer.max_capacity()) {
                if cap < buffer.initial_tokens() {
                    return Err(MappingError::CapBelowInitialTokens {
                        buffer: buffer_ref,
                        cap,
                        initial_tokens: buffer.initial_tokens(),
                    });
                }
                builder.bound_upper(delta, (cap - buffer.initial_tokens()) as f64);
            }
            variables.buffer_space.insert(buffer_ref, delta);
        }

        // --- Start-time variables with one pinned actor per component --------
        for (graph_index, graph_model) in model.graphs().iter().enumerate() {
            for component in graph_model.weakly_connected_components() {
                for (position, &actor) in component.iter().enumerate() {
                    let var = if position == 0 {
                        None
                    } else {
                        Some(builder.add_var(format!(
                            "start[{}:{}]",
                            graph_model.graph_id, graph_model.actors[actor].name
                        )))
                    };
                    variables.start_times.insert((graph_index, actor), var);
                }
            }
        }

        // --- PAS constraints (6) and (7) -------------------------------------
        for (graph_index, graph_model) in model.graphs().iter().enumerate() {
            add_pas_constraints(
                &mut builder,
                &variables,
                configuration,
                graph_index,
                graph_model,
            );
        }

        // --- Processor capacity (9) ------------------------------------------
        for (pid, processor) in configuration.processors() {
            let tasks = configuration.tasks_on_processor(pid);
            if tasks.is_empty() {
                continue;
            }
            let mut expr = LinExpr::new();
            for task_ref in &tasks {
                expr = expr.plus(1.0, variables.budgets[task_ref]);
            }
            let rhs = processor.replenishment_interval()
                - processor.scheduling_overhead()
                - granularity * tasks.len() as f64;
            builder.add_le(expr, rhs);
        }

        // --- Memory capacity (10) ---------------------------------------------
        for (mid, memory) in configuration.memories() {
            let buffers = configuration.buffers_in_memory(mid);
            if buffers.is_empty() || memory.is_unbounded() {
                continue;
            }
            let mut expr = LinExpr::new();
            let mut fixed: f64 = 0.0;
            for buffer_ref in &buffers {
                let buffer = configuration
                    .task_graph(buffer_ref.graph)
                    .buffer(buffer_ref.buffer);
                expr = expr.plus(
                    buffer.container_size() as f64,
                    variables.buffer_space[buffer_ref],
                );
                // ι(b) filled containers plus the +1 rounding slack.
                fixed += (buffer.initial_tokens() as f64 + 1.0) * buffer.container_size() as f64;
            }
            builder.add_le(expr, memory.capacity() as f64 - fixed);
        }

        Ok(Self { builder, variables })
    }
}

/// Adds Constraints (6)/(7) for every queue of one graph model.
fn add_pas_constraints(
    builder: &mut ModelBuilder,
    variables: &FormulationVariables,
    configuration: &Configuration,
    graph_index: usize,
    graph_model: &GraphModel,
) {
    let graph_id = graph_model.graph_id;
    let graph = configuration.task_graph(graph_id);
    let period = graph_model.period;
    let start = |actor: usize| variables.start_times[&(graph_index, actor)];

    for queue in &graph_model.queues {
        // Expression  s(target) − s(source) + … ≥ rhs.
        let mut expr = LinExpr::new();
        if let Some(var) = start(queue.target) {
            expr = expr.plus(1.0, var);
        }
        if let Some(var) = start(queue.source) {
            expr = expr.plus(-1.0, var);
        }
        let source_task = graph_model.actors[queue.source].role.task();
        let task_ref = TaskRef::new(graph_id, source_task);
        let task = graph.task(source_task);
        let processor = configuration.processor(task.processor());
        let replenishment = processor.replenishment_interval();

        match queue.role {
            QueueRole::IntraTask(_) => {
                // Constraint 6: s(v2) ≥ s(v1) + ̺ − β'  ⇔
                //               s(v2) − s(v1) + β' ≥ ̺.
                expr = expr.plus(1.0, variables.budgets[&task_ref]);
                builder.add_ge(expr, replenishment);
            }
            QueueRole::ExecutionSelfLoop(_) | QueueRole::Data(_) | QueueRole::Space(_) => {
                // Constraint 7: s(vj) ≥ s(vi) + ̺·χ·λ − δ(e)·µ.
                expr = expr.plus(
                    -replenishment * task.wcet(),
                    variables.reciprocals[&task_ref],
                );
                let rhs = match queue.tokens {
                    TokenCount::Fixed(t) => -(t as f64) * period,
                    TokenCount::BufferSpace(bid) => {
                        let buffer_ref = BufferRef::new(graph_id, bid);
                        expr = expr.plus(period, variables.buffer_space[&buffer_ref]);
                        0.0
                    }
                };
                builder.add_ge(expr, rhs);
            }
        }
    }
}

/// Early, precise infeasibility detection for resources: the throughput
/// requirement already implies a minimum budget per task; if those minima do
/// not fit on a processor (or the minimum buffer storage does not fit in a
/// memory), report which resource is the problem instead of a generic
/// solver "infeasible".
fn preflight(configuration: &Configuration) -> Result<(), MappingError> {
    let granularity = configuration.budget_granularity() as f64;
    for (pid, processor) in configuration.processors() {
        let tasks = configuration.tasks_on_processor(pid);
        if tasks.is_empty() {
            continue;
        }
        let mut required = processor.scheduling_overhead();
        for task_ref in &tasks {
            let graph = configuration.task_graph(task_ref.graph);
            let task = graph.task(task_ref.task);
            let beta_min = processor.replenishment_interval() * task.wcet() / graph.period();
            required += beta_min + granularity;
        }
        if required > processor.replenishment_interval() + 1e-9 {
            return Err(MappingError::ProcessorOverloaded {
                processor: pid,
                required,
                available: processor.replenishment_interval(),
            });
        }
    }
    for (mid, memory) in configuration.memories() {
        let buffers = configuration.buffers_in_memory(mid);
        if buffers.is_empty() || memory.is_unbounded() {
            continue;
        }
        let mut required: u64 = 0;
        for buffer_ref in &buffers {
            let buffer = configuration
                .task_graph(buffer_ref.graph)
                .buffer(buffer_ref.buffer);
            required += (buffer.initial_tokens() + 1) * buffer.container_size();
        }
        if required > memory.capacity() {
            return Err(MappingError::MemoryOverflow {
                memory: mid,
                required,
                available: memory.capacity(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DataflowModel;
    use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};
    use bbs_taskgraph::ConfigurationBuilder;

    fn formulation_for(configuration: &Configuration) -> Formulation {
        let model = DataflowModel::build(configuration);
        Formulation::build(configuration, &model, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn variable_counts_match_structure() {
        let c = producer_consumer(PaperParameters::default(), Some(10));
        let f = formulation_for(&c);
        assert_eq!(f.variables.budgets.len(), 2);
        assert_eq!(f.variables.reciprocals.len(), 2);
        assert_eq!(f.variables.buffer_space.len(), 1);
        // 4 actors, one pinned → 3 start-time variables.
        let free_starts = f
            .variables
            .start_times
            .values()
            .filter(|v| v.is_some())
            .count();
        assert_eq!(free_starts, 3);
        assert_eq!(f.variables.start_times.len(), 4);
        // Total variables: 2β + 2λ + 1δ + 3s = 8.
        assert_eq!(f.builder.num_vars(), 8);
    }

    #[test]
    fn chain_has_expected_variable_counts() {
        let c = chain3(PaperParameters::default(), Some(10));
        let f = formulation_for(&c);
        assert_eq!(f.variables.budgets.len(), 3);
        assert_eq!(f.variables.buffer_space.len(), 2);
        // 6 actors, one component, one pinned → 5 start variables.
        let free_starts = f
            .variables
            .start_times
            .values()
            .filter(|v| v.is_some())
            .count();
        assert_eq!(free_starts, 5);
    }

    #[test]
    fn hyperbolic_constraints_one_per_task() {
        let c = chain3(PaperParameters::default(), None);
        let f = formulation_for(&c);
        assert_eq!(f.builder.hyperbolic_constraints().len(), 3);
    }

    #[test]
    fn cap_below_initial_tokens_is_rejected() {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        {
            let job = builder.task_graph("T", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 1, 5, 1.0, Some(2));
        }
        let c = builder.build().unwrap();
        let model = DataflowModel::build(&c);
        let err = Formulation::build(&c, &model, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, MappingError::CapBelowInitialTokens { .. }));
    }

    #[test]
    fn preflight_detects_processor_overload() {
        // Eight tasks of wcet 1 with period 10 on one 40-cycle processor need
        // at least 8·(4+1) = 40 > 40 − 0 … boundary; push to nine tasks.
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p", 40.0);
        builder.unbounded_memory("mem");
        {
            let job = builder.task_graph("T", 10.0);
            for i in 0..9 {
                job.task(&format!("w{i}"), 1.0, "p");
            }
            for i in 0..8 {
                job.buffer(
                    &format!("b{i}"),
                    &format!("w{i}"),
                    &format!("w{}", i + 1),
                    "mem",
                );
            }
        }
        let c = builder.build().unwrap();
        let model = DataflowModel::build(&c);
        let err = Formulation::build(&c, &model, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, MappingError::ProcessorOverloaded { .. }));
    }

    #[test]
    fn preflight_detects_memory_overflow() {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.memory("tiny", 1);
        {
            let job = builder.task_graph("T", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            // Container size 4: even one container (plus rounding slack) overflows.
            job.buffer_detailed("bab", "wa", "wb", "tiny", 4, 0, 1.0, None);
        }
        let c = builder.build().unwrap();
        let model = DataflowModel::build(&c);
        let err = Formulation::build(&c, &model, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, MappingError::MemoryOverflow { .. }));
    }

    #[test]
    fn weight_scales_change_objective_coefficients() {
        let c = producer_consumer(PaperParameters::default(), None);
        let model = DataflowModel::build(&c);
        let default = Formulation::build(&c, &model, &SolveOptions::default()).unwrap();
        let scaled = Formulation::build(
            &c,
            &model,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        let d = default.builder.clone().build().unwrap();
        let s = scaled.builder.clone().build().unwrap();
        assert_ne!(d.problem().c.as_slice(), s.problem().c.as_slice());
    }
}
