//! Options controlling the joint budget/buffer computation.

use bbs_conic::{CuttingPlaneSettings, IpmSettings};
use serde::{Deserialize, Serialize};

/// Which optimisation back-end solves Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// The second-order cone program solved by the primal–dual
    /// interior-point method — the paper's approach, with polynomial
    /// complexity.
    #[default]
    InteriorPoint,
    /// An outer-approximation loop that replaces the hyperbolic constraints
    /// by tangent cuts and solves a sequence of LPs. Used as an ablation
    /// baseline and as an independent cross-check of the SOCP results.
    CuttingPlane,
}

impl SolverKind {
    /// The canonical string form used in scenario files and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SolverKind::InteriorPoint => "interior-point",
            SolverKind::CuttingPlane => "cutting-plane",
        }
    }
}

// The vendored serde_derive shim does not handle enums, so the string form
// is implemented by hand: `"interior-point"` / `"cutting-plane"`.
impl Serialize for SolverKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }

    fn serialize_canonical(&self, out: &mut dyn serde::Serializer) {
        // Both names are escape-free, so the quoted literal is canonical.
        out.write_bytes(b"\"");
        out.write_bytes(self.as_str().as_bytes());
        out.write_bytes(b"\"");
    }
}

impl Deserialize for SolverKind {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) if s == "interior-point" => Ok(SolverKind::InteriorPoint),
            serde::Value::Str(s) if s == "cutting-plane" => Ok(SolverKind::CuttingPlane),
            other => Err(serde::Error::custom(format!(
                "expected \"interior-point\" or \"cutting-plane\", found {other:?}"
            ))),
        }
    }
}

/// Options of [`crate::compute_mapping`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Optimisation back-end.
    pub solver: SolverKind,
    /// Interior-point solver parameters.
    pub ipm: IpmSettings,
    /// Cutting-plane parameters (only used by [`SolverKind::CuttingPlane`]).
    pub cutting_plane: CuttingPlaneSettings,
    /// Global multiplier applied to every task's budget weight `a(w)`.
    pub budget_weight_scale: f64,
    /// Global multiplier applied to every buffer's storage weight `b(b)`.
    pub storage_weight_scale: f64,
    /// Verify the rounded mapping with an independent dataflow analysis
    /// before returning it (cheap; enabled by default).
    pub verify: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            solver: SolverKind::InteriorPoint,
            ipm: IpmSettings::default(),
            cutting_plane: CuttingPlaneSettings::default(),
            budget_weight_scale: 1.0,
            storage_weight_scale: 1.0,
            verify: true,
        }
    }
}

impl SolveOptions {
    /// The weight setting used in the paper's experiments: budgets are
    /// minimised with priority, buffer storage only as a tie-breaker.
    #[must_use]
    pub fn prefer_budget_minimisation(mut self) -> Self {
        self.budget_weight_scale = 1.0;
        self.storage_weight_scale = 1e-3;
        self
    }

    /// The opposite trade-off: minimise storage first, budgets as a
    /// tie-breaker.
    #[must_use]
    pub fn prefer_storage_minimisation(mut self) -> Self {
        self.budget_weight_scale = 1e-3;
        self.storage_weight_scale = 1.0;
        self
    }

    /// Selects the cutting-plane back-end.
    #[must_use]
    pub fn with_cutting_plane(mut self) -> Self {
        self.solver = SolverKind::CuttingPlane;
        self
    }

    /// Disables the post-hoc verification step (it is cheap, but exact
    /// reproduction of solver-only timing measurements may want it off).
    #[must_use]
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_interior_point_with_verification() {
        let o = SolveOptions::default();
        assert_eq!(o.solver, SolverKind::InteriorPoint);
        assert!(o.verify);
        assert_eq!(o.budget_weight_scale, 1.0);
        assert_eq!(o.storage_weight_scale, 1.0);
    }

    #[test]
    fn options_round_trip_through_json() {
        let options = SolveOptions::default()
            .prefer_budget_minimisation()
            .with_cutting_plane();
        let json = serde_json::to_string(&options).unwrap();
        assert!(json.contains("\"cutting-plane\""));
        let back: SolveOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, options);
        assert!(
            serde_json::from_str::<SolveOptions>(&json.replace("cutting-plane", "simplex"))
                .is_err()
        );
    }

    #[test]
    fn builder_style_modifiers() {
        let o = SolveOptions::default()
            .prefer_budget_minimisation()
            .with_cutting_plane()
            .without_verification();
        assert_eq!(o.solver, SolverKind::CuttingPlane);
        assert!(!o.verify);
        assert!(o.storage_weight_scale < o.budget_weight_scale);
        let o2 = SolveOptions::default().prefer_storage_minimisation();
        assert!(o2.budget_weight_scale < o2.storage_weight_scale);
    }
}
