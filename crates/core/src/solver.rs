//! The main entry point: simultaneous computation of budgets and buffer
//! capacities for a whole configuration.

use crate::error::MappingError;
use crate::formulation::Formulation;
use crate::model::DataflowModel;
use crate::options::{SolveOptions, SolverKind};
use crate::solution::Mapping;
use crate::verify::verify_mapping;
use bbs_conic::{solve_with_cutting_planes, Solution, SolveStatus};
use bbs_taskgraph::{ConfigView, Configuration};
use std::collections::BTreeMap;

/// Simultaneously computes budgets and buffer capacities that satisfy every
/// throughput, processor-capacity, memory-capacity and buffer-cap constraint
/// of the configuration, minimising the weighted sum of budgets and buffer
/// storage (Algorithm 1 of the paper).
///
/// # Errors
///
/// * [`MappingError::Model`] — the configuration is structurally invalid;
/// * [`MappingError::ProcessorOverloaded`] / [`MappingError::MemoryOverflow`]
///   / [`MappingError::CapBelowInitialTokens`] — precise early infeasibility;
/// * [`MappingError::Infeasible`] — the solver proved the remaining
///   constraint system infeasible;
/// * [`MappingError::Solver`] — numerical failure in the optimiser;
/// * [`MappingError::VerificationFailed`] — the independently verified
///   rounded mapping violates a constraint (indicates a bug; never expected).
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use budget_buffer::{compute_mapping, SolveOptions};
///
/// # fn main() -> Result<(), budget_buffer::MappingError> {
/// let configuration = producer_consumer(PaperParameters::default(), Some(10));
/// let options = SolveOptions::default().prefer_budget_minimisation();
/// let mapping = compute_mapping(&configuration, &options)?;
/// // With ten containers allowed, the minimum budget of 4 Mcycles is reached.
/// assert_eq!(mapping.budget_of_named(&configuration, "wa"), Some(4));
/// # Ok(())
/// # }
/// ```
pub fn compute_mapping(
    configuration: &Configuration,
    options: &SolveOptions,
) -> Result<Mapping, MappingError> {
    configuration.validate()?;
    let model = DataflowModel::build(configuration);
    let formulation = Formulation::build(configuration, &model, options)?;
    let (solution, iterations) = solve_formulation(&formulation, options)?;
    let mapping = extract_mapping(configuration, &formulation, &solution, iterations);
    if options.verify {
        verify_mapping(configuration, &mapping)?;
    }
    Ok(mapping)
}

/// [`compute_mapping`] for a copy-on-write [`ConfigView`]: solves the
/// view's effective configuration without ever materialising the capped
/// clone. The view's uniform capacity cap enters the formulation as the
/// `δ'` upper bound of every buffer, so the result is identical to calling
/// [`compute_mapping`] on `view.config()`.
///
/// # Errors
///
/// Same as [`compute_mapping`].
///
/// # Example
///
/// ```
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use bbs_taskgraph::ConfigView;
/// use budget_buffer::{compute_mapping_view, SolveOptions};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), budget_buffer::MappingError> {
/// let base = Arc::new(producer_consumer(PaperParameters::default(), None));
/// let view = ConfigView::with_capacity_cap(Arc::clone(&base), 10);
/// let options = SolveOptions::default().prefer_budget_minimisation();
/// let mapping = compute_mapping_view(&view, &options)?;
/// assert_eq!(mapping.budget_of_named(&base, "wa"), Some(4));
/// # Ok(())
/// # }
/// ```
pub fn compute_mapping_view(
    view: &ConfigView,
    options: &SolveOptions,
) -> Result<Mapping, MappingError> {
    let configuration: &Configuration = view.base();
    configuration.validate()?;
    let model = DataflowModel::build_view(view);
    let formulation = Formulation::build_view(view, &model, options)?;
    let (solution, iterations) = solve_formulation(&formulation, options)?;
    let mapping = extract_mapping(configuration, &formulation, &solution, iterations);
    if options.verify {
        verify_mapping(configuration, &mapping)?;
    }
    Ok(mapping)
}

/// Solves an already-built formulation with the selected back-end.
pub(crate) fn solve_formulation(
    formulation: &Formulation,
    options: &SolveOptions,
) -> Result<(Solution, usize), MappingError> {
    match options.solver {
        SolverKind::InteriorPoint => {
            let model = formulation.builder.clone().build()?;
            let solution = model.solve(&options.ipm)?;
            match solution.status() {
                SolveStatus::Optimal => {
                    let iterations = solution.iterations();
                    Ok((solution, iterations))
                }
                status => Err(MappingError::Infeasible {
                    detail: status.to_string(),
                }),
            }
        }
        SolverKind::CuttingPlane => {
            let outcome = solve_with_cutting_planes(
                &formulation.builder,
                &options.ipm,
                &options.cutting_plane,
            )?;
            if !outcome.converged || !outcome.solution.status().is_optimal() {
                return Err(MappingError::Infeasible {
                    detail: format!(
                        "cutting-plane loop did not converge ({} rounds, status {})",
                        outcome.rounds,
                        outcome.solution.status()
                    ),
                });
            }
            Ok((outcome.solution, outcome.rounds))
        }
    }
}

/// Reads the raw solver values out of a solution and applies the
/// conservative rounding.
pub(crate) fn extract_mapping(
    configuration: &Configuration,
    formulation: &Formulation,
    solution: &Solution,
    iterations: usize,
) -> Mapping {
    let raw_budgets: BTreeMap<_, _> = formulation
        .variables
        .budgets
        .iter()
        .map(|(&task, &var)| (task, solution.value(var)))
        .collect();
    let raw_space: BTreeMap<_, _> = formulation
        .variables
        .buffer_space
        .iter()
        .map(|(&buffer, &var)| (buffer, solution.value(var)))
        .collect();
    Mapping::from_raw(
        configuration,
        raw_budgets,
        raw_space,
        solution.objective(),
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{chain3, producer_consumer, ring, PaperParameters};
    use bbs_taskgraph::{find_buffer, find_task, ConfigurationBuilder};

    fn budget_first() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn producer_consumer_unconstrained_reaches_minimum_budget() {
        // With no cap on the buffer the optimiser can always buy enough
        // containers to push both budgets to their floor of ̺·χ/µ = 4.
        let c = producer_consumer(PaperParameters::default(), None);
        let m = compute_mapping(&c, &budget_first()).unwrap();
        assert_eq!(m.budget_of_named(&c, "wa"), Some(4));
        assert_eq!(m.budget_of_named(&c, "wb"), Some(4));
        // The hand-derived cycle inequality 80 − 2β + 80/β ≤ 10γ gives
        // γ ≥ 9.2 at β = 4, so the capacity must be 10 containers.
        assert_eq!(m.capacity_of_named(&c, "bab"), Some(10));
    }

    #[test]
    fn producer_consumer_capacity_one_needs_large_budgets() {
        // Hand analysis: with γ = 1 the budgets satisfy β ≥ (35+√1385)/2 ≈ 36.11.
        let c = producer_consumer(PaperParameters::default(), Some(1));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        let wa = find_task(&c, "wa").unwrap();
        assert_eq!(m.budget(wa), 37);
        assert!((m.raw_budget(wa) - 36.108).abs() < 0.01);
        assert_eq!(m.capacity_of_named(&c, "bab"), Some(1));
    }

    #[test]
    fn budgets_decrease_monotonically_with_capacity() {
        let mut previous = u64::MAX;
        for cap in 1..=10u64 {
            let c = producer_consumer(PaperParameters::default(), Some(cap));
            let m = compute_mapping(&c, &budget_first()).unwrap();
            let budget = m.budget_of_named(&c, "wa").unwrap();
            assert!(
                budget <= previous,
                "capacity {cap}: budget {budget} exceeds previous {previous}"
            );
            previous = budget;
        }
        assert_eq!(previous, 4, "capacity 10 reaches the floor");
    }

    #[test]
    fn symmetric_tasks_get_symmetric_budgets() {
        let c = producer_consumer(PaperParameters::default(), Some(5));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        assert_eq!(
            m.budget_of_named(&c, "wa"),
            m.budget_of_named(&c, "wb"),
            "the producer/consumer instance is symmetric"
        );
    }

    #[test]
    fn chain_middle_task_keeps_larger_budget() {
        // Figure 3: the middle task interacts with two buffers, so its budget
        // is reduced later than the budgets of the end tasks.
        let c = chain3(PaperParameters::default(), Some(3));
        let m = compute_mapping(&c, &budget_first()).unwrap();
        let wa = m.budget_of_named(&c, "wa").unwrap();
        let wb = m.budget_of_named(&c, "wb").unwrap();
        let wc = m.budget_of_named(&c, "wc").unwrap();
        assert_eq!(wa, wc, "end tasks are symmetric");
        assert!(
            wb >= wa,
            "middle task budget {wb} must be at least end budget {wa}"
        );
    }

    #[test]
    fn cutting_plane_agrees_with_interior_point() {
        let c = producer_consumer(PaperParameters::default(), Some(4));
        let ipm = compute_mapping(&c, &budget_first()).unwrap();
        let cp = compute_mapping(&c, &budget_first().with_cutting_plane()).unwrap();
        assert_eq!(
            ipm.budget_of_named(&c, "wa"),
            cp.budget_of_named(&c, "wa"),
            "both solvers must find the same rounded budgets"
        );
        assert_eq!(
            ipm.capacity_of_named(&c, "bab"),
            cp.capacity_of_named(&c, "bab")
        );
    }

    #[test]
    fn ring_with_initial_tokens_is_solvable() {
        let c = ring(3, PaperParameters::default(), 4, None);
        let m = compute_mapping(&c, &budget_first()).unwrap();
        assert!(m.total_budget() >= 3 * 4);
    }

    #[test]
    fn infeasible_cap_is_reported_as_infeasible() {
        // Capacity 1 forces budgets ≈ 36.1 on each processor — fine for the
        // plain producer/consumer. Make it infeasible by also packing a
        // second task graph onto the same processors.
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        {
            let job = builder.task_graph("T1", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 1, 0, 1.0, Some(1));
        }
        {
            let job = builder.task_graph("T2", 10.0);
            job.task("xa", 1.0, "p1");
            job.task("xb", 1.0, "p2");
            job.buffer_detailed("bxab", "xa", "xb", "mem", 1, 0, 1.0, Some(1));
        }
        let c = builder.build().unwrap();
        let err = compute_mapping(&c, &budget_first()).unwrap_err();
        assert!(
            matches!(err, MappingError::Infeasible { .. }),
            "expected Infeasible, got {err:?}"
        );
    }

    #[test]
    fn two_jobs_sharing_processors_with_larger_buffers_fit() {
        // Same set-up as above but with generous buffer caps: both jobs can
        // run at budget 4 + 4 = 8 ≤ 40 per processor.
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        for name in ["T1", "T2"] {
            let job = builder.task_graph(name, 10.0);
            job.task(&format!("{name}a"), 1.0, "p1");
            job.task(&format!("{name}b"), 1.0, "p2");
            job.buffer(
                &format!("{name}buf"),
                &format!("{name}a"),
                &format!("{name}b"),
                "mem",
            );
        }
        let c = builder.build().unwrap();
        let m = compute_mapping(&c, &budget_first()).unwrap();
        for (pid, _) in c.processors() {
            assert!(m.budget_on_processor(&c, pid) <= 40);
        }
        assert_eq!(m.budgets().count(), 4);
    }

    #[test]
    fn memory_capacity_forces_smaller_buffers_and_larger_budgets() {
        // A tight memory (6 units) caps the buffer at 5 containers even
        // though 10 would minimise the budgets.
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.memory("tight", 6);
        {
            let job = builder.task_graph("T1", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer("bab", "wa", "wb", "tight");
        }
        let c = builder.build().unwrap();
        let m = compute_mapping(&c, &budget_first()).unwrap();
        let bab = find_buffer(&c, "bab").unwrap();
        assert!(
            m.capacity(bab) <= 5,
            "memory slack of 1 unit is reserved for rounding"
        );
        assert!(m.budget_of_named(&c, "wa").unwrap() > 4);
        // The unconstrained problem would have chosen 10 containers.
        let unconstrained = producer_consumer(PaperParameters::default(), None);
        let m_unconstrained = compute_mapping(&unconstrained, &budget_first()).unwrap();
        assert_eq!(
            m_unconstrained.capacity_of_named(&unconstrained, "bab"),
            Some(10)
        );
    }

    #[test]
    fn storage_first_weighting_buys_smaller_buffers() {
        let c = producer_consumer(PaperParameters::default(), None);
        let budget_first_mapping = compute_mapping(&c, &budget_first()).unwrap();
        let storage_first_mapping =
            compute_mapping(&c, &SolveOptions::default().prefer_storage_minimisation()).unwrap();
        assert!(
            storage_first_mapping.capacity_of_named(&c, "bab").unwrap()
                < budget_first_mapping.capacity_of_named(&c, "bab").unwrap()
        );
        assert!(
            storage_first_mapping.budget_of_named(&c, "wa").unwrap()
                > budget_first_mapping.budget_of_named(&c, "wa").unwrap()
        );
    }

    #[test]
    fn granularity_rounds_budgets_to_multiples() {
        let mut c = producer_consumer(PaperParameters::default(), Some(6));
        c.set_budget_granularity(5);
        let m = compute_mapping(&c, &budget_first()).unwrap();
        for (_, budget) in m.budgets() {
            assert_eq!(budget % 5, 0, "budget {budget} is not a multiple of 5");
        }
    }

    #[test]
    fn initial_tokens_reduce_required_space() {
        // With 2 initially filled containers the consumer can start earlier;
        // the required total capacity stays the same as the empty case
        // (the cycle constraint counts total capacity γ).
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        {
            let job = builder.task_graph("T1", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 1, 2, 1.0, None);
        }
        let c = builder.build().unwrap();
        let m = compute_mapping(&c, &budget_first()).unwrap();
        assert_eq!(m.budget_of_named(&c, "wa"), Some(4));
        let bab = find_buffer(&c, "bab").unwrap();
        // Total capacity = initial tokens + allocated space.
        assert!(m.capacity(bab) >= 2);
    }

    #[test]
    fn invalid_configuration_is_rejected_before_solving() {
        let c = bbs_taskgraph::Configuration::new();
        assert!(matches!(
            compute_mapping(&c, &SolveOptions::default()),
            Err(MappingError::Model(_))
        ));
        let view = ConfigView::new(std::sync::Arc::new(bbs_taskgraph::Configuration::new()));
        assert!(matches!(
            compute_mapping_view(&view, &SolveOptions::default()),
            Err(MappingError::Model(_))
        ));
    }

    #[test]
    fn view_solves_match_materialised_clone_solves() {
        use crate::explore::with_capacity_cap;
        let base = std::sync::Arc::new(producer_consumer(PaperParameters::default(), None));
        for cap in 1..=10u64 {
            let view = ConfigView::with_capacity_cap(std::sync::Arc::clone(&base), cap);
            let from_view = compute_mapping_view(&view, &budget_first()).unwrap();
            let from_clone =
                compute_mapping(&with_capacity_cap(&base, cap), &budget_first()).unwrap();
            assert_eq!(from_view, from_clone, "cap {cap}: view and clone diverge");
        }
    }

    #[test]
    fn uncapped_view_solves_match_the_base() {
        let base = std::sync::Arc::new(producer_consumer(PaperParameters::default(), None));
        let view = ConfigView::new(std::sync::Arc::clone(&base));
        let from_view = compute_mapping_view(&view, &budget_first()).unwrap();
        let from_base = compute_mapping(&base, &budget_first()).unwrap();
        assert_eq!(from_view, from_base);
    }

    #[test]
    fn view_cap_below_initial_tokens_is_rejected() {
        let mut builder = ConfigurationBuilder::new();
        builder.processor("p1", 40.0);
        builder.processor("p2", 40.0);
        builder.unbounded_memory("mem");
        {
            let job = builder.task_graph("T", 10.0);
            job.task("wa", 1.0, "p1");
            job.task("wb", 1.0, "p2");
            job.buffer_detailed("bab", "wa", "wb", "mem", 1, 5, 1.0, None);
        }
        let base = std::sync::Arc::new(builder.build().unwrap());
        let view = ConfigView::with_capacity_cap(base, 2);
        let err = compute_mapping_view(&view, &budget_first()).unwrap_err();
        assert!(matches!(err, MappingError::CapBelowInitialTokens { .. }));
    }
}
