//! Property-based invariants of the joint budget/buffer computation on
//! randomly generated streaming workloads.
//!
//! These properties are the library-level contract: whatever the workload,
//! a mapping returned by `compute_mapping` respects every resource bound,
//! verifies against the independent dataflow analysis, and is never worse
//! (in optimised cost) than the two-phase baseline when both succeed.

use bbs_taskgraph::presets::{random_dag, RandomWorkload};
use bbs_taskgraph::Configuration;
use budget_buffer::two_phase::{compute_mapping_two_phase, BudgetPolicy};
use budget_buffer::verify::verify_mapping;
use budget_buffer::{compute_mapping, MappingError, SolveOptions};
use proptest::prelude::*;

fn options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

/// Strategy: small random streaming DAGs with varying shapes, processor
/// counts and (sometimes) capacity caps on every buffer.
fn workload_strategy() -> impl Strategy<Value = (Configuration, Option<u64>)> {
    (
        2usize..7,   // tasks
        1usize..4,   // processors
        0u64..3,     // cap selector: 0 = uncapped, otherwise cap = 4 + value
        0.0f64..0.5, // extra edge probability
        0u64..1000,  // seed
    )
        .prop_map(|(tasks, processors, cap_sel, extra, seed)| {
            let configuration = random_dag(&RandomWorkload {
                num_tasks: tasks,
                num_processors: processors,
                extra_edge_probability: extra,
                seed,
                ..RandomWorkload::default()
            });
            let cap = if cap_sel == 0 {
                None
            } else {
                Some(4 + cap_sel)
            };
            let configuration = match cap {
                Some(c) => budget_buffer::explore::with_capacity_cap(&configuration, c),
                None => configuration,
            };
            (configuration, cap)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every successfully computed mapping satisfies all resource bounds and
    /// the independent schedule verification.
    #[test]
    fn mappings_respect_all_resource_bounds((configuration, cap) in workload_strategy()) {
        let mapping = match compute_mapping(&configuration, &options()) {
            Ok(m) => m,
            // Tightly capped random workloads may be genuinely infeasible —
            // that is a legitimate answer, not a property violation.
            Err(MappingError::Infeasible { .. })
            | Err(MappingError::ProcessorOverloaded { .. }) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        };
        // Budgets: positive multiples of the granularity, within the
        // replenishment interval; processors not over-allocated.
        for (task_ref, budget) in mapping.budgets() {
            let task = configuration.task_graph(task_ref.graph).task(task_ref.task);
            let processor = configuration.processor(task.processor());
            prop_assert!(budget >= 1);
            prop_assert_eq!(budget % configuration.budget_granularity(), 0);
            prop_assert!((budget as f64) <= processor.replenishment_interval() + 1e-9);
        }
        for (pid, processor) in configuration.processors() {
            let allocated = mapping.budget_on_processor(&configuration, pid) as f64
                + processor.scheduling_overhead();
            prop_assert!(allocated <= processor.replenishment_interval() + 1e-9);
        }
        // Capacities: at least the initial tokens, at most the cap.
        for (buffer_ref, capacity) in mapping.capacities() {
            let buffer = configuration
                .task_graph(buffer_ref.graph)
                .buffer(buffer_ref.buffer);
            prop_assert!(capacity >= buffer.initial_tokens().max(1));
            if let Some(c) = cap {
                prop_assert!(capacity <= c, "capacity {capacity} exceeds the cap {c}");
            }
        }
        // Independent verification must agree.
        let report = verify_mapping(&configuration, &mapping);
        prop_assert!(report.is_ok(), "verification failed: {report:?}");
    }

    /// When both the joint flow and the minimum-budget two-phase baseline
    /// succeed, the joint flow never allocates more total budget (its budget
    /// phase is exactly the baseline's objective) — and it succeeds at least
    /// as often.
    #[test]
    fn joint_flow_dominates_two_phase((configuration, _cap) in workload_strategy()) {
        let joint = compute_mapping(&configuration, &options());
        let baseline =
            compute_mapping_two_phase(&configuration, BudgetPolicy::ThroughputMinimum, &options());
        match (joint, baseline) {
            (Ok(joint), Ok(baseline)) => {
                prop_assert!(joint.total_budget() <= baseline.mapping.total_budget());
            }
            (Err(_), Ok(baseline)) => {
                return Err(TestCaseError::fail(format!(
                    "two-phase found a mapping the joint flow missed: {baseline:?}"
                )));
            }
            // Joint succeeding where the baseline fails is the paper's point;
            // both failing is a legitimately infeasible workload.
            (Ok(_), Err(_)) | (Err(_), Err(_)) => {}
        }
    }
}
