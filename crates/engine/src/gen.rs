//! The seeded scenario generator behind `bbs gen`: schema-valid random
//! suites for fuzz-scale validation.
//!
//! Every suite is a pure function of its [`GenParams`] — the same seed and
//! point budget always produce byte-identical suite files — so generated
//! campaigns are as reproducible as the hand-written ones. Scenarios draw
//! from the same preset families the built-in suites use (producer/
//! consumer, chains, rings, random DAGs) with randomised shapes, platform
//! timings and sweep ranges; every scenario requests `validate: "sim"` and
//! declares `expect_infeasible`, because a randomly tight sweep point may
//! genuinely admit no mapping and that is a finding, not a failure.

use crate::scenario::{Scenario, Suite, SweepSpec, ValidationMode, WorkloadSpec};
use bbs_taskgraph::presets::{PresetSpec, RandomWorkload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one generated suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// RNG seed; equal seeds produce byte-identical suites.
    pub seed: u64,
    /// Minimum number of sweep points the suite expands to (the generator
    /// appends whole scenarios until the budget is met).
    pub points: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            seed: 7,
            points: 12,
        }
    }
}

/// Generates a schema-valid random suite named `gen-<seed>`.
///
/// The result always passes [`Suite::validate`] and expands to at least
/// `params.points` sweep points (clamped to at least 1).
pub fn generate_suite(params: &GenParams) -> Suite {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let target = params.points.max(1);
    let mut scenarios = Vec::new();
    let mut points = 0usize;
    while points < target {
        let index = scenarios.len();
        let scenario = random_scenario(&mut rng, params.seed, index);
        points += scenario
            .sweep
            .as_ref()
            .and_then(|sweep| sweep.caps().ok())
            .map_or(1, |caps| caps.len());
        scenarios.push(scenario);
    }
    Suite::new(&format!("gen-{}", params.seed), scenarios)
}

/// One random scenario: a preset family, a randomised shape, a randomised
/// capacity sweep.
fn random_scenario(rng: &mut SmallRng, seed: u64, index: usize) -> Scenario {
    let family = rng.gen_range(0u32..4);
    let (label, workload, min_cap) = match family {
        0 => (
            "pc",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            1,
        ),
        1 => {
            let tasks = rng.gen_range(3usize..=6);
            (
                "chain",
                WorkloadSpec::preset(PresetSpec::named("chain").with_tasks(tasks)),
                1,
            )
        }
        2 => {
            let tasks = rng.gen_range(3usize..=5);
            let tokens = rng.gen_range(1u64..=2);
            (
                "ring",
                WorkloadSpec::preset(
                    PresetSpec::named("ring")
                        .with_tasks(tasks)
                        .with_initial_tokens(tokens),
                ),
                // Caps below the initial tokens are infeasible by
                // construction; start the sweep where mappings can exist.
                tokens,
            )
        }
        _ => {
            let random = RandomWorkload {
                num_tasks: rng.gen_range(4usize..=10),
                num_processors: rng.gen_range(2usize..=4),
                extra_edge_probability: rng.gen_range(0.1f64..0.4),
                replenishment_interval: rng.gen_range(30.0f64..50.0),
                period: rng.gen_range(8.0f64..14.0),
                // Derive the workload seed from the suite seed so the whole
                // configuration, not just its shape, follows `--seed`.
                seed: seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(index as u64),
                ..RandomWorkload::default()
            };
            (
                "dag",
                WorkloadSpec::preset(PresetSpec::named("random-dag").with_random(random)),
                1,
            )
        }
    };
    let from = min_cap + rng.gen_range(0u64..=2);
    let to = from + rng.gen_range(1u64..=5);
    Scenario::new(&format!("{label}-{index}"), workload)
        .with_sweep(SweepSpec::range(from, to))
        .with_validation(ValidationMode::Sim)
        .expecting_infeasible()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_suites_are_schema_valid_and_meet_the_point_budget() {
        for seed in [0u64, 7, 42, 1234] {
            let suite = generate_suite(&GenParams { seed, points: 10 });
            suite.validate().expect("generated suite validates");
            assert_eq!(suite.name, format!("gen-{seed}"));
            let points: usize = suite
                .scenarios
                .iter()
                .map(|s| s.sweep.as_ref().unwrap().caps().unwrap().len())
                .sum();
            assert!(points >= 10, "seed {seed} expanded to {points} points");
            for scenario in &suite.scenarios {
                assert_eq!(
                    scenario.resolved_validation().unwrap(),
                    Some(ValidationMode::Sim)
                );
                assert_eq!(scenario.expect_infeasible, Some(true));
            }
        }
    }

    #[test]
    fn equal_seeds_generate_byte_identical_suites() {
        let params = GenParams {
            seed: 99,
            points: 16,
        };
        let a = serde_json::to_string_pretty(&generate_suite(&params)).unwrap();
        let b = serde_json::to_string_pretty(&generate_suite(&params)).unwrap();
        assert_eq!(a, b);
        let other = serde_json::to_string_pretty(&generate_suite(&GenParams {
            seed: 100,
            points: 16,
        }))
        .unwrap();
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn a_zero_point_budget_still_yields_one_scenario() {
        let suite = generate_suite(&GenParams { seed: 3, points: 0 });
        assert!(!suite.scenarios.is_empty());
        suite.validate().unwrap();
    }
}
