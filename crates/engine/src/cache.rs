//! Memoization of joint solves, keyed by allocation-free streaming digests.
//!
//! Overlapping sweeps and repeated suite runs solve the same SOCP instance
//! over and over (the `paper` suite alone requests the capacity-1..10
//! producer/consumer solve from four different scenarios). The cache keys
//! each solve by the canonical identity of (configuration, options, flow)
//! and computes every instance exactly once.
//!
//! # The two-level key
//!
//! The identity has two representations:
//!
//! * [`CacheKey`] — a 16-byte `Copy` value holding the 128-bit
//!   [`CanonicalDigest`] of `options ‖ flow ‖ configuration`, computed by
//!   *streaming* the canonical JSON bytes into the digest lanes
//!   ([`serde::Serialize::serialize_canonical`]) — no JSON string, no
//!   `Value` tree, zero heap allocation. This is the `HashMap` key of the
//!   in-memory tier, so the per-lookup cost on the hot path is one digest
//!   pass plus a 16-byte hash.
//! * [`CanonicalKey`] — the materialised form: the full canonical JSON of
//!   the configuration and options plus the flow name, verbatim. Only the
//!   persistent [`SolveStore`] needs it (its on-disk entries repeat the
//!   full key so 64-bit path-hash collisions are detected by string
//!   comparison), so it is built *lazily* — once per distinct key, by the
//!   slot claimer, just before the first disk lookup / store write — and
//!   never on a memory hit.
//!
//! Equal canonical JSON implies equal digests, so the digest key space
//! partitions solves exactly as the old string key did (reports and their
//! embedded hit/miss counters are byte-identical). The converse holds up to
//! a 128-bit collision of two *different* instances: probability ~2⁻⁶⁴ even
//! across billions of keys, which the in-memory tier accepts by design. The
//! disk tier is stricter: a digest collision that reaches the store is
//! caught by the full-key comparison there and heals as a fresh solve (see
//! `docs/ARCHITECTURE.md`, "the two-level cache key").
//!
//! Per-scenario constants are hoisted: a [`ScenarioKeySeed`] folds the
//! options JSON and the flow into the digest state once per scenario, so a
//! capacity sweep only streams each point's (capped) configuration — and
//! serialises [`SolveOptions`] exactly once per scenario, not once per
//! point (regression-guarded by [`options_serialisation_count`]).
//!
//! # Claiming
//!
//! The per-key slot is claimed *before* solving: when two workers race on
//! the same key, the first claims the slot (one miss) and the second blocks
//! on the slot's condvar until the result lands (one hit). Hit/miss counts
//! are therefore deterministic — misses equal the number of distinct keys,
//! regardless of worker count or scheduling — which keeps reports
//! byte-identical across `--jobs` settings.
//!
//! A cache built with [`SolveCache::with_store`] additionally reads through
//! to a persistent [`SolveStore`] on every in-memory miss and writes every
//! fresh, persistable result back, so repeated *processes* skip solves too.
//! Because only the slot claimer touches the disk tier, the store's
//! counters inherit the same determinism: exactly one disk lookup per
//! distinct key, regardless of `--jobs`.

use crate::store::SolveStore;
use bbs_conic::ConicError;
use bbs_taskgraph::{fnv1a, CanonicalDigest, CanonicalHasher, ConfigView, Configuration};
use budget_buffer::{Mapping, MappingError, SolveOptions};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Counts [`SolveOptions`] serialisations performed for key derivation —
/// test instrumentation guarding the "options are serialised at most once
/// per scenario, not once per sweep point" hoist against regressions.
static OPTIONS_SERIALISATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of [`SolveOptions`] serialisations performed for key
/// derivation so far (see [`ScenarioKeySeed::options_json`]). Exposed for
/// regression tests; compare deltas, not absolute values.
pub fn options_serialisation_count() -> u64 {
    OPTIONS_SERIALISATIONS.load(Ordering::Relaxed)
}

/// Serialises tests that assert on [`options_serialisation_count`] deltas
/// (the counter is process-global).
#[cfg(test)]
pub(crate) static COUNTER_TEST_LOCK: Mutex<()> = Mutex::new(());

/// The hot-path identity of one solve: a 128-bit streaming digest of
/// `options ‖ flow ‖ configuration` canonical JSON.
///
/// `Copy`, 16 bytes, and built without a single heap allocation — see the
/// [module docs](self) for how it relates to the materialised
/// [`CanonicalKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    digest: CanonicalDigest,
}

impl CacheKey {
    /// Builds the key for solving `configuration` with `options` under
    /// `flow`. Equivalent to
    /// [`ScenarioKeySeed::new`]`(options, flow).`[`key_for`](ScenarioKeySeed::key_for)`(configuration)`;
    /// sweeps should hoist the seed instead of calling this per point.
    ///
    /// `configuration` is anything that streams the canonical configuration
    /// bytes — an owned [`Configuration`] or a copy-on-write
    /// [`ConfigView`], which stream byte-identically, so views and
    /// materialised clones always derive the same key.
    pub fn new<C: Serialize + ?Sized>(
        configuration: &C,
        options: &SolveOptions,
        flow: &str,
    ) -> Self {
        ScenarioKeySeed::new(options, flow).key_for(configuration)
    }

    /// The digest behind the key (for diagnostics and logs).
    pub fn digest(self) -> CanonicalDigest {
        self.digest
    }
}

/// The per-scenario constants of key derivation, hoisted out of the
/// per-point loop: a digest state pre-folded with the options and the flow
/// name. [`ScenarioKeySeed::key_for`] then derives one point's key by
/// streaming only that point's (capped) configuration on top.
///
/// Creating a seed *streams* the options into the digest — no JSON string
/// exists yet. The options JSON (needed only to materialise
/// [`CanonicalKey`]s for the disk tier) is built lazily by
/// [`ScenarioKeySeed::options_json`], at most once per seed, shared by
/// every point of the scenario.
#[derive(Debug)]
pub struct ScenarioKeySeed {
    /// Digest state after folding `options ‖ 0x00 ‖ flow ‖ 0x00` (the
    /// options as their canonical JSON byte stream; the NUL separators keep
    /// the concatenation unambiguous).
    state: CanonicalHasher,
    options: SolveOptions,
    options_json: std::sync::OnceLock<Arc<str>>,
    flow: Arc<str>,
}

impl ScenarioKeySeed {
    /// Hoists the key-derivation constants of one scenario. Allocation-wise
    /// this only clones the (heap-free) options and the flow name; the
    /// options are hashed by streaming, not serialised.
    pub fn new(options: &SolveOptions, flow: &str) -> Self {
        let mut state = CanonicalHasher::new();
        serde::Serialize::serialize_canonical(options, &mut state);
        state.write(&[0]);
        state.write(flow.as_bytes());
        state.write(&[0]);
        Self {
            state,
            options: options.clone(),
            options_json: std::sync::OnceLock::new(),
            flow: flow.into(),
        }
    }

    /// The key of one solve of `configuration` under this scenario's
    /// options and flow. Allocation-free: clones the pre-folded digest
    /// state (two words) and streams the configuration into it.
    ///
    /// Accepts an owned [`Configuration`] or a copy-on-write
    /// [`ConfigView`] — both stream the same canonical bytes, so sweeps can
    /// derive keys straight from views without ever cloning the
    /// configuration.
    pub fn key_for<C: Serialize + ?Sized>(&self, configuration: &C) -> CacheKey {
        let mut state = self.state.clone();
        configuration.serialize_canonical(&mut state);
        CacheKey {
            digest: state.finish(),
        }
    }

    /// The scenario's options JSON, serialised on first use and shared
    /// (reference-counted) afterwards — so a whole sweep serialises its
    /// options at most once, and runs without a disk tier never do.
    pub fn options_json(&self) -> Arc<str> {
        Arc::clone(self.options_json.get_or_init(|| {
            OPTIONS_SERIALISATIONS.fetch_add(1, Ordering::Relaxed);
            serde_json::to_string(&self.options)
                .expect("options serialise to JSON")
                .into()
        }))
    }

    /// The flow name the seed was built with.
    pub fn flow(&self) -> Arc<str> {
        Arc::clone(&self.flow)
    }
}

/// The fully materialised canonical identity of one solve — what the
/// persistent [`SolveStore`] addresses entries by and writes into them.
///
/// Built lazily (once per distinct key, never on a memory hit) via
/// [`CanonicalKey::materialise`]; [`CanonicalKey::from_parts`] is the
/// stand-alone constructor for tests and store management code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// FNV-1a fingerprint of the configuration's canonical JSON (the low
    /// digest lane) — kept in store entries for diagnostics.
    pub fingerprint: u64,
    /// The canonical JSON of the (capped) configuration, kept verbatim so
    /// store-entry equality is exact: a 64-bit path-hash collision (or a
    /// 128-bit digest collision) can therefore never alias two different
    /// problems to one entry.
    pub configuration: String,
    /// Canonical JSON of the solve options.
    pub options: String,
    /// Flow name (`joint`, `two-phase-min`, `two-phase-fair`).
    pub flow: String,
}

impl CanonicalKey {
    /// Materialises the canonical key from a configuration and an
    /// already-serialised options JSON (the hoisted
    /// [`ScenarioKeySeed::options_json`]).
    ///
    /// `configuration` may be an owned [`Configuration`] or a
    /// [`ConfigView`]: the canonical JSON is streamed straight from the
    /// value, so a view produces exactly the bytes its materialised clone
    /// would — store paths and on-disk entries are unchanged.
    pub fn materialise<C: Serialize + ?Sized>(
        configuration: &C,
        options_json: &str,
        flow: &str,
    ) -> Self {
        let mut json = String::new();
        configuration.serialize_canonical(&mut json);
        Self {
            fingerprint: fnv1a(json.as_bytes()),
            configuration: json,
            options: options_json.to_string(),
            flow: flow.to_string(),
        }
    }

    /// Builds the canonical key from scratch, serialising the options —
    /// the stand-alone route used by tests and store management code.
    pub fn from_parts(configuration: &Configuration, options: &SolveOptions, flow: &str) -> Self {
        let options_json = serde_json::to_string(options).expect("options serialise to JSON");
        Self::materialise(configuration, &options_json, flow)
    }
}

/// A source of the effective [`Configuration`] a cache key was derived
/// from — either the configuration itself or a copy-on-write
/// [`ConfigView`].
///
/// [`SolveCache::solve_with`] is generic over this so the executor can pass
/// sweep views straight through: the disk tier resolves the effective
/// configuration *lazily*, only on the slot-claimer path with a store
/// present, which is exactly the boundary where a capped view must
/// materialise anyway.
pub trait KeyConfiguration {
    /// The effective configuration behind the key. For a capped
    /// [`ConfigView`] this materialises (and caches) the capped clone.
    fn effective(&self) -> &Configuration;
}

impl KeyConfiguration for Configuration {
    fn effective(&self) -> &Configuration {
        self
    }
}

impl KeyConfiguration for ConfigView {
    fn effective(&self) -> &Configuration {
        self.config()
    }
}

/// Hit/miss counters of a [`SolveCache`]'s in-memory tier.
///
/// Both counters are functions of the suite definition alone — misses equal
/// the number of distinct keys — so they are safe to embed in the
/// deterministic [`SuiteReport`](crate::SuiteReport). Disk-tier counters
/// (which depend on what previous runs left behind) live in
/// [`StoreStats`](crate::StoreStats) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on in-flight
    /// solves).
    pub hits: u64,
    /// Lookups that had to go below the in-memory tier (a disk hit or a
    /// fresh solve).
    pub misses: u64,
}

/// Where one solve result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveSource {
    /// Computed by the solver in this run (or the cache was bypassed).
    Fresh,
    /// Answered by the in-memory tier (including waits on another worker's
    /// in-flight solve of the same key).
    Memory,
    /// Answered by the persistent [`SolveStore`] tier.
    Disk,
}

impl SolveSource {
    /// Whether the result was served by either cache tier.
    pub fn is_hit(self) -> bool {
        !matches!(self, SolveSource::Fresh)
    }
}

/// The error recorded for a solve that panicked.
///
/// Both the slot poison-fill below and the executor's per-item panic
/// boundary use this exact constructor, so the claimer of a panicking key
/// and every waiter blocked on its slot report byte-identical errors — a
/// panic therefore cannot make reports diverge across `--jobs` settings.
pub(crate) fn panicked_solve_error() -> MappingError {
    MappingError::Solver(ConicError::NumericalBreakdown {
        iteration: 0,
        detail: "solve panicked".to_string(),
    })
}

/// The placeholder error a cancelled run's unsolved work items retire
/// with. It keeps the executor's slot accounting whole ("every work item
/// reports exactly once") but is never reported: a run whose
/// [`CancelToken`](crate::CancelToken) fired yields
/// [`EngineError::Cancelled`](crate::EngineError::Cancelled) instead of an
/// outcome.
pub(crate) fn cancelled_solve_error() -> MappingError {
    MappingError::Solver(ConicError::NumericalBreakdown {
        iteration: 0,
        detail: "solve cancelled".to_string(),
    })
}

/// One memoization slot: filled exactly once, awaited by later lookups.
struct Slot {
    result: Mutex<Option<Result<Mapping, MappingError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// A thread-safe memoization table for joint solves, optionally layered on
/// a persistent [`SolveStore`].
///
/// # Example
///
/// ```
/// use bbs_engine::{CacheKey, CanonicalKey, SolveCache, SolveSource};
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use budget_buffer::{compute_mapping, with_capacity_cap, SolveOptions};
///
/// let configuration =
///     with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
/// let options = SolveOptions::default().prefer_budget_minimisation();
/// let cache = SolveCache::new();
/// let key = CacheKey::new(&configuration, &options, "joint");
/// // Materialised only if a disk tier needs it — never on this in-memory
/// // cache, and never on a hit.
/// let canonical = || CanonicalKey::from_parts(&configuration, &options, "joint");
///
/// let (first, source) = cache.solve_with(key, &configuration, canonical, || {
///     compute_mapping(&configuration, &options)
/// });
/// assert_eq!(source, SolveSource::Fresh);
///
/// // The second lookup never invokes the solve closure.
/// let canonical = || CanonicalKey::from_parts(&configuration, &options, "joint");
/// let (second, source) = cache.solve_with(key, &configuration, canonical, || unreachable!());
/// assert_eq!(source, SolveSource::Memory);
/// assert_eq!(first.unwrap(), second.unwrap());
/// ```
#[derive(Default)]
pub struct SolveCache {
    slots: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    store: Option<SolveStore>,
}

impl SolveCache {
    /// An empty cache with no persistent tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty in-memory cache layered on `store`: in-memory misses read
    /// through to disk, and fresh results are written back.
    pub fn with_store(store: SolveStore) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The persistent tier, when the cache was built with
    /// [`SolveCache::with_store`].
    pub fn store(&self) -> Option<&SolveStore> {
        self.store.as_ref()
    }

    /// Returns the memoized result for `key`, calling `solve` at most once
    /// per distinct key across all threads (and not at all when the
    /// persistent tier answers). `configuration` must be the configuration
    /// the key was built from — a [`Configuration`] or a [`ConfigView`];
    /// the disk tier rebuilds mappings against its
    /// [effective](KeyConfiguration::effective) form instead of re-parsing
    /// canonical JSON, resolved lazily so views only materialise on the
    /// claimer path of a store-backed cache. `canonical` materialises the
    /// full [`CanonicalKey`] for the disk tier; it runs at most once per
    /// distinct key (the slot claimer, store present), so hits — memory or
    /// in-flight waits — never serialise anything. The [`SolveSource`]
    /// reports which tier, if any, served the result.
    pub fn solve_with(
        &self,
        key: CacheKey,
        configuration: &impl KeyConfiguration,
        canonical: impl FnOnce() -> CanonicalKey,
        solve: impl FnOnce() -> Result<Mapping, MappingError>,
    ) -> (Result<Mapping, MappingError>, SolveSource) {
        let (slot, claimed) = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            match slots.entry(key) {
                Entry::Occupied(entry) => (Arc::clone(entry.get()), false),
                Entry::Vacant(entry) => (Arc::clone(entry.insert(Arc::new(Slot::new()))), true),
            }
        };
        if claimed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // A panicking lookup — whether in the disk tier or in the solve
            // itself — must still fill the slot, or every waiter on this
            // key would block forever and the joining scope would hang
            // instead of propagating the panic.
            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Only the claimer materialises the canonical key and
                // consults the disk tier, so the materialisation cost is
                // once per distinct key and disk hit/miss counts stay
                // deterministic across worker counts.
                let canonical_key = self.store.as_ref().map(|_| canonical());
                let store = self.store.as_ref().zip(canonical_key.as_ref());
                match store.and_then(|(store, key)| store.load(key, configuration.effective())) {
                    Some(result) => (result, SolveSource::Disk, canonical_key),
                    None => (solve(), SolveSource::Fresh, canonical_key),
                }
            }));
            let (result, source, canonical_key) = match computed {
                Ok(computed) => computed,
                Err(panic) => {
                    let poison = Err(panicked_solve_error());
                    let mut guard = slot.result.lock().expect("slot lock poisoned");
                    *guard = Some(poison);
                    slot.ready.notify_all();
                    drop(guard);
                    std::panic::resume_unwind(panic);
                }
            };
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            *guard = Some(result.clone());
            slot.ready.notify_all();
            drop(guard);
            if source == SolveSource::Fresh {
                if let Some((store, key)) = self.store.as_ref().zip(canonical_key.as_ref()) {
                    store.save(key, &result);
                }
            }
            (result, source)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            while guard.is_none() {
                guard = slot.ready.wait(guard).expect("slot wait poisoned");
            }
            (guard.clone().expect("slot filled"), SolveSource::Memory)
        }
    }

    /// Current hit/miss counters of the in-memory tier.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use budget_buffer::{compute_mapping, with_capacity_cap};

    fn paper_options() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    /// The materialisation closure for tests that never consult a store.
    fn unused_canonical() -> CanonicalKey {
        panic!("canonical key must not be materialised without a store")
    }

    #[test]
    fn second_lookup_is_a_hit_with_equal_result() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &options, "joint");
        let (first, source1) = cache.solve_with(key, &configuration, unused_canonical, || {
            compute_mapping(&configuration, &options)
        });
        let (second, source2) = cache.solve_with(key, &configuration, unused_canonical, || {
            panic!("must not re-solve")
        });
        assert_eq!(source1, SolveSource::Fresh);
        assert!(!source1.is_hit());
        assert_eq!(source2, SolveSource::Memory);
        assert!(source2.is_hit());
        assert_eq!(first.unwrap(), second.unwrap());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_caps_use_distinct_keys() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let k4 = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let k5 = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        assert_ne!(k4, k5);
        let other_flow = CacheKey::new(&with_capacity_cap(&base, 4), &options, "two-phase-min");
        assert_ne!(k4, other_flow);
        let other_options = CacheKey::new(
            &with_capacity_cap(&base, 4),
            &paper_options().with_cutting_plane(),
            "joint",
        );
        assert_ne!(k4, other_options);
    }

    #[test]
    fn seed_derived_keys_match_standalone_construction() {
        // The hoisted per-scenario route and the stand-alone constructor
        // must agree key-for-key, or sweeps and single solves of the same
        // instance would stop deduplicating.
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let seed = ScenarioKeySeed::new(&options, "joint");
        for cap in 1..=6u64 {
            let capped = with_capacity_cap(&base, cap);
            assert_eq!(
                seed.key_for(&capped),
                CacheKey::new(&capped, &options, "joint")
            );
        }
        assert_eq!(seed.key_for(&base), CacheKey::new(&base, &options, "joint"));
    }

    #[test]
    fn materialised_and_standalone_canonical_keys_agree() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 3);
        let options = paper_options();
        let seed = ScenarioKeySeed::new(&options, "joint");
        let materialised =
            CanonicalKey::materialise(&configuration, &seed.options_json(), &seed.flow());
        assert_eq!(
            materialised,
            CanonicalKey::from_parts(&configuration, &options, "joint")
        );
        assert_eq!(
            materialised.fingerprint,
            configuration.canonical_fingerprint()
        );
        assert_eq!(materialised.configuration, configuration.canonical_json());
    }

    #[test]
    fn view_derived_keys_match_clone_derived_keys() {
        // The executor derives keys (and canonical keys) straight from
        // copy-on-write views; both must be byte-identical to the
        // clone-derived forms or the store would fork into a second key
        // space.
        let base = Arc::new(producer_consumer(PaperParameters::default(), None));
        let options = paper_options();
        let seed = ScenarioKeySeed::new(&options, "joint");
        for cap in 1..=6u64 {
            let view = ConfigView::with_capacity_cap(Arc::clone(&base), cap);
            let clone = with_capacity_cap(&base, cap);
            assert_eq!(seed.key_for(&view), seed.key_for(&clone));
            let materialised = CanonicalKey::materialise(&view, &seed.options_json(), &seed.flow());
            assert_eq!(
                materialised,
                CanonicalKey::from_parts(&clone, &options, "joint")
            );
            assert_eq!(materialised.configuration, clone.canonical_json());
        }
        let view = ConfigView::new(Arc::clone(&base));
        assert_eq!(seed.key_for(&view), seed.key_for(base.as_ref()));
    }

    #[test]
    fn options_are_serialised_at_most_once_per_seed_never_per_key() {
        let _guard = COUNTER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let before = options_serialisation_count();
        let seed = ScenarioKeySeed::new(&options, "joint");
        for cap in 1..=6u64 {
            let _ = seed.key_for(&with_capacity_cap(&base, cap));
        }
        assert_eq!(
            options_serialisation_count() - before,
            0,
            "key derivation alone must never serialise options"
        );
        let first = seed.options_json();
        let second = seed.options_json();
        assert_eq!(first, second);
        assert_eq!(
            options_serialisation_count() - before,
            1,
            "materialisation must serialise exactly once per seed"
        );
    }

    #[test]
    fn key_equality_requires_both_digest_lanes() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let a = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let b = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        assert_ne!(a.digest().lo, b.digest().lo);
        assert_ne!(a.digest().hi, b.digest().hi);
    }

    #[test]
    fn failures_are_memoized_too() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let (first, _) = cache.solve_with(key, &configuration, unused_canonical, || {
            Err(MappingError::Infeasible {
                detail: "injected".to_string(),
            })
        });
        assert!(first.is_err());
        let (second, source) = cache.solve_with(key, &configuration, unused_canonical, || {
            panic!("must not re-solve")
        });
        assert_eq!(source, SolveSource::Memory);
        assert_eq!(first, second);
    }

    #[test]
    fn panicking_solve_poisons_the_slot_instead_of_deadlocking() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.solve_with(key, &configuration, unused_canonical, || {
                panic!("injected solver panic")
            })
        }));
        assert!(panicked.is_err(), "the claimer must re-raise the panic");
        // Waiters (and later lookups) get a poison error instead of hanging.
        let (result, source) = cache.solve_with(key, &configuration, unused_canonical, || {
            panic!("must not re-solve")
        });
        assert_eq!(source, SolveSource::Memory);
        assert!(result.unwrap_err().to_string().contains("panicked"));
    }

    #[test]
    fn disk_tier_answers_fresh_caches() {
        let directory = crate::testutil::TempDir::new("cache-disk-tier");
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let key = CacheKey::new(&configuration, &options, "joint");
        let canonical = || CanonicalKey::from_parts(&configuration, &options, "joint");

        let cold = SolveCache::with_store(SolveStore::open(directory.path()).unwrap());
        let (first, source) = cold.solve_with(key, &configuration, canonical, || {
            compute_mapping(&configuration, &options)
        });
        assert_eq!(source, SolveSource::Fresh);
        assert_eq!(cold.store().unwrap().stats().stored, 1);
        // Same process, same cache: the in-memory tier answers first, and
        // the canonical key is not rebuilt.
        let (_, source) = cold.solve_with(key, &configuration, unused_canonical, || {
            panic!("must not re-solve")
        });
        assert_eq!(source, SolveSource::Memory);

        // A fresh cache on the same directory — a new process — reads disk.
        let canonical = || CanonicalKey::from_parts(&configuration, &options, "joint");
        let warm = SolveCache::with_store(SolveStore::open(directory.path()).unwrap());
        let (second, source) = warm.solve_with(key, &configuration, canonical, || {
            panic!("must not re-solve")
        });
        assert_eq!(source, SolveSource::Disk);
        assert_eq!(first.unwrap(), second.unwrap());
        let stats = warm.store().unwrap().stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.fresh_solves, 0);
        // The in-memory tier still counts the lookup as its own miss.
        assert_eq!(warm.stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn concurrent_lookups_solve_once() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let key = CacheKey::new(&configuration, &options, "joint");
                    let (result, _) =
                        cache.solve_with(key, &configuration, unused_canonical, || {
                            solves.fetch_add(1, Ordering::Relaxed);
                            compute_mapping(&configuration, &options)
                        });
                    assert!(result.is_ok());
                });
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
