//! Memoization of joint solves.
//!
//! Overlapping sweeps and repeated suite runs solve the same SOCP instance
//! over and over (the `paper` suite alone requests the capacity-1..10
//! producer/consumer solve from four different scenarios). The cache keys
//! each solve by a canonical hash of (configuration, options, flow) and
//! computes every instance exactly once.
//!
//! The per-key slot is claimed *before* solving: when two workers race on
//! the same key, the first claims the slot (one miss) and the second blocks
//! on the slot's condvar until the result lands (one hit). Hit/miss counts
//! are therefore deterministic — misses equal the number of distinct keys,
//! regardless of worker count or scheduling — which keeps reports
//! byte-identical across `--jobs` settings.
//!
//! A cache built with [`SolveCache::with_store`] additionally reads through
//! to a persistent [`SolveStore`] on every in-memory miss and writes every
//! fresh, persistable result back, so repeated *processes* skip solves too.
//! Because only the slot claimer touches the disk tier, the store's
//! counters inherit the same determinism: exactly one disk lookup per
//! distinct key, regardless of `--jobs`.

use crate::store::SolveStore;
use bbs_conic::ConicError;
use bbs_taskgraph::Configuration;
use budget_buffer::{Mapping, MappingError, SolveOptions};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The canonical identity of one solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a fingerprint of the configuration's canonical JSON — a cheap
    /// prehash for diagnostics and logs.
    pub fingerprint: u64,
    /// The canonical JSON of the (capped) configuration, kept verbatim so
    /// equality is exact: a 64-bit fingerprint collision can therefore
    /// never alias two different problems to one cache slot.
    pub configuration: String,
    /// Canonical JSON of the solve options.
    pub options: String,
    /// Flow name (`joint`, `two-phase-min`, `two-phase-fair`).
    pub flow: String,
}

impl CacheKey {
    /// Builds the key for solving `configuration` with `options` under
    /// `flow`.
    pub fn new(configuration: &Configuration, options: &SolveOptions, flow: &str) -> Self {
        let configuration = configuration.canonical_json();
        Self {
            fingerprint: bbs_taskgraph::fnv1a(configuration.as_bytes()),
            configuration,
            options: serde_json::to_string(options).expect("options serialise to JSON"),
            flow: flow.to_string(),
        }
    }
}

/// Hit/miss counters of a [`SolveCache`]'s in-memory tier.
///
/// Both counters are functions of the suite definition alone — misses equal
/// the number of distinct keys — so they are safe to embed in the
/// deterministic [`SuiteReport`](crate::SuiteReport). Disk-tier counters
/// (which depend on what previous runs left behind) live in
/// [`StoreStats`](crate::StoreStats) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on in-flight
    /// solves).
    pub hits: u64,
    /// Lookups that had to go below the in-memory tier (a disk hit or a
    /// fresh solve).
    pub misses: u64,
}

/// Where one solve result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveSource {
    /// Computed by the solver in this run (or the cache was bypassed).
    Fresh,
    /// Answered by the in-memory tier (including waits on another worker's
    /// in-flight solve of the same key).
    Memory,
    /// Answered by the persistent [`SolveStore`] tier.
    Disk,
}

impl SolveSource {
    /// Whether the result was served by either cache tier.
    pub fn is_hit(self) -> bool {
        !matches!(self, SolveSource::Fresh)
    }
}

/// The error recorded for a solve that panicked.
///
/// Both the slot poison-fill below and the executor's per-item panic
/// boundary use this exact constructor, so the claimer of a panicking key
/// and every waiter blocked on its slot report byte-identical errors — a
/// panic therefore cannot make reports diverge across `--jobs` settings.
pub(crate) fn panicked_solve_error() -> MappingError {
    MappingError::Solver(ConicError::NumericalBreakdown {
        iteration: 0,
        detail: "solve panicked".to_string(),
    })
}

/// One memoization slot: filled exactly once, awaited by later lookups.
struct Slot {
    result: Mutex<Option<Result<Mapping, MappingError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// A thread-safe memoization table for joint solves, optionally layered on
/// a persistent [`SolveStore`].
///
/// # Example
///
/// ```
/// use bbs_engine::{CacheKey, SolveCache, SolveSource};
/// use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
/// use budget_buffer::{compute_mapping, with_capacity_cap, SolveOptions};
///
/// let configuration =
///     with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
/// let options = SolveOptions::default().prefer_budget_minimisation();
/// let cache = SolveCache::new();
/// let key = CacheKey::new(&configuration, &options, "joint");
///
/// let (first, source) = cache.solve_with(key.clone(), &configuration, || {
///     compute_mapping(&configuration, &options)
/// });
/// assert_eq!(source, SolveSource::Fresh);
///
/// // The second lookup never invokes the closure.
/// let (second, source) = cache.solve_with(key, &configuration, || unreachable!());
/// assert_eq!(source, SolveSource::Memory);
/// assert_eq!(first.unwrap(), second.unwrap());
/// ```
#[derive(Default)]
pub struct SolveCache {
    slots: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    store: Option<SolveStore>,
}

impl SolveCache {
    /// An empty cache with no persistent tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty in-memory cache layered on `store`: in-memory misses read
    /// through to disk, and fresh results are written back.
    pub fn with_store(store: SolveStore) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The persistent tier, when the cache was built with
    /// [`SolveCache::with_store`].
    pub fn store(&self) -> Option<&SolveStore> {
        self.store.as_ref()
    }

    /// Returns the memoized result for `key`, calling `solve` at most once
    /// per distinct key across all threads (and not at all when the
    /// persistent tier answers). `configuration` must be the configuration
    /// the key was built from — the disk tier rebuilds mappings against it
    /// instead of re-parsing the key's canonical JSON. The [`SolveSource`]
    /// reports which tier — if any — served the result.
    pub fn solve_with(
        &self,
        key: CacheKey,
        configuration: &Configuration,
        solve: impl FnOnce() -> Result<Mapping, MappingError>,
    ) -> (Result<Mapping, MappingError>, SolveSource) {
        let (slot, claimed, disk_key) = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            match slots.entry(key) {
                Entry::Occupied(entry) => (Arc::clone(entry.get()), false, None),
                Entry::Vacant(entry) => {
                    // Only the claimer needs the key again (for the disk
                    // tier), so the non-trivial canonical-JSON clone is
                    // paid once per distinct key, not per lookup.
                    let disk_key = self.store.as_ref().map(|_| entry.key().clone());
                    (
                        Arc::clone(entry.insert(Arc::new(Slot::new()))),
                        true,
                        disk_key,
                    )
                }
            }
        };
        if claimed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // A panicking lookup — whether in the disk tier or in the solve
            // itself — must still fill the slot, or every waiter on this
            // key would block forever and the joining scope would hang
            // instead of propagating the panic.
            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Only the claimer consults the disk tier, so disk hit/miss
                // counts stay deterministic across worker counts.
                let store = self.store.as_ref().zip(disk_key.as_ref());
                match store.and_then(|(store, key)| store.load(key, configuration)) {
                    Some(result) => (result, SolveSource::Disk),
                    None => (solve(), SolveSource::Fresh),
                }
            }));
            let (result, source) = match computed {
                Ok(computed) => computed,
                Err(panic) => {
                    let poison = Err(panicked_solve_error());
                    let mut guard = slot.result.lock().expect("slot lock poisoned");
                    *guard = Some(poison);
                    slot.ready.notify_all();
                    drop(guard);
                    std::panic::resume_unwind(panic);
                }
            };
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            *guard = Some(result.clone());
            slot.ready.notify_all();
            drop(guard);
            if source == SolveSource::Fresh {
                if let Some((store, key)) = self.store.as_ref().zip(disk_key.as_ref()) {
                    store.save(key, &result);
                }
            }
            (result, source)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            while guard.is_none() {
                guard = slot.ready.wait(guard).expect("slot wait poisoned");
            }
            (guard.clone().expect("slot filled"), SolveSource::Memory)
        }
    }

    /// Current hit/miss counters of the in-memory tier.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use budget_buffer::{compute_mapping, with_capacity_cap};

    fn paper_options() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn second_lookup_is_a_hit_with_equal_result() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &options, "joint");
        let (first, source1) = cache.solve_with(key.clone(), &configuration, || {
            compute_mapping(&configuration, &options)
        });
        let (second, source2) =
            cache.solve_with(key, &configuration, || panic!("must not re-solve"));
        assert_eq!(source1, SolveSource::Fresh);
        assert!(!source1.is_hit());
        assert_eq!(source2, SolveSource::Memory);
        assert!(source2.is_hit());
        assert_eq!(first.unwrap(), second.unwrap());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_caps_use_distinct_keys() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let k4 = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let k5 = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        assert_ne!(k4, k5);
        let other_flow = CacheKey::new(&with_capacity_cap(&base, 4), &options, "two-phase-min");
        assert_ne!(k4, other_flow);
        let other_options = CacheKey::new(
            &with_capacity_cap(&base, 4),
            &paper_options().with_cutting_plane(),
            "joint",
        );
        assert_ne!(k4, other_options);
    }

    #[test]
    fn key_equality_survives_a_fingerprint_collision() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let a = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let mut b = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        // Simulate a 64-bit collision: equality must still separate the two
        // problems because the full canonical JSON is compared.
        b.fingerprint = a.fingerprint;
        assert_ne!(a, b);
    }

    #[test]
    fn failures_are_memoized_too() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let (first, _) = cache.solve_with(key.clone(), &configuration, || {
            Err(MappingError::Infeasible {
                detail: "injected".to_string(),
            })
        });
        assert!(first.is_err());
        let (second, source) =
            cache.solve_with(key, &configuration, || panic!("must not re-solve"));
        assert_eq!(source, SolveSource::Memory);
        assert_eq!(first, second);
    }

    #[test]
    fn panicking_solve_poisons_the_slot_instead_of_deadlocking() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.solve_with(key.clone(), &configuration, || {
                panic!("injected solver panic")
            })
        }));
        assert!(panicked.is_err(), "the claimer must re-raise the panic");
        // Waiters (and later lookups) get a poison error instead of hanging.
        let (result, source) =
            cache.solve_with(key, &configuration, || panic!("must not re-solve"));
        assert_eq!(source, SolveSource::Memory);
        assert!(result.unwrap_err().to_string().contains("panicked"));
    }

    #[test]
    fn disk_tier_answers_fresh_caches() {
        let directory = crate::testutil::TempDir::new("cache-disk-tier");
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let key = CacheKey::new(&configuration, &options, "joint");

        let cold = SolveCache::with_store(SolveStore::open(directory.path()).unwrap());
        let (first, source) = cold.solve_with(key.clone(), &configuration, || {
            compute_mapping(&configuration, &options)
        });
        assert_eq!(source, SolveSource::Fresh);
        assert_eq!(cold.store().unwrap().stats().stored, 1);
        // Same process, same cache: the in-memory tier answers first.
        let (_, source) =
            cold.solve_with(key.clone(), &configuration, || panic!("must not re-solve"));
        assert_eq!(source, SolveSource::Memory);

        // A fresh cache on the same directory — a new process — reads disk.
        let warm = SolveCache::with_store(SolveStore::open(directory.path()).unwrap());
        let (second, source) = warm.solve_with(key, &configuration, || panic!("must not re-solve"));
        assert_eq!(source, SolveSource::Disk);
        assert_eq!(first.unwrap(), second.unwrap());
        let stats = warm.store().unwrap().stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.fresh_solves, 0);
        // The in-memory tier still counts the lookup as its own miss.
        assert_eq!(warm.stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn concurrent_lookups_solve_once() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let key = CacheKey::new(&configuration, &options, "joint");
                    let (result, _) = cache.solve_with(key, &configuration, || {
                        solves.fetch_add(1, Ordering::Relaxed);
                        compute_mapping(&configuration, &options)
                    });
                    assert!(result.is_ok());
                });
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
