//! Memoization of joint solves.
//!
//! Overlapping sweeps and repeated suite runs solve the same SOCP instance
//! over and over (the `paper` suite alone requests the capacity-1..10
//! producer/consumer solve from four different scenarios). The cache keys
//! each solve by a canonical hash of (configuration, options, flow) and
//! computes every instance exactly once.
//!
//! The per-key slot is claimed *before* solving: when two workers race on
//! the same key, the first claims the slot (one miss) and the second blocks
//! on the slot's condvar until the result lands (one hit). Hit/miss counts
//! are therefore deterministic — misses equal the number of distinct keys,
//! regardless of worker count or scheduling — which keeps reports
//! byte-identical across `--jobs` settings.

use bbs_conic::ConicError;
use bbs_taskgraph::Configuration;
use budget_buffer::{Mapping, MappingError, SolveOptions};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The canonical identity of one solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a fingerprint of the configuration's canonical JSON — a cheap
    /// prehash for diagnostics and logs.
    pub fingerprint: u64,
    /// The canonical JSON of the (capped) configuration, kept verbatim so
    /// equality is exact: a 64-bit fingerprint collision can therefore
    /// never alias two different problems to one cache slot.
    pub configuration: String,
    /// Canonical JSON of the solve options.
    pub options: String,
    /// Flow name (`joint`, `two-phase-min`, `two-phase-fair`).
    pub flow: String,
}

impl CacheKey {
    /// Builds the key for solving `configuration` with `options` under
    /// `flow`.
    pub fn new(configuration: &Configuration, options: &SolveOptions, flow: &str) -> Self {
        let configuration = configuration.canonical_json();
        Self {
            fingerprint: bbs_taskgraph::fnv1a(configuration.as_bytes()),
            configuration,
            options: serde_json::to_string(options).expect("options serialise to JSON"),
            flow: flow.to_string(),
        }
    }
}

/// Hit/miss counters of a [`SolveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on in-flight
    /// solves).
    pub hits: u64,
    /// Lookups that had to solve.
    pub misses: u64,
}

/// One memoization slot: filled exactly once, awaited by later lookups.
struct Slot {
    result: Mutex<Option<Result<Mapping, MappingError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// A thread-safe memoization table for joint solves.
#[derive(Default)]
pub struct SolveCache {
    slots: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized result for `key`, calling `solve` exactly once
    /// per distinct key across all threads. The boolean is `true` for a
    /// cache hit.
    pub fn solve_with(
        &self,
        key: CacheKey,
        solve: impl FnOnce() -> Result<Mapping, MappingError>,
    ) -> (Result<Mapping, MappingError>, bool) {
        let (slot, claimed) = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            match slots.entry(key) {
                Entry::Occupied(entry) => (Arc::clone(entry.get()), false),
                Entry::Vacant(entry) => (Arc::clone(entry.insert(Arc::new(Slot::new()))), true),
            }
        };
        if claimed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // A panicking solve must still fill the slot, or every waiter on
            // this key would block forever and the joining scope would hang
            // instead of propagating the panic.
            let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(solve)) {
                Ok(result) => result,
                Err(panic) => {
                    let poison = Err(MappingError::Solver(ConicError::NumericalBreakdown {
                        iteration: 0,
                        detail: "solve panicked; see the primary failure".to_string(),
                    }));
                    let mut guard = slot.result.lock().expect("slot lock poisoned");
                    *guard = Some(poison);
                    slot.ready.notify_all();
                    drop(guard);
                    std::panic::resume_unwind(panic);
                }
            };
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            *guard = Some(result.clone());
            slot.ready.notify_all();
            drop(guard);
            (result, false)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut guard = slot.result.lock().expect("slot lock poisoned");
            while guard.is_none() {
                guard = slot.ready.wait(guard).expect("slot wait poisoned");
            }
            (guard.clone().expect("slot filled"), true)
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use budget_buffer::{compute_mapping, with_capacity_cap};

    fn paper_options() -> SolveOptions {
        SolveOptions::default().prefer_budget_minimisation()
    }

    #[test]
    fn second_lookup_is_a_hit_with_equal_result() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &options, "joint");
        let (first, hit1) =
            cache.solve_with(key.clone(), || compute_mapping(&configuration, &options));
        let (second, hit2) = cache.solve_with(key, || panic!("must not re-solve"));
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first.unwrap(), second.unwrap());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_caps_use_distinct_keys() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let k4 = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let k5 = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        assert_ne!(k4, k5);
        let other_flow = CacheKey::new(&with_capacity_cap(&base, 4), &options, "two-phase-min");
        assert_ne!(k4, other_flow);
        let other_options = CacheKey::new(
            &with_capacity_cap(&base, 4),
            &paper_options().with_cutting_plane(),
            "joint",
        );
        assert_ne!(k4, other_options);
    }

    #[test]
    fn key_equality_survives_a_fingerprint_collision() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = paper_options();
        let a = CacheKey::new(&with_capacity_cap(&base, 4), &options, "joint");
        let mut b = CacheKey::new(&with_capacity_cap(&base, 5), &options, "joint");
        // Simulate a 64-bit collision: equality must still separate the two
        // problems because the full canonical JSON is compared.
        b.fingerprint = a.fingerprint;
        assert_ne!(a, b);
    }

    #[test]
    fn failures_are_memoized_too() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let (first, _) = cache.solve_with(key.clone(), || {
            Err(MappingError::Infeasible {
                detail: "injected".to_string(),
            })
        });
        assert!(first.is_err());
        let (second, hit) = cache.solve_with(key, || panic!("must not re-solve"));
        assert!(hit);
        assert_eq!(first, second);
    }

    #[test]
    fn panicking_solve_poisons_the_slot_instead_of_deadlocking() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &paper_options(), "joint");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.solve_with(key.clone(), || panic!("injected solver panic"))
        }));
        assert!(panicked.is_err(), "the claimer must re-raise the panic");
        // Waiters (and later lookups) get a poison error instead of hanging.
        let (result, hit) = cache.solve_with(key, || panic!("must not re-solve"));
        assert!(hit);
        assert!(result.unwrap_err().to_string().contains("panicked"));
    }

    #[test]
    fn concurrent_lookups_solve_once() {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = paper_options();
        let cache = SolveCache::new();
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let key = CacheKey::new(&configuration, &options, "joint");
                    let (result, _) = cache.solve_with(key, || {
                        solves.fetch_add(1, Ordering::Relaxed);
                        compute_mapping(&configuration, &options)
                    });
                    assert!(result.is_ok());
                });
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
