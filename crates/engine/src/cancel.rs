//! Cooperative cancellation of in-flight suite runs.
//!
//! A [`CancelToken`] is a shared atomic flag: the owner of a submission
//! (typically a [`serve`](crate::serve) session reacting to a client
//! disconnect, a `cancel` request, or an expired deadline) fires it, and
//! every worker draining that submission's work items observes it at the
//! top of its loop — the next item is retired *unsolved* instead of
//! executed. The item currently executing is allowed to finish, so a
//! cancelled run aborts within one work item per worker and all slot
//! accounting stays intact ("every work item reports exactly once").
//!
//! Cancellation never corrupts completed work: a run that observes its
//! token returns [`EngineError::Cancelled`](crate::EngineError::Cancelled)
//! instead of an outcome, so no partially-solved report is ever rendered,
//! and the determinism invariants hold for every run that *does* complete.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable one-way cancellation flag (see the [module docs](self)).
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag. The flag only ever moves from "live" to "cancelled"; there is no
/// reset — mint a fresh token per submission instead.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token: every holder of a clone observes the cancellation
    /// on its next check. Idempotent.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        clone.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
