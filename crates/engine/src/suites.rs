//! Built-in suites: the paper's six experiments (and friends) as data.
//!
//! These are the declarative equivalents of what the `figures` binary used
//! to hardcode; the binary now just names them. `paper` reproduces the six
//! experiments of the paper, `paper-plus` adds the `ring` scenario,
//! `smoke` is a three-point suite cheap enough for CI gates and tests,
//! `sweep-10k` is the 10 000-point expansion/scheduling stress sweep, and
//! `gen-smoke` is a pinned-seed sample of the scenario generator with
//! validation on every scenario.

use crate::gen::{generate_suite, GenParams};
use crate::scenario::{Flow, Scenario, Suite, SweepSpec, ValidationMode, WorkloadSpec};
use bbs_taskgraph::presets::{PresetSpec, RandomWorkload};
use budget_buffer::SolveOptions;

/// The task sizes of the run-time scaling experiment (E4).
pub const RUNTIME_SIZES: [usize; 5] = [4, 8, 12, 16, 24];

/// Names of the built-in suites, in the order `bbs list` prints them.
pub fn builtin_suite_names() -> &'static [&'static str] {
    &["paper", "paper-plus", "smoke", "sweep-10k", "gen-smoke"]
}

/// Looks a built-in suite up by name.
pub fn builtin_suite(name: &str) -> Option<Suite> {
    match name {
        "paper" => Some(paper_suite()),
        "paper-plus" => Some(paper_plus_suite()),
        "smoke" => Some(smoke_suite()),
        "sweep-10k" => Some(sweep_10k_suite()),
        "gen-smoke" => Some(gen_smoke_suite()),
        _ => None,
    }
}

fn producer_consumer_workload() -> WorkloadSpec {
    WorkloadSpec::preset(PresetSpec::named("producer-consumer"))
}

/// Figure 2(a): total budget versus buffer capacity on the
/// producer/consumer graph.
pub fn fig2a_scenario() -> Scenario {
    Scenario::new("fig2a", producer_consumer_workload()).with_sweep(SweepSpec::range(1, 10))
}

/// Figure 2(b): the same sweep, reported as the per-container budget
/// reduction. Every solve is a cache hit after `fig2a`.
pub fn fig2b_scenario() -> Scenario {
    Scenario::new("fig2b", producer_consumer_workload())
        .with_sweep(SweepSpec::range(1, 10))
        .with_derivative()
}

/// Figure 3: per-task budgets versus the common capacity cap on the
/// three-task chain.
pub fn fig3_scenario() -> Scenario {
    Scenario::new("fig3", WorkloadSpec::preset(PresetSpec::named("chain3")))
        .with_sweep(SweepSpec::range(1, 10))
}

/// Run-time scaling (E4): one scenario per random-DAG size, solved once
/// each, no sweep.
pub fn runtime_scenarios() -> Vec<Scenario> {
    RUNTIME_SIZES
        .iter()
        .map(|&n| {
            let random = RandomWorkload {
                num_tasks: n,
                num_processors: (n / 2).max(2),
                extra_edge_probability: 0.2,
                seed: 7 + n as u64,
                ..RandomWorkload::default()
            };
            Scenario::new(
                &format!("runtime-{n:02}"),
                WorkloadSpec::preset(PresetSpec::named("random-dag").with_random(random)),
            )
        })
        .collect()
}

/// Ablation (E5): joint SOCP (both back-ends) versus the two-phase
/// baselines, unconstrained and with buffers capped at 3 containers — where
/// the minimum-budget two-phase flow reports its false negative.
pub fn ablation_scenarios() -> Vec<Scenario> {
    let capped =
        || WorkloadSpec::preset(PresetSpec::named("producer-consumer").with_max_buffer_capacity(3));
    vec![
        Scenario::new("ablation-joint-ipm", producer_consumer_workload()),
        Scenario::new("ablation-joint-cp", producer_consumer_workload()).with_options(
            SolveOptions::default()
                .prefer_budget_minimisation()
                .with_cutting_plane(),
        ),
        Scenario::new("ablation-two-phase-min", producer_consumer_workload())
            .with_flow(Flow::TwoPhaseMin),
        Scenario::new("ablation-two-phase-fair", producer_consumer_workload())
            .with_flow(Flow::TwoPhaseFair),
        Scenario::new("ablation-joint-cap3", capped()),
        Scenario::new("ablation-two-phase-min-cap3", capped())
            .with_flow(Flow::TwoPhaseMin)
            .expecting_infeasible(),
    ]
}

/// Validation (E6): solve a capacity selection and execute every mapping on
/// the TDM scheduler simulator.
pub fn validate_scenario() -> Scenario {
    Scenario::new("validate", producer_consumer_workload())
        .with_sweep(SweepSpec::list([1u64, 2, 4, 6, 8, 10]))
        .with_validation(ValidationMode::Sim)
}

/// The `ring` experiment: sweep the cyclic preset. The feedback buffer
/// carries 2 initial tokens, so caps below 2 are structurally infeasible and
/// the sweep starts at 2; the flat budget curve shows that in a ring the
/// token count of the cycle — not the buffer capacity — bounds throughput.
pub fn ring_scenario() -> Scenario {
    Scenario::new(
        "ring",
        WorkloadSpec::preset(
            PresetSpec::named("ring")
                .with_tasks(3)
                .with_initial_tokens(2),
        ),
    )
    .with_sweep(SweepSpec::range(2, 10))
}

/// The six experiments of the paper.
pub fn paper_suite() -> Suite {
    let mut scenarios = vec![fig2a_scenario(), fig2b_scenario(), fig3_scenario()];
    scenarios.extend(runtime_scenarios());
    scenarios.extend(ablation_scenarios());
    scenarios.push(validate_scenario());
    Suite::new("paper", scenarios)
}

/// The paper suite plus the `ring` experiment.
pub fn paper_plus_suite() -> Suite {
    let mut suite = paper_suite();
    suite.name = "paper-plus".to_string();
    suite.scenarios.push(ring_scenario());
    suite
}

/// A cheap suite for CI gates and tests: short sweeps, small graphs.
pub fn smoke_suite() -> Suite {
    Suite::new(
        "smoke",
        vec![
            Scenario::new("smoke-pc", producer_consumer_workload())
                .with_sweep(SweepSpec::range(1, 4))
                .with_derivative(),
            Scenario::new(
                "smoke-chain",
                WorkloadSpec::preset(PresetSpec::named("chain3")),
            )
            .with_sweep(SweepSpec::list([2u64, 6])),
            Scenario::new(
                "smoke-ring",
                WorkloadSpec::preset(
                    PresetSpec::named("ring")
                        .with_tasks(3)
                        .with_initial_tokens(2),
                ),
            )
            .with_sweep(SweepSpec::list([2u64, 4])),
        ],
    )
}

/// Points of [`sweep_10k_suite`]'s single scenario.
pub const SWEEP_10K_POINTS: usize = 10_000;

/// The expansion/scheduling stress suite: one producer/consumer scenario
/// whose explicit cap list cycles 1..=10 for [`SWEEP_10K_POINTS`] points.
/// Only ten distinct cache keys exist, so the suite is cheap to *solve* —
/// 9 990 of its points are in-memory hits — and exists to exercise
/// expansion, sharding and slot-ordered assembly at three orders of
/// magnitude more points than the paper suites (determinism CI gates, the
/// `suite_expansion` bench).
pub fn sweep_10k_suite() -> Suite {
    let caps: Vec<u64> = (0..SWEEP_10K_POINTS).map(|i| (i % 10) as u64 + 1).collect();
    Suite::new(
        "sweep-10k",
        vec![Scenario::new("pc-cycle", producer_consumer_workload())
            .with_sweep(SweepSpec::list(caps))],
    )
}

/// A pinned sample of the scenario generator (`bbs gen --seed 7`): every
/// scenario carries `validate: "sim"`, so the suite doubles as a cheap
/// fuzz-shaped validation gate for CI and tests.
pub fn gen_smoke_suite() -> Suite {
    let mut suite = generate_suite(&GenParams::default());
    suite.name = "gen-smoke".to_string();
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_suites_validate() {
        for name in builtin_suite_names() {
            let suite = builtin_suite(name).unwrap();
            suite.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&suite.name, name);
        }
        assert!(builtin_suite("no-such-suite").is_none());
    }

    #[test]
    fn paper_suite_covers_the_six_experiments() {
        let suite = paper_suite();
        let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
        for expected in ["fig2a", "fig2b", "fig3", "validate"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(
            names.iter().filter(|n| n.starts_with("runtime-")).count(),
            5
        );
        assert_eq!(
            names.iter().filter(|n| n.starts_with("ablation-")).count(),
            6
        );
        assert!(!names.contains(&"ring"));
    }

    #[test]
    fn paper_plus_adds_the_ring() {
        let suite = paper_plus_suite();
        assert!(suite.scenarios.iter().any(|s| s.name == "ring"));
        assert_eq!(suite.scenarios.len(), paper_suite().scenarios.len() + 1);
    }

    #[test]
    fn sweep_10k_cycles_ten_distinct_caps() {
        let suite = sweep_10k_suite();
        assert_eq!(suite.scenarios.len(), 1);
        let caps = suite.scenarios[0].sweep.as_ref().unwrap().caps().unwrap();
        assert_eq!(caps.len(), SWEEP_10K_POINTS);
        let mut distinct: Vec<u64> = caps.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct, (1..=10).collect::<Vec<u64>>());
        // The cycle starts at 1 and repeats verbatim.
        assert_eq!(&caps[..12], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2]);
        suite.validate().unwrap();
    }

    #[test]
    fn suites_serialise_to_json_and_back() {
        let suite = paper_plus_suite();
        let json = serde_json::to_string_pretty(&suite).unwrap();
        let back: Suite = serde_json::from_str(&json).unwrap();
        assert_eq!(back, suite);
    }
}
