//! `bbs` — run budget/buffer scenario suites from the command line.
//!
//! ```text
//! bbs run [--suite NAME | --file PATH] [--jobs N] [--no-cache] [--no-steal]
//!         [--fresh-executor] [--cache-dir DIR] [--cache-max-entries N]
//!         [--cache-max-bytes N] [--remote-store HOST:PORT]
//!         [--json PATH] [--csv PATH] [--markdown PATH] [--quiet]
//! bbs validate [--suite NAME | --file PATH] [--jobs N] [--fresh-executor]
//!         [--no-steal] [--json PATH] [--quiet]
//! bbs gen [--seed N] [--points M] [--out PATH]
//! bbs expand [--suite NAME | --file PATH] [--jobs N] [--fresh-executor]
//! bbs list
//! bbs check [REPORT.json | SUITE.json | -]
//! bbs cache (stats [--json] | clear
//!           | gc [--max-entries N] [--max-age SECONDS] [--max-bytes N]
//!                [--recompress])
//!           [--cache-dir DIR]
//! bbs serve [--addr HOST:PORT] [--jobs N] [--queue-capacity N]
//!           [--retry-after-ms MS] [--max-sessions N] [--idle-timeout-ms MS]
//!           [--cache-dir DIR] [--cache-max-entries N] [--cache-max-bytes N]
//!           [--remote-store HOST:PORT]
//! bbs client (run | stats | shutdown | bench) --addr HOST:PORT [...]
//! ```
//!
//! `run` executes a built-in suite (default: `paper`) or a suite file,
//! prints the result tables plus a timing summary, and optionally writes the
//! machine-readable report as JSON/CSV/markdown (`-` writes to stdout).
//! Suites run on the reusable [`Engine`] worker pool by default;
//! `--fresh-executor` uses the per-run scoped executor instead (reports are
//! byte-identical either way — CI compares them).
//! With `--cache-dir` (or the `BBS_CACHE_DIR` environment variable) solves
//! are also persisted to a content-addressed on-disk store, so later
//! invocations skip them entirely; `--cache-max-entries` (or
//! `BBS_CACHE_MAX_ENTRIES`) and `--cache-max-bytes` (or
//! `BBS_CACHE_MAX_BYTES`) bound that store's size on the write path.
//! `--remote-store` (or `BBS_REMOTE_STORE`) layers a peer `bbs serve`
//! daemon's store under the local directory as a read-through/write-behind
//! tier — misses consult the peer, fresh solves are offered back to it.
//! `bbs cache` inspects and manages the store. `expand` runs only the
//! resolve-and-expand pipeline stage and reports the work-item counts — a
//! dry run for suite files. `check` parses and
//! schema-validates a report produced by `run`. The exit code is non-zero
//! when anything failed, including scenarios with unexpectedly infeasible
//! points.
//!
//! `validate` solves a suite with post-solve replay validation forced on
//! every scenario and prints the deterministic validation summary (replayed
//! points, violations) on stdout — timings go to stderr, so the summary is
//! byte-identical across `--jobs` counts, schedulers and executors, and a
//! nonzero exit means a measured violation. `gen` emits a schema-valid
//! random suite from a seed (`bbs gen --seed 7 | bbs check` round-trips),
//! for fuzz-scale validation campaigns.
//!
//! `serve` hosts the engine as a long-lived daemon: many concurrent
//! clients share one worker pool and one cache/store through a bounded,
//! fairness-scheduled submission queue (see `bbs_engine::serve`).
//! `--idle-timeout-ms` reaps sessions whose client goes silent between
//! requests; `--remote-store` (with `--cache-dir`) layers a peer daemon's
//! store under the daemon's own, guarded by a self-healing circuit
//! breaker.
//! `client` is its counterpart: `run` submits a suite and receives a
//! report byte-identical to a local `bbs run` (`--retries` bounds
//! automatic resubmission after structured rejections, `--deadline-ms`
//! asks the server to cancel the submission if it has not finished in
//! time), `stats` fetches the machine-readable counters (the same object
//! `bbs cache stats --json` prints), `shutdown` asks the daemon to drain
//! and exit, and `bench` is a load generator driving many concurrent
//! submissions.

use bbs_engine::report::render_timing_summary;
use bbs_engine::serve::{read_reply, send_request, FaultPlan, Reply, Request, StoreReport};
use bbs_engine::suites::{builtin_suite, builtin_suite_names};
use bbs_engine::{
    expand_suite, generate_suite, run_suite_with_cache, Engine, GcPolicy, GenParams,
    PanicInjection, RemoteBackend, RunSettings, ServeConfig, Server, SolveCache, SolveStore,
    StatsSnapshot, Suite, SuiteReport, ValidationReport,
};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage:
  bbs run [--suite NAME | --file PATH] [--jobs N] [--no-cache] [--no-steal]
          [--fresh-executor] [--cache-dir DIR] [--cache-max-entries N]
          [--cache-max-bytes N] [--remote-store HOST:PORT]
          [--json PATH] [--csv PATH] [--markdown PATH] [--quiet]
  bbs validate [--suite NAME | --file PATH] [--jobs N] [--fresh-executor]
          [--no-steal] [--json PATH] [--quiet]
  bbs gen [--seed N] [--points M] [--out PATH]
  bbs expand [--suite NAME | --file PATH] [--jobs N] [--fresh-executor]
  bbs list
  bbs check [REPORT.json | SUITE.json | -]
  bbs cache (stats [--json] | clear
            | gc [--max-entries N] [--max-age SECONDS] [--max-bytes N]
                 [--recompress])
            [--cache-dir DIR]
  bbs serve [--addr HOST:PORT] [--jobs N] [--queue-capacity N]
            [--retry-after-ms MS] [--max-sessions N] [--idle-timeout-ms MS]
            [--cache-dir DIR] [--cache-max-entries N] [--cache-max-bytes N]
            [--remote-store HOST:PORT]
  bbs client run --addr HOST:PORT [--suite NAME | --file PATH] [--jobs N]
            [--retries N] [--deadline-ms MS] [--json PATH] [--quiet]
  bbs client (stats | shutdown) --addr HOST:PORT
  bbs client bench --addr HOST:PORT [--clients N] [--requests N]
            [--suite NAME] [--jobs N]

`--json`/`--csv`/`--markdown` accept `-` for stdout. `--cache-dir` (or the
BBS_CACHE_DIR environment variable) persists solve results across runs;
`--cache-max-entries` (or BBS_CACHE_MAX_ENTRIES) and `--cache-max-bytes`
(or BBS_CACHE_MAX_BYTES) bound that store on the write path with the same
eviction `cache gc` applies. `--remote-store HOST:PORT` (or
BBS_REMOTE_STORE) layers a peer `bbs serve` daemon's store under the local
directory: misses are fetched from the peer, fresh solves offered back.
`cache gc --recompress` migrates v1 (plain JSON) entries to the compressed
v2 container in place.
`--no-steal` schedules work over the single shared queue instead of the
work-stealing per-worker deques; `--fresh-executor` spawns per-run worker
threads instead of the reusable pool (reports are identical either way).
`serve` hosts the engine for many concurrent clients; `client run` fetches
a report byte-identical to a local `bbs run` of the same suite, retrying
up to `--retries` times (default 3) after structured rejections and
optionally carrying a server-enforced `--deadline-ms`. `serve
--idle-timeout-ms` reaps sessions whose client goes silent between
requests.
`validate` replays every solved mapping on the scheduler simulator and
exits nonzero on measured throughput or capacity violations; its stdout
summary is byte-identical across --jobs counts and executors. `gen` emits
a seed-deterministic random suite (`-` or --out for the destination);
`check` accepts suite files and validation reports too, and `-` reads
stdin, so `bbs gen --seed 7 | bbs check` verifies a generated suite.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("expand") => expand(&args[1..]),
        Some("list") => list(),
        Some("check") => check(&args[1..]),
        Some("cache") => cache(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bbs: {message}");
            ExitCode::FAILURE
        }
    }
}

struct RunArgs {
    suite: Option<String>,
    file: Option<String>,
    jobs: usize,
    use_cache: bool,
    steal: bool,
    pooled: bool,
    cache_dir: Option<String>,
    cache_max_entries: Option<u64>,
    cache_max_bytes: Option<u64>,
    remote_store: Option<String>,
    json: Option<String>,
    csv: Option<String>,
    markdown: Option<String>,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        suite: None,
        file: None,
        jobs: 1,
        use_cache: true,
        steal: true,
        pooled: true,
        cache_dir: None,
        cache_max_entries: None,
        cache_max_bytes: None,
        remote_store: None,
        json: None,
        csv: None,
        markdown: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--suite" => parsed.suite = Some(value("--suite")?),
            "--file" => parsed.file = Some(value("--file")?),
            "--jobs" => {
                let raw = value("--jobs")?;
                parsed.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| format!("--jobs must be 1..=64, got `{raw}`"))?;
            }
            "--no-cache" => parsed.use_cache = false,
            "--no-steal" => parsed.steal = false,
            "--fresh-executor" => parsed.pooled = false,
            "--cache-dir" => parsed.cache_dir = Some(non_empty_dir(value("--cache-dir")?)?),
            "--cache-max-entries" => {
                let raw = value("--cache-max-entries")?;
                parsed.cache_max_entries =
                    Some(raw.parse::<u64>().map_err(|_| {
                        format!("--cache-max-entries must be a count, got `{raw}`")
                    })?);
            }
            "--cache-max-bytes" => {
                let raw = value("--cache-max-bytes")?;
                parsed.cache_max_bytes =
                    Some(raw.parse::<u64>().map_err(|_| {
                        format!("--cache-max-bytes must be a byte count, got `{raw}`")
                    })?);
            }
            "--remote-store" => parsed.remote_store = Some(value("--remote-store")?),
            "--json" => parsed.json = Some(value("--json")?),
            "--csv" => parsed.csv = Some(value("--csv")?),
            "--markdown" => parsed.markdown = Some(value("--markdown")?),
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if parsed.suite.is_some() && parsed.file.is_some() {
        return Err("use either --suite or --file, not both".to_string());
    }
    Ok(parsed)
}

fn load_suite(args: &RunArgs) -> Result<Suite, String> {
    if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let suite: Suite =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not a suite file: {e}"))?;
        return Ok(suite);
    }
    let name = args.suite.as_deref().unwrap_or("paper");
    builtin_suite(name).ok_or_else(|| {
        format!(
            "no built-in suite `{name}`; known: {}",
            builtin_suite_names().join(", ")
        )
    })
}

/// Distinguishes concurrent writers' temp files (two `bbs client` threads,
/// or a future multi-report run) the same way the store does.
static WRITE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes a report atomically: temp file in the target directory, then
/// rename (the store's pattern). An interrupted or failed write — torn
/// down process, full disk — can never leave a truncated file at `path`;
/// readers see the old content or the new, nothing in between.
fn write_output(path: &str, contents: &str, label: &str) -> Result<(), String> {
    if path == "-" {
        print!("{contents}");
        return Ok(());
    }
    let tmp = format!(
        "{path}.tmp-{}-{}",
        std::process::id(),
        WRITE_COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let finish = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    finish.map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot write {label} {path}: {e}")
    })
}

/// Rejects an empty or all-whitespace `--cache-dir` (e.g. an unset or
/// mistyped shell variable), which would otherwise be taken as a real path
/// and root the store in the current working directory.
fn non_empty_dir(dir: String) -> Result<String, String> {
    if dir.trim().is_empty() {
        Err("--cache-dir needs a non-empty path".to_string())
    } else {
        Ok(dir)
    }
}

/// The cache directory in effect: the flag wins over `BBS_CACHE_DIR`. An
/// empty or all-whitespace environment value behaves exactly like an unset
/// one — `BBS_CACHE_DIR="" bbs run` must not conjure a store out of `""`.
fn effective_cache_dir(flag: Option<&str>) -> Option<String> {
    flag.map(str::to_string)
        .or_else(|| std::env::var("BBS_CACHE_DIR").ok())
        .filter(|dir| !dir.trim().is_empty())
}

/// Fault injection from `BBS_TEST_INJECT_PANIC` (`<scenario>:<cap>`, with
/// `-` as the cap of an unswept solve) — the hook behind the panic-safety
/// integration tests and CI chaos checks. Unset or empty means none.
///
/// # Errors
///
/// A malformed spec is an error, not a silent no-op: a chaos check that
/// believes it injected a fault but did not would pass vacuously.
fn injected_panic_from_env() -> Result<Option<PanicInjection>, String> {
    let Some(raw) = std::env::var_os("BBS_TEST_INJECT_PANIC") else {
        return Ok(None);
    };
    // A non-Unicode value is malformed, not unset.
    let spec = raw
        .to_str()
        .ok_or_else(|| format!("BBS_TEST_INJECT_PANIC must be valid Unicode, got {raw:?}"))?;
    if spec.trim().is_empty() {
        return Ok(None);
    }
    parse_panic_spec(spec).map(Some)
}

fn parse_panic_spec(spec: &str) -> Result<PanicInjection, String> {
    let malformed = || format!("BBS_TEST_INJECT_PANIC must be `<scenario>:<cap|->`, got `{spec}`");
    let (scenario, cap) = spec.rsplit_once(':').ok_or_else(malformed)?;
    if scenario.is_empty() {
        return Err(malformed());
    }
    let capacity_cap = match cap {
        "-" => None,
        cap => Some(cap.parse::<u64>().map_err(|_| malformed())?),
    };
    Ok(PanicInjection {
        scenario: scenario.to_string(),
        capacity_cap,
    })
}

fn open_store(dir: &str) -> Result<SolveStore, String> {
    SolveStore::open(dir).map_err(|e| format!("cannot open cache directory {dir}: {e}"))
}

/// The automatic store size cap in effect: the flag wins over
/// `BBS_CACHE_MAX_ENTRIES`. A malformed environment value is an error, not
/// a silently unbounded store; an empty or all-whitespace one behaves like
/// an unset one.
fn effective_cache_max_entries(flag: Option<u64>) -> Result<Option<u64>, String> {
    if flag.is_some() {
        return Ok(flag);
    }
    match std::env::var("BBS_CACHE_MAX_ENTRIES") {
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("BBS_CACHE_MAX_ENTRIES must be a count, got `{raw}`")),
        Err(_) => Ok(None),
    }
}

/// The automatic store byte budget in effect: the flag wins over
/// `BBS_CACHE_MAX_BYTES`, with the same malformed-is-an-error discipline
/// as [`effective_cache_max_entries`].
fn effective_cache_max_bytes(flag: Option<u64>) -> Result<Option<u64>, String> {
    if flag.is_some() {
        return Ok(flag);
    }
    match std::env::var("BBS_CACHE_MAX_BYTES") {
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("BBS_CACHE_MAX_BYTES must be a byte count, got `{raw}`")),
        Err(_) => Ok(None),
    }
}

/// The remote store peer in effect: the flag wins over `BBS_REMOTE_STORE`;
/// an empty or all-whitespace value behaves like an unset one.
fn effective_remote_store(flag: Option<&str>) -> Option<String> {
    flag.map(str::to_string)
        .or_else(|| std::env::var("BBS_REMOTE_STORE").ok())
        .filter(|addr| !addr.trim().is_empty())
}

/// Builds the persistent store `run`/`validate` hang off the cache:
/// directory tier, write-path caps, then the optional remote tier.
fn configured_store(dir: &str, args: &RunArgs) -> Result<SolveStore, String> {
    let mut store = open_store(dir)?;
    if let Some(cap) = effective_cache_max_entries(args.cache_max_entries)? {
        store = store.with_max_entries(cap);
    }
    if let Some(budget) = effective_cache_max_bytes(args.cache_max_bytes)? {
        store = store.with_max_bytes(budget);
    }
    if let Some(addr) = effective_remote_store(args.remote_store.as_deref()) {
        let remote = RemoteBackend::connect(&addr)
            .map_err(|e| format!("cannot connect to remote store {addr}: {e}"))?;
        store = store.with_remote(Box::new(remote));
    }
    Ok(store)
}

fn run(args: &[String]) -> Result<(), String> {
    let args = parse_run_args(args)?;
    let suite = load_suite(&args)?;
    let settings = RunSettings {
        jobs: args.jobs,
        use_cache: args.use_cache,
        steal: args.steal,
        inject_panic: injected_panic_from_env()?,
        ..RunSettings::default()
    };
    // `--no-cache` bypasses both tiers: without the in-memory tier there is
    // no deterministic once-per-key funnel to hang the disk tier off.
    let cache = match effective_cache_dir(args.cache_dir.as_deref()) {
        Some(dir) if args.use_cache => SolveCache::with_store(configured_store(&dir, &args)?),
        _ if effective_remote_store(args.remote_store.as_deref()).is_some() => {
            return Err(
                "--remote-store needs a local cache directory (--cache-dir) and caching enabled"
                    .to_string(),
            );
        }
        _ => SolveCache::new(),
    };
    // Default: the reusable worker pool (one suite here, but identical to
    // what long-running callers use — CI compares it against
    // `--fresh-executor` to hold the byte-identity invariant).
    let outcome = if args.pooled {
        let cache = Arc::new(cache);
        Engine::new(settings.jobs)
            .run_suite_with_cache(&suite, &settings, &cache)
            .map_err(|e| e.to_string())?
    } else {
        run_suite_with_cache(&suite, &settings, &cache).map_err(|e| e.to_string())?
    };
    let report = SuiteReport::from_outcome(&outcome);
    report.validate().map_err(|e| e.to_string())?;

    if let Some(path) = &args.json {
        write_output(path, &report.to_json(), "JSON report")?;
    }
    if let Some(path) = &args.csv {
        write_output(path, &report.to_csv(), "CSV report")?;
    }
    if let Some(path) = &args.markdown {
        write_output(path, &report.to_markdown(), "markdown report")?;
    }
    if !args.quiet {
        print!("{}", report.to_tables());
        print!("{}", render_timing_summary(&outcome));
    }

    let failures = outcome.unexpected_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        // Not just infeasibility: solver breakdowns and model errors land
        // here too (see SuiteOutcome::unexpected_failures).
        let mut message = String::from("unexpected failures:");
        for (scenario, cap, error) in failures {
            let cap = cap.map(|c| format!(" cap {c}")).unwrap_or_default();
            message.push_str(&format!("\n  {scenario}{cap}: {error}"));
        }
        Err(message)
    }
}

/// `bbs validate`: solve a suite with replay validation forced on every
/// scenario and print the deterministic summary. Replays run on the same
/// pooled (or `--fresh-executor` scoped) workers as the solves; the stdout
/// summary carries no wall-clock data, so CI can `cmp` it across `--jobs`
/// counts, schedulers and executors. Exit is nonzero on any measured
/// violation or unexpected solve failure.
fn validate(args: &[String]) -> Result<(), String> {
    let args = parse_run_args(args)?;
    let suite = load_suite(&args)?;
    let settings = RunSettings {
        jobs: args.jobs,
        use_cache: args.use_cache,
        steal: args.steal,
        validate_all: true,
        inject_panic: injected_panic_from_env()?,
        ..RunSettings::default()
    };
    let cache = match effective_cache_dir(args.cache_dir.as_deref()) {
        Some(dir) if args.use_cache => SolveCache::with_store(configured_store(&dir, &args)?),
        _ if effective_remote_store(args.remote_store.as_deref()).is_some() => {
            return Err(
                "--remote-store needs a local cache directory (--cache-dir) and caching enabled"
                    .to_string(),
            );
        }
        _ => SolveCache::new(),
    };
    let outcome = if args.pooled {
        let cache = Arc::new(cache);
        Engine::new(settings.jobs)
            .run_suite_with_cache(&suite, &settings, &cache)
            .map_err(|e| e.to_string())?
    } else {
        run_suite_with_cache(&suite, &settings, &cache).map_err(|e| e.to_string())?
    };
    let report = ValidationReport::from_outcome(&outcome);
    if let Some(path) = &args.json {
        write_output(path, &report.to_json(), "JSON validation report")?;
    }
    // Summary on stdout (deterministic), timings on stderr (not): piping
    // stdout through `cmp` is the CI determinism gate.
    print!("{}", report.render_summary());
    if !args.quiet {
        eprint!("{}", render_timing_summary(&outcome));
    }
    let failures = outcome.unexpected_failures();
    if !failures.is_empty() {
        let mut message = String::from("unexpected failures:");
        for (scenario, cap, error) in failures {
            let cap = cap.map(|c| format!(" cap {c}")).unwrap_or_default();
            message.push_str(&format!("\n  {scenario}{cap}: {error}"));
        }
        return Err(message);
    }
    match report.violations() {
        0 => Ok(()),
        n => Err(format!("{n} validation violation(s)")),
    }
}

/// `bbs gen`: emit a schema-valid random suite from a seed. Byte-identical
/// for equal seeds, so generated campaigns are reproducible; `--out -`
/// (the default) writes to stdout for piping into `bbs check` or a file.
fn gen(args: &[String]) -> Result<(), String> {
    let mut params = GenParams::default();
    let mut out = "-".to_string();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                let raw = value("--seed")?;
                params.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed must be an unsigned integer, got `{raw}`"))?;
            }
            "--points" => {
                let raw = value("--points")?;
                params.points = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=100_000).contains(&n))
                    .ok_or_else(|| format!("--points must be 1..=100000, got `{raw}`"))?;
            }
            "--out" => out = value("--out")?,
            other => return Err(format!("unknown flag `{other}` for `gen`\n{USAGE}")),
        }
    }
    let suite = generate_suite(&params);
    let mut json =
        serde_json::to_string_pretty(&suite).map_err(|e| format!("cannot serialise suite: {e}"))?;
    json.push('\n');
    write_output(&out, &json, "suite file")
}

/// `bbs expand`: run only the resolve-and-expand pipeline stage — on the
/// pooled workers by default, exactly as `run` would — and report the
/// counts without solving anything. A dry run for suite files and a smoke
/// test for the parallel expansion path.
fn expand(args: &[String]) -> Result<(), String> {
    let args = parse_run_args(args)?;
    let suite = load_suite(&args)?;
    let settings = RunSettings {
        jobs: args.jobs,
        ..RunSettings::default()
    };
    let summary = if args.pooled {
        Engine::new(settings.jobs)
            .expand_suite(&suite, &settings)
            .map_err(|e| e.to_string())?
    } else {
        expand_suite(&suite, &settings).map_err(|e| e.to_string())?
    };
    println!(
        "suite `{}`: expanded {} work items across {} scenarios ({} jobs, {})",
        suite.name,
        summary.points,
        summary.scenarios,
        settings.jobs.max(1),
        if args.pooled {
            "pooled"
        } else {
            "fresh executor"
        }
    );
    Ok(())
}

fn list() -> Result<(), String> {
    for name in builtin_suite_names() {
        let suite = builtin_suite(name).expect("listed suites exist");
        let points: usize = suite
            .scenarios
            .iter()
            .map(|s| {
                s.sweep
                    .as_ref()
                    .and_then(|sweep| sweep.caps().ok())
                    .map_or(1, |caps| caps.len())
            })
            .sum();
        println!(
            "{name:<12} {:>2} scenarios, {points:>3} solve points",
            suite.scenarios.len()
        );
    }
    Ok(())
}

/// `bbs check`: parse and schema-validate a suite-report, validation-report
/// or suite file. `-` (or no argument) reads stdin, so generated suites
/// round-trip: `bbs gen --seed 7 | bbs check`.
fn check(args: &[String]) -> Result<(), String> {
    let path = match args {
        [] => "-",
        [path] => path.as_str(),
        _ => return Err(format!("`check` needs at most one path\n{USAGE}")),
    };
    let text = if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let shown = if path == "-" { "stdin" } else { path };

    let report_error = match SuiteReport::from_json(&text) {
        Ok(report) => {
            let points: usize = report.scenarios.iter().map(|s| s.points.len()).sum();
            println!(
                "{shown}: valid schema v{} report of suite `{}` ({} scenarios, {points} points)",
                report.schema_version,
                report.suite,
                report.scenarios.len()
            );
            return Ok(());
        }
        Err(e) => e,
    };
    if let Ok(report) = ValidationReport::from_json(&text) {
        let points: usize = report.scenarios.iter().map(|s| s.points.len()).sum();
        println!(
            "{shown}: valid schema v{} validation report of suite `{}` ({} scenarios, \
             {points} points, {} violation(s))",
            report.schema_version,
            report.suite,
            report.scenarios.len(),
            report.violations()
        );
        return Ok(());
    }
    match serde_json::from_str::<Suite>(&text) {
        Ok(suite) => {
            suite.validate().map_err(|e| e.to_string())?;
            let points: usize = suite
                .scenarios
                .iter()
                .map(|s| {
                    s.sweep
                        .as_ref()
                        .and_then(|sweep| sweep.caps().ok())
                        .map_or(1, |caps| caps.len())
                })
                .sum();
            println!(
                "{shown}: valid suite `{}` ({} scenarios, {points} solve points)",
                suite.name,
                suite.scenarios.len()
            );
            Ok(())
        }
        Err(_) => Err(format!(
            "{shown} is neither a report, a validation report nor a suite: {report_error}"
        )),
    }
}

struct CacheArgs {
    action: String,
    cache_dir: Option<String>,
    max_entries: Option<u64>,
    max_age: Option<Duration>,
    max_bytes: Option<u64>,
    recompress: bool,
    json: bool,
}

fn parse_cache_args(args: &[String]) -> Result<CacheArgs, String> {
    let [action, flags @ ..] = args else {
        return Err(format!("`cache` needs an action\n{USAGE}"));
    };
    if !matches!(action.as_str(), "stats" | "clear" | "gc") {
        return Err(format!(
            "unknown cache action `{action}`; known: stats, clear, gc\n{USAGE}"
        ));
    }
    let mut parsed = CacheArgs {
        action: action.clone(),
        cache_dir: None,
        max_entries: None,
        max_age: None,
        max_bytes: None,
        recompress: false,
        json: false,
    };
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cache-dir" => parsed.cache_dir = Some(non_empty_dir(value("--cache-dir")?)?),
            "--max-entries" if action == "gc" => {
                let raw = value("--max-entries")?;
                parsed.max_entries = Some(
                    raw.parse::<u64>()
                        .map_err(|_| format!("--max-entries must be a count, got `{raw}`"))?,
                );
            }
            "--json" if action == "stats" => parsed.json = true,
            "--max-age" if action == "gc" => {
                let raw = value("--max-age")?;
                let seconds = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--max-age must be a number of seconds, got `{raw}`"))?;
                parsed.max_age = Some(Duration::from_secs(seconds));
            }
            "--max-bytes" if action == "gc" => {
                let raw = value("--max-bytes")?;
                parsed.max_bytes = Some(
                    raw.parse::<u64>()
                        .map_err(|_| format!("--max-bytes must be a byte count, got `{raw}`"))?,
                );
            }
            "--recompress" if action == "gc" => parsed.recompress = true,
            other => {
                return Err(format!(
                    "unknown flag `{other}` for `cache {action}`\n{USAGE}"
                ))
            }
        }
    }
    if action == "gc"
        && parsed.max_entries.is_none()
        && parsed.max_age.is_none()
        && parsed.max_bytes.is_none()
        && !parsed.recompress
    {
        return Err(
            "`cache gc` needs --max-entries, --max-age, --max-bytes and/or --recompress"
                .to_string(),
        );
    }
    Ok(parsed)
}

fn cache(args: &[String]) -> Result<(), String> {
    let args = parse_cache_args(args)?;
    let dir = effective_cache_dir(args.cache_dir.as_deref())
        .ok_or("no cache directory: pass --cache-dir or set BBS_CACHE_DIR")?;
    // Unlike `run` (which creates the directory to populate it), the
    // management commands refuse to conjure one up — a typo'd path should
    // error, not materialise an empty store tree.
    let store = SolveStore::open_existing(&dir)
        .map_err(|_| format!("cache directory {dir} does not exist"))?;
    match args.action.as_str() {
        "stats" => {
            let summary = store
                .summary()
                .map_err(|e| format!("cannot scan {dir}: {e}"))?;
            if args.json {
                // The same serialized shape the serve protocol's `stats`
                // request returns — one serializer, two transports. The
                // store section is all an offline CLI has; a daemon adds
                // queue/engine/cache sections.
                let snapshot = StatsSnapshot {
                    store: Some(StoreReport::from_parts(
                        store.root(),
                        summary,
                        store.stats(),
                    )),
                    ..StatsSnapshot::new()
                };
                print!("{}", snapshot.to_json());
                return Ok(());
            }
            println!("cache directory {dir}:");
            println!(
                "  {} entries ({} feasible, {} infeasible), {} bytes",
                summary.entries, summary.feasible, summary.infeasible, summary.total_bytes
            );
            println!(
                "  {} bytes logical (uncompressed), {} bytes on disk",
                summary.logical_bytes, summary.total_bytes
            );
            println!(
                "  {} v1 (plain JSON) entries, {} v2 (compressed) entries",
                summary.v1_entries, summary.v2_entries
            );
            if summary.corrupt > 0 {
                println!(
                    "  {} corrupt or foreign-version files (ignored by lookups; `bbs cache gc` \
                     or `clear` removes them)",
                    summary.corrupt
                );
            }
        }
        "clear" => {
            let removed = store
                .clear()
                .map_err(|e| format!("cannot clear {dir}: {e}"))?;
            println!("cache directory {dir}: removed {removed} entries");
        }
        "gc" => {
            // Recompress first: migrated entries shrink before any byte
            // budget is enforced, so a combined invocation evicts only what
            // the compacted store still cannot hold.
            if args.recompress {
                let outcome = store
                    .recompress()
                    .map_err(|e| format!("cannot recompress {dir}: {e}"))?;
                println!(
                    "cache directory {dir}: recompressed {} entries ({} already current, \
                     {} corrupt, {} failed)",
                    outcome.migrated, outcome.already_current, outcome.corrupt, outcome.failed
                );
            }
            if args.max_entries.is_some() || args.max_age.is_some() || args.max_bytes.is_some() {
                let outcome = store
                    .gc(GcPolicy {
                        max_entries: args.max_entries,
                        max_age: args.max_age,
                        max_bytes: args.max_bytes,
                    })
                    .map_err(|e| format!("cannot gc {dir}: {e}"))?;
                println!(
                    "cache directory {dir}: removed {} entries, kept {} ({} bytes)",
                    outcome.removed, outcome.kept, outcome.kept_bytes
                );
                if outcome.unreadable_mtimes > 0 {
                    println!(
                        "  {} entries had unreadable mtimes (treated as written now, \
                         never age-evicted)",
                        outcome.unreadable_mtimes
                    );
                }
            }
        }
        _ => unreachable!("validated by parse_cache_args"),
    }
    Ok(())
}

struct ServeArgs {
    addr: String,
    jobs: usize,
    queue_capacity: u64,
    retry_after_ms: u64,
    max_sessions: u64,
    idle_timeout_ms: Option<u64>,
    cache_dir: Option<String>,
    cache_max_entries: Option<u64>,
    cache_max_bytes: Option<u64>,
    remote_store: Option<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut parsed = ServeArgs {
        addr: "127.0.0.1:0".to_string(),
        jobs: 4,
        queue_capacity: 32,
        retry_after_ms: 250,
        max_sessions: ServeConfig::default().max_sessions,
        idle_timeout_ms: None,
        cache_dir: None,
        cache_max_entries: None,
        cache_max_bytes: None,
        remote_store: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr")?,
            "--jobs" => {
                let raw = value("--jobs")?;
                parsed.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| format!("--jobs must be 1..=64, got `{raw}`"))?;
            }
            "--queue-capacity" => {
                let raw = value("--queue-capacity")?;
                parsed.queue_capacity =
                    raw.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--queue-capacity must be at least 1, got `{raw}`")
                    })?;
            }
            "--retry-after-ms" => {
                let raw = value("--retry-after-ms")?;
                parsed.retry_after_ms = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--retry-after-ms must be milliseconds, got `{raw}`"))?;
            }
            "--max-sessions" => {
                let raw = value("--max-sessions")?;
                parsed.max_sessions = raw
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--max-sessions must be at least 1, got `{raw}`"))?;
            }
            "--idle-timeout-ms" => {
                let raw = value("--idle-timeout-ms")?;
                parsed.idle_timeout_ms = Some(
                    raw.parse::<u64>()
                        .ok()
                        .filter(|&ms| ms >= 1)
                        .ok_or_else(|| {
                            format!("--idle-timeout-ms must be at least 1, got `{raw}`")
                        })?,
                );
            }
            "--cache-dir" => parsed.cache_dir = Some(non_empty_dir(value("--cache-dir")?)?),
            "--cache-max-entries" => {
                let raw = value("--cache-max-entries")?;
                parsed.cache_max_entries =
                    Some(raw.parse::<u64>().map_err(|_| {
                        format!("--cache-max-entries must be a count, got `{raw}`")
                    })?);
            }
            "--cache-max-bytes" => {
                let raw = value("--cache-max-bytes")?;
                parsed.cache_max_bytes =
                    Some(raw.parse::<u64>().map_err(|_| {
                        format!("--cache-max-bytes must be a byte count, got `{raw}`")
                    })?);
            }
            "--remote-store" => parsed.remote_store = Some(value("--remote-store")?),
            other => return Err(format!("unknown flag `{other}` for `serve`\n{USAGE}")),
        }
    }
    Ok(parsed)
}

/// `bbs serve`: host the engine as a long-lived daemon (see
/// `bbs_engine::serve`). Blocks until a client sends `shutdown`.
fn serve(args: &[String]) -> Result<(), String> {
    let args = parse_serve_args(args)?;
    let remote_store = effective_remote_store(args.remote_store.as_deref());
    let store = match effective_cache_dir(args.cache_dir.as_deref()) {
        Some(dir) => {
            let mut store = open_store(&dir)?;
            if let Some(cap) = effective_cache_max_entries(args.cache_max_entries)? {
                store = store.with_max_entries(cap);
            }
            if let Some(budget) = effective_cache_max_bytes(args.cache_max_bytes)? {
                store = store.with_max_bytes(budget);
            }
            if let Some(addr) = &remote_store {
                let remote = RemoteBackend::connect(addr)
                    .map_err(|e| format!("cannot connect to remote store {addr}: {e}"))?;
                store = store.with_remote(Box::new(remote));
            }
            Some(store)
        }
        None if remote_store.is_some() => {
            return Err("--remote-store needs a local cache directory (--cache-dir)".to_string());
        }
        None => None,
    };
    let server = Server::start(ServeConfig {
        addr: args.addr,
        workers: args.jobs,
        queue_capacity: args.queue_capacity,
        retry_after_ms: args.retry_after_ms,
        max_sessions: args.max_sessions,
        store,
        idle_timeout: args.idle_timeout_ms.map(Duration::from_millis),
        faults: FaultPlan::from_env()?.unwrap_or_default(),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    println!("bbs serve: listening on {}", server.addr());
    // Stdout is block-buffered when piped; scripts parse this line to learn
    // the ephemeral port, so it must leave the process before we block.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot announce address: {e}"))?;
    server.wait();
    println!("bbs serve: shut down cleanly");
    Ok(())
}

fn client(args: &[String]) -> Result<(), String> {
    let [action, flags @ ..] = args else {
        return Err(format!("`client` needs an action\n{USAGE}"));
    };
    match action.as_str() {
        "run" => client_run(flags),
        "stats" => client_stats(flags),
        "shutdown" => client_shutdown(flags),
        "bench" => client_bench(flags),
        other => Err(format!(
            "unknown client action `{other}`; known: run, stats, shutdown, bench\n{USAGE}"
        )),
    }
}

fn connect(addr: Option<&str>) -> Result<TcpStream, String> {
    let addr = addr.ok_or("`client` needs --addr HOST:PORT")?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn next_reply(stream: &mut TcpStream) -> Result<Reply, String> {
    read_reply(stream)
        .map_err(|e| format!("connection failed: {e}"))?
        .ok_or_else(|| "server closed the connection early".to_string())
}

struct ClientRunArgs {
    addr: Option<String>,
    suite: Option<String>,
    file: Option<String>,
    jobs: u64,
    retries: u64,
    deadline_ms: Option<u64>,
    json: Option<String>,
    quiet: bool,
}

fn parse_client_run_args(args: &[String]) -> Result<ClientRunArgs, String> {
    let mut parsed = ClientRunArgs {
        addr: None,
        suite: None,
        file: None,
        jobs: 1,
        retries: 3,
        deadline_ms: None,
        json: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--suite" => parsed.suite = Some(value("--suite")?),
            "--file" => parsed.file = Some(value("--file")?),
            "--jobs" => {
                let raw = value("--jobs")?;
                parsed.jobs = raw
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| format!("--jobs must be 1..=64, got `{raw}`"))?;
            }
            "--retries" => {
                let raw = value("--retries")?;
                parsed.retries = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--retries must be a count, got `{raw}`"))?;
            }
            "--deadline-ms" => {
                let raw = value("--deadline-ms")?;
                parsed.deadline_ms = Some(
                    raw.parse::<u64>()
                        .ok()
                        .filter(|&ms| ms >= 1)
                        .ok_or_else(|| format!("--deadline-ms must be at least 1, got `{raw}`"))?,
                );
            }
            "--json" => parsed.json = Some(value("--json")?),
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unknown flag `{other}` for `client run`\n{USAGE}")),
        }
    }
    if parsed.suite.is_some() && parsed.file.is_some() {
        return Err("use either --suite or --file, not both".to_string());
    }
    Ok(parsed)
}

/// `bbs client run`: submit one suite, stream the progress, and write the
/// returned report — byte-identical to a local `bbs run --json` of the
/// same suite — with the same atomic write discipline. Structured
/// rejections are retried automatically up to `--retries` times (each
/// sleeping the server's `retry_after_ms` hint), so transient back-
/// pressure does not fail scripts; a `cancelled` reply (deadline, explicit
/// cancel) is a nonzero exit carrying the server's reason.
fn client_run(args: &[String]) -> Result<(), String> {
    let args = parse_client_run_args(args)?;
    let request = if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let suite: Suite =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not a suite file: {e}"))?;
        Request::run_suite(suite, args.jobs)
    } else {
        Request::run_builtin(args.suite.as_deref().unwrap_or("paper"), args.jobs)
    };
    let request = match args.deadline_ms {
        Some(ms) => request.with_deadline_ms(ms),
        None => request,
    };
    let mut stream = connect(args.addr.as_deref())?;
    send_request(&mut stream, &request).map_err(|e| format!("cannot submit: {e}"))?;
    let mut points = 0u64;
    let mut rejections = 0u64;
    loop {
        let reply = next_reply(&mut stream)?;
        match reply.kind.as_str() {
            "accepted" => {
                if !args.quiet {
                    println!(
                        "accepted as ticket {} (queue depth {})",
                        reply.ticket.unwrap_or(0),
                        reply.queue_depth.unwrap_or(0)
                    );
                }
            }
            "rejected" => {
                let reason = reply
                    .message
                    .as_deref()
                    .unwrap_or("no reason given")
                    .to_string();
                let wait = reply.retry_after_ms.unwrap_or(100);
                if rejections >= args.retries {
                    return Err(format!(
                        "submission rejected: {reason} (retry after {wait} ms; gave up after \
                         {rejections} retries)"
                    ));
                }
                rejections += 1;
                if !args.quiet {
                    println!(
                        "rejected ({reason}); retry {rejections}/{} in {wait} ms",
                        args.retries
                    );
                }
                std::thread::sleep(Duration::from_millis(wait));
                send_request(&mut stream, &request).map_err(|e| format!("cannot resubmit: {e}"))?;
            }
            "cancelled" => {
                return Err(format!(
                    "submission cancelled: {}",
                    reply.message.as_deref().unwrap_or("no reason given")
                ));
            }
            "point" => {
                points += 1;
                if !args.quiet {
                    let cap = reply
                        .capacity_cap
                        .map(|c| format!("cap {c}"))
                        .unwrap_or_else(|| "uncapped".to_string());
                    println!(
                        "  {} {}: {}",
                        reply.scenario.as_deref().unwrap_or("?"),
                        cap,
                        if reply.feasible == Some(true) {
                            "feasible"
                        } else {
                            "infeasible"
                        }
                    );
                }
            }
            "report" => {
                let text = reply.report.ok_or("report reply carried no report text")?;
                if let Some(path) = &args.json {
                    write_output(path, &text, "JSON report")?;
                }
                if !args.quiet {
                    println!("report complete: {points} points");
                }
                // A failure summary means the suite ran but some points
                // failed unexpectedly — mirror `bbs run`'s nonzero exit.
                return match reply.message {
                    None => Ok(()),
                    Some(message) => Err(message),
                };
            }
            "error" => {
                return Err(reply
                    .message
                    .unwrap_or_else(|| "server reported an error".to_string()))
            }
            other => return Err(format!("unexpected reply kind `{other}`")),
        }
    }
}

fn parse_addr_only(args: &[String], action: &str) -> Result<Option<String>, String> {
    let mut addr = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => {
                addr = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| "--addr needs a value".to_string())?,
                );
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` for `client {action}`\n{USAGE}"
                ))
            }
        }
    }
    Ok(addr)
}

/// `bbs client stats`: print the daemon's machine-readable counters — the
/// same object `bbs cache stats --json` prints for an offline store.
fn client_stats(args: &[String]) -> Result<(), String> {
    let addr = parse_addr_only(args, "stats")?;
    let mut stream = connect(addr.as_deref())?;
    send_request(&mut stream, &Request::stats()).map_err(|e| format!("cannot query: {e}"))?;
    let reply = next_reply(&mut stream)?;
    match (reply.kind.as_str(), reply.stats) {
        ("stats", Some(snapshot)) => {
            print!("{}", snapshot.to_json());
            Ok(())
        }
        ("error", _) => Err(reply
            .message
            .unwrap_or_else(|| "server reported an error".to_string())),
        (other, _) => Err(format!("unexpected reply kind `{other}`")),
    }
}

/// `bbs client shutdown`: ask the daemon to drain in-flight work and exit.
fn client_shutdown(args: &[String]) -> Result<(), String> {
    let addr = parse_addr_only(args, "shutdown")?;
    let mut stream = connect(addr.as_deref())?;
    send_request(&mut stream, &Request::shutdown()).map_err(|e| format!("cannot request: {e}"))?;
    let reply = next_reply(&mut stream)?;
    match reply.kind.as_str() {
        "bye" => {
            println!("server acknowledged shutdown");
            Ok(())
        }
        "error" => Err(reply
            .message
            .unwrap_or_else(|| "server reported an error".to_string())),
        other => Err(format!("unexpected reply kind `{other}`")),
    }
}

struct ClientBenchArgs {
    addr: Option<String>,
    clients: u64,
    requests: u64,
    suite: String,
    jobs: u64,
}

fn parse_client_bench_args(args: &[String]) -> Result<ClientBenchArgs, String> {
    let mut parsed = ClientBenchArgs {
        addr: None,
        clients: 8,
        requests: 4,
        suite: "smoke".to_string(),
        jobs: 1,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let count = |name: &str, raw: String| {
            raw.parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{name} must be at least 1, got `{raw}`"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--clients" => parsed.clients = count("--clients", value("--clients")?)?,
            "--requests" => parsed.requests = count("--requests", value("--requests")?)?,
            "--suite" => parsed.suite = value("--suite")?,
            "--jobs" => parsed.jobs = count("--jobs", value("--jobs")?)?.min(64),
            other => {
                return Err(format!(
                    "unknown flag `{other}` for `client bench`\n{USAGE}"
                ))
            }
        }
    }
    Ok(parsed)
}

/// `bbs client bench`: the load generator — N concurrent client
/// connections each submitting M suites through real sockets, retrying
/// after structured rejections, reporting aggregate throughput.
fn client_bench(args: &[String]) -> Result<(), String> {
    let args = parse_client_bench_args(args)?;
    let addr = args
        .addr
        .clone()
        .ok_or("`client bench` needs --addr HOST:PORT")?;
    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..args.clients {
        let addr = addr.clone();
        let suite = args.suite.clone();
        let requests = args.requests;
        let jobs = args.jobs;
        handles.push(std::thread::spawn(
            move || -> Result<(u64, u64, u64), String> {
                let mut stream = connect(Some(&addr))?;
                let request = Request::run_builtin(&suite, jobs);
                let (mut completed, mut retries, mut points) = (0u64, 0u64, 0u64);
                for _ in 0..requests {
                    'submit: loop {
                        send_request(&mut stream, &request)
                            .map_err(|e| format!("cannot submit: {e}"))?;
                        loop {
                            let reply = next_reply(&mut stream)?;
                            match reply.kind.as_str() {
                                "accepted" => {}
                                "point" => points += 1,
                                "report" => {
                                    completed += 1;
                                    break 'submit;
                                }
                                "rejected" => {
                                    // Structured back-pressure: honour the
                                    // server's retry hint, then resubmit.
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(
                                        reply.retry_after_ms.unwrap_or(100),
                                    ));
                                    continue 'submit;
                                }
                                "error" => {
                                    return Err(reply
                                        .message
                                        .unwrap_or_else(|| "server reported an error".to_string()))
                                }
                                other => return Err(format!("unexpected reply kind `{other}`")),
                            }
                        }
                    }
                }
                Ok((completed, retries, points))
            },
        ));
    }
    let (mut completed, mut retries, mut points) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (c, r, p) = handle
            .join()
            .map_err(|_| "bench client thread panicked".to_string())??;
        completed += c;
        retries += r;
        points += p;
    }
    let elapsed = start.elapsed();
    println!(
        "bench: {} clients x {} submissions of `{}` against {addr}",
        args.clients, args.requests, args.suite
    );
    println!(
        "  {completed} completed ({points} points), {retries} retries after rejection, {:.2?} total",
        elapsed
    );
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        println!("  {:.1} submissions/s", completed as f64 / secs);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn run_args_parse_the_scheduler_flag() {
        let parsed = parse_run_args(&strings(&["--jobs", "8", "--no-steal"])).unwrap();
        assert_eq!(parsed.jobs, 8);
        assert!(!parsed.steal);
        assert!(parse_run_args(&strings(&["--jobs", "8"])).unwrap().steal);
    }

    #[test]
    fn run_args_parse_the_executor_and_cap_flags() {
        let parsed = parse_run_args(&strings(&[
            "--fresh-executor",
            "--cache-max-entries",
            "128",
        ]))
        .unwrap();
        assert!(!parsed.pooled);
        assert_eq!(parsed.cache_max_entries, Some(128));
        let default = parse_run_args(&[]).unwrap();
        assert!(default.pooled);
        assert_eq!(default.cache_max_entries, None);
        assert!(parse_run_args(&strings(&["--cache-max-entries", "lots"])).is_err());
        // The flag wins over the environment; parsing of the flag itself
        // never consults the environment.
        assert_eq!(
            effective_cache_max_entries(Some(3)).unwrap(),
            Some(3),
            "explicit flag must win"
        );
    }

    #[test]
    fn empty_or_whitespace_cache_dirs_are_rejected() {
        assert!(non_empty_dir(String::new()).is_err());
        assert!(non_empty_dir("   ".to_string()).is_err());
        assert!(non_empty_dir("\t\n".to_string()).is_err());
        assert_eq!(non_empty_dir("dir".to_string()).unwrap(), "dir");
        // A path with inner whitespace is a real path.
        assert!(non_empty_dir("my cache".to_string()).is_ok());
    }

    #[test]
    fn client_run_args_parse_retry_and_deadline_flags() {
        let parsed =
            parse_client_run_args(&strings(&["--retries", "0", "--deadline-ms", "500"])).unwrap();
        assert_eq!(parsed.retries, 0);
        assert_eq!(parsed.deadline_ms, Some(500));
        let default = parse_client_run_args(&[]).unwrap();
        assert_eq!(default.retries, 3);
        assert_eq!(default.deadline_ms, None);
        assert!(parse_client_run_args(&strings(&["--deadline-ms", "0"])).is_err());
        assert!(parse_client_run_args(&strings(&["--retries", "many"])).is_err());
    }

    #[test]
    fn serve_args_parse_the_robustness_flags() {
        let parsed = parse_serve_args(&strings(&[
            "--idle-timeout-ms",
            "250",
            "--remote-store",
            "127.0.0.1:9",
        ]))
        .unwrap();
        assert_eq!(parsed.idle_timeout_ms, Some(250));
        assert_eq!(parsed.remote_store.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(parse_serve_args(&[]).unwrap().idle_timeout_ms, None);
        assert!(parse_serve_args(&strings(&["--idle-timeout-ms", "0"])).is_err());
    }

    #[test]
    fn panic_specs_parse_or_error_loudly() {
        assert_eq!(
            parse_panic_spec("fig2a:3").unwrap(),
            PanicInjection {
                scenario: "fig2a".to_string(),
                capacity_cap: Some(3),
            }
        );
        assert_eq!(
            parse_panic_spec("solo:-").unwrap(),
            PanicInjection {
                scenario: "solo".to_string(),
                capacity_cap: None,
            }
        );
        // Scenario names may contain `:`; the cap is the last segment.
        assert_eq!(
            parse_panic_spec("a:b:1").unwrap().scenario,
            "a:b".to_string()
        );
        assert!(parse_panic_spec("no-cap").is_err());
        assert!(parse_panic_spec(":1").is_err());
        assert!(parse_panic_spec("name:notanumber").is_err());
    }
}
