//! `bbs` — run budget/buffer scenario suites from the command line.
//!
//! ```text
//! bbs run [--suite NAME | --file PATH] [--jobs N] [--no-cache]
//!         [--json PATH] [--csv PATH] [--markdown PATH] [--quiet]
//! bbs list
//! bbs check REPORT.json
//! ```
//!
//! `run` executes a built-in suite (default: `paper`) or a suite file,
//! prints the result tables plus a timing summary, and optionally writes the
//! machine-readable report as JSON/CSV/markdown (`-` writes to stdout).
//! `check` parses and schema-validates a report produced by `run`. The exit
//! code is non-zero when anything failed, including scenarios with
//! unexpectedly infeasible points.

use bbs_engine::report::render_timing_summary;
use bbs_engine::suites::{builtin_suite, builtin_suite_names};
use bbs_engine::{run_suite, RunSettings, Suite, SuiteReport};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  bbs run [--suite NAME | --file PATH] [--jobs N] [--no-cache]
          [--json PATH] [--csv PATH] [--markdown PATH] [--quiet]
  bbs list
  bbs check REPORT.json

`--json`/`--csv`/`--markdown` accept `-` for stdout.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("list") => list(),
        Some("check") => check(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bbs: {message}");
            ExitCode::FAILURE
        }
    }
}

struct RunArgs {
    suite: Option<String>,
    file: Option<String>,
    jobs: usize,
    use_cache: bool,
    json: Option<String>,
    csv: Option<String>,
    markdown: Option<String>,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        suite: None,
        file: None,
        jobs: 1,
        use_cache: true,
        json: None,
        csv: None,
        markdown: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--suite" => parsed.suite = Some(value("--suite")?),
            "--file" => parsed.file = Some(value("--file")?),
            "--jobs" => {
                let raw = value("--jobs")?;
                parsed.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| format!("--jobs must be 1..=64, got `{raw}`"))?;
            }
            "--no-cache" => parsed.use_cache = false,
            "--json" => parsed.json = Some(value("--json")?),
            "--csv" => parsed.csv = Some(value("--csv")?),
            "--markdown" => parsed.markdown = Some(value("--markdown")?),
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if parsed.suite.is_some() && parsed.file.is_some() {
        return Err("use either --suite or --file, not both".to_string());
    }
    Ok(parsed)
}

fn load_suite(args: &RunArgs) -> Result<Suite, String> {
    if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let suite: Suite =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not a suite file: {e}"))?;
        return Ok(suite);
    }
    let name = args.suite.as_deref().unwrap_or("paper");
    builtin_suite(name).ok_or_else(|| {
        format!(
            "no built-in suite `{name}`; known: {}",
            builtin_suite_names().join(", ")
        )
    })
}

fn write_output(path: &str, contents: &str, label: &str) -> Result<(), String> {
    if path == "-" {
        print!("{contents}");
        Ok(())
    } else {
        std::fs::write(path, contents).map_err(|e| format!("cannot write {label} {path}: {e}"))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let args = parse_run_args(args)?;
    let suite = load_suite(&args)?;
    let settings = RunSettings {
        jobs: args.jobs,
        use_cache: args.use_cache,
        ..RunSettings::default()
    };
    let outcome = run_suite(&suite, &settings).map_err(|e| e.to_string())?;
    let report = SuiteReport::from_outcome(&outcome);
    report.validate().map_err(|e| e.to_string())?;

    if let Some(path) = &args.json {
        write_output(path, &report.to_json(), "JSON report")?;
    }
    if let Some(path) = &args.csv {
        write_output(path, &report.to_csv(), "CSV report")?;
    }
    if let Some(path) = &args.markdown {
        write_output(path, &report.to_markdown(), "markdown report")?;
    }
    if !args.quiet {
        print!("{}", report.to_tables());
        print!("{}", render_timing_summary(&outcome));
    }

    let failures = outcome.unexpected_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        // Not just infeasibility: solver breakdowns and model errors land
        // here too (see SuiteOutcome::unexpected_failures).
        let mut message = String::from("unexpected failures:");
        for (scenario, cap, error) in failures {
            let cap = cap.map(|c| format!(" cap {c}")).unwrap_or_default();
            message.push_str(&format!("\n  {scenario}{cap}: {error}"));
        }
        Err(message)
    }
}

fn list() -> Result<(), String> {
    for name in builtin_suite_names() {
        let suite = builtin_suite(name).expect("listed suites exist");
        let points: usize = suite
            .scenarios
            .iter()
            .map(|s| {
                s.sweep
                    .as_ref()
                    .and_then(|sweep| sweep.caps().ok())
                    .map_or(1, |caps| caps.len())
            })
            .sum();
        println!(
            "{name:<12} {:>2} scenarios, {points:>3} solve points",
            suite.scenarios.len()
        );
    }
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("`check` needs exactly one report path\n{USAGE}"));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = SuiteReport::from_json(&text).map_err(|e| e.to_string())?;
    let points: usize = report.scenarios.iter().map(|s| s.points.len()).sum();
    println!(
        "{path}: valid schema v{} report of suite `{}` ({} scenarios, {points} points)",
        report.schema_version,
        report.suite,
        report.scenarios.len()
    );
    Ok(())
}
