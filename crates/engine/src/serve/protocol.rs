//! The wire protocol: length-prefixed JSON frames and the tagged
//! request/reply vocabulary.
//!
//! Every message is one *frame*: a 4-byte big-endian `u32` payload length
//! followed by that many bytes of UTF-8 JSON. Framing is hand-rolled over
//! `std::io` so the daemon needs no async runtime; a blocked `read` on one
//! connection never stalls another because each connection owns a thread.
//!
//! Requests and replies are *tagged structs* rather than enums: a `kind`
//! discriminant string plus optional per-kind fields. This keeps the wire
//! shape within what the vendored `serde_derive` shim supports (plain
//! non-generic structs) while staying forward-compatible — unknown fields
//! are ignored, missing optional fields decode as `None`.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::scenario::Suite;

/// Upper bound on a single frame's payload, in bytes (32 MiB).
///
/// Large enough for any realistic suite or report, small enough that a
/// corrupt or hostile length header cannot make the peer allocate
/// gigabytes.
pub const MAX_FRAME_BYTES: u32 = 32 * 1024 * 1024;

/// Schema version stamped into every [`StatsSnapshot`].
///
/// Version history: `1` — the PR 7 original; `2` — adds the per-session
/// counters section and the store tier/compression fields (`remote_hits`,
/// `logical_bytes`, per-version entry counts); `3` — adds the failure-model
/// counters: `queue.cancelled`, `sessions.reaped`, and the remote-tier
/// circuit-breaker fields on the store section (`breaker_opens`,
/// `breaker_closes`, `breaker_probes`, `breaker_open`, `dropped_puts`).
pub const STATS_SCHEMA_VERSION: u64 = 3;

/// Writes one length-prefixed frame and flushes the stream.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length",
        )
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    // One write for header + payload: a split write would let Nagle hold
    // the 4-byte header back for the peer's delayed ACK (~40ms per frame).
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// the connection between messages). EOF in the middle of a frame is an
/// `UnexpectedEof` error — the peer died mid-message.
pub fn read_frame<R: Read>(stream: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(stream, &mut header)? {
        HeaderRead::Eof => return Ok(None),
        HeaderRead::Full => {}
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes, above the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The outcome of one [`read_frame_budgeted`] call: either a frame, or one
/// of the structured reasons no frame arrived.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer closed between messages.
    Eof,
    /// The shutdown flag was observed while no frame was in progress.
    Shutdown,
    /// No frame *started* within the idle budget: the session is a
    /// candidate for reaping.
    IdleTimeout,
    /// A frame started but did not *complete* within the frame budget — a
    /// slow-loris peer trickling (or abandoning) a header or payload.
    Stalled,
}

/// Like [`read_frame`], but interruptible and budgeted: tolerates read
/// timeouts, re-checking `shutdown` and the deadlines on every tick.
///
/// The stream must have a read timeout configured — that timeout is the
/// poll tick, the budgets here are the policy:
///
/// * `idle_timeout` bounds how long the call waits for a frame to *start*
///   (measured from the call, i.e. from the end of the previous request).
///   `None` waits forever.
/// * `frame_timeout` bounds how long a frame may take from its first byte
///   to its last, closing the classic slow-loris hole where one header
///   byte pinned a session thread indefinitely. Checked on every tick
///   *and* after every partial read, so a byte-per-tick trickle cannot
///   dodge it. `None` waits forever.
///
/// Deadline expiry is a structured [`FrameRead`], never an `Err`: the
/// caller decides whether to reap politely or drop the connection.
pub fn read_frame_budgeted<R: Read>(
    stream: &mut R,
    shutdown: &AtomicBool,
    idle_timeout: Option<Duration>,
    frame_timeout: Option<Duration>,
) -> io::Result<FrameRead> {
    let idle_start = Instant::now();
    let mut frame_start: Option<Instant> = None;
    let over_frame_budget = |frame_start: &Option<Instant>| matches!((frame_start, frame_timeout), (Some(start), Some(budget)) if start.elapsed() >= budget);
    let mut header = [0u8; 4];
    let mut have = 0usize;
    while have < header.len() {
        if over_frame_budget(&frame_start) {
            return Ok(FrameRead::Stalled);
        }
        match stream.read(&mut header[have..]) {
            Ok(0) => {
                if have == 0 {
                    return Ok(FrameRead::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                frame_start.get_or_insert_with(Instant::now);
                have += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if frame_start.is_none() {
                    if shutdown.load(Ordering::Acquire) {
                        return Ok(FrameRead::Shutdown);
                    }
                    if idle_timeout.is_some_and(|budget| idle_start.elapsed() >= budget) {
                        return Ok(FrameRead::IdleTimeout);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes, above the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut read = 0usize;
    while read < payload.len() {
        if over_frame_budget(&frame_start) {
            return Ok(FrameRead::Stalled);
        }
        match stream.read(&mut payload[read..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Like [`read_frame`], but tolerates read timeouts while *idle* so the
/// server can notice a shutdown flag between requests.
///
/// The stream should have a read timeout configured. While no header byte
/// has arrived yet, a timeout just re-checks `shutdown`; returns
/// `Ok(None)` if it was raised (or on clean EOF). Once any byte of a frame
/// has arrived, the peer is mid-message and timeouts keep waiting for the
/// rest — [`read_frame_budgeted`] is the variant that bounds that wait.
pub fn read_frame_interruptible<R: Read>(
    stream: &mut R,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    match read_frame_budgeted(stream, shutdown, None, None)? {
        FrameRead::Frame(payload) => Ok(Some(payload)),
        // Without budgets the timeout variants cannot occur; mapping them
        // to a closed stream keeps the compat surface total.
        FrameRead::Eof | FrameRead::Shutdown | FrameRead::IdleTimeout | FrameRead::Stalled => {
            Ok(None)
        }
    }
}

enum HeaderRead {
    Full,
    Eof,
}

fn read_exact_or_eof<R: Read>(stream: &mut R, buf: &mut [u8]) -> io::Result<HeaderRead> {
    let mut have = 0usize;
    while have < buf.len() {
        match stream.read(&mut buf[have..]) {
            Ok(0) => {
                if have == 0 {
                    return Ok(HeaderRead::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(HeaderRead::Full)
}

/// Serializes a request and writes it as one frame.
pub fn send_request<W: Write>(stream: &mut W, request: &Request) -> io::Result<()> {
    let payload = serde_json::to_vec(request)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, &payload)
}

/// Serializes a reply and writes it as one frame.
pub fn send_reply<W: Write>(stream: &mut W, reply: &Reply) -> io::Result<()> {
    let payload = serde_json::to_vec(reply)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, &payload)
}

/// Reads one frame and decodes it as a [`Reply`].
///
/// Returns `Ok(None)` on clean EOF; a frame that is not valid reply JSON
/// is an `InvalidData` error.
pub fn read_reply<R: Read>(stream: &mut R) -> io::Result<Option<Reply>> {
    match read_frame(stream)? {
        None => Ok(None),
        Some(payload) => serde_json::from_slice(&payload)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// A client-to-server message.
///
/// `kind` selects the operation; the optional fields are per-kind
/// parameters:
///
/// * `"run"` — submit a suite for solving. Exactly one of `suite` (an
///   inline suite definition) or `suite_name` (a built-in) may be set;
///   neither defaults to the built-in `paper` suite. `jobs` caps worker
///   parallelism for this submission; `deadline_ms` asks the server to
///   cancel the submission if it has not completed that many milliseconds
///   after the run request was read.
/// * `"cancel"` — cancel the submission identified by `ticket` (from its
///   `"accepted"` reply), whether it is still queued or already running.
///   The cancelled submission's own session receives the structured
///   `"cancelled"` reply; the canceller gets `"cancelled"` as an
///   acknowledgement, or `"error"` if the ticket names no live submission.
/// * `"stats"` — request a [`StatsSnapshot`].
/// * `"store_get"` — fetch one store entry body by content address
///   (`key_hash`); answered with a `"store_entry"` reply. Used by the
///   remote store tier, not by interactive clients.
/// * `"store_put"` — offer one store entry body (`entry`) for the peer's
///   store; the peer validates it and derives the address itself. Answered
///   with `"store_ok"` or `"error"`.
/// * `"store_stats"` — request the peer's store view alone (a
///   [`StoreReport`]), cheaper than a full `"stats"` snapshot.
/// * `"shutdown"` — ask the server to drain and exit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Operation discriminant (see the type-level list).
    pub kind: String,
    /// Inline suite definition for a `"run"` request.
    pub suite: Option<Suite>,
    /// Built-in suite name for a `"run"` request.
    pub suite_name: Option<String>,
    /// Worker-parallelism cap for this submission.
    pub jobs: Option<u64>,
    /// Server-side completion deadline for a `"run"`, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Submission ticket to abort, for a `"cancel"`.
    pub ticket: Option<u64>,
    /// Content address (16 lowercase hex digits) for a `"store_get"`.
    pub key_hash: Option<String>,
    /// Entry body text for a `"store_put"`.
    pub entry: Option<String>,
}

impl Request {
    fn blank(kind: &str) -> Self {
        Self {
            kind: kind.to_string(),
            suite: None,
            suite_name: None,
            jobs: None,
            deadline_ms: None,
            ticket: None,
            key_hash: None,
            entry: None,
        }
    }

    /// A `"run"` request for a built-in suite by name.
    pub fn run_builtin(name: &str, jobs: u64) -> Self {
        Self {
            suite_name: Some(name.to_string()),
            jobs: Some(jobs),
            ..Self::blank("run")
        }
    }

    /// A `"run"` request carrying an inline suite definition.
    pub fn run_suite(suite: Suite, jobs: u64) -> Self {
        Self {
            suite: Some(suite),
            jobs: Some(jobs),
            ..Self::blank("run")
        }
    }

    /// This request with a server-side completion deadline attached
    /// (meaningful on `"run"` requests).
    pub fn with_deadline_ms(self, deadline_ms: u64) -> Self {
        Self {
            deadline_ms: Some(deadline_ms),
            ..self
        }
    }

    /// A `"cancel"` request for the submission holding `ticket`.
    pub fn cancel(ticket: u64) -> Self {
        Self {
            ticket: Some(ticket),
            ..Self::blank("cancel")
        }
    }

    /// A `"stats"` request.
    pub fn stats() -> Self {
        Self::blank("stats")
    }

    /// A `"store_get"` request for the entry at `address`.
    pub fn store_get(address: &str) -> Self {
        Self {
            key_hash: Some(address.to_string()),
            ..Self::blank("store_get")
        }
    }

    /// A `"store_put"` request offering one entry body.
    pub fn store_put(body: String) -> Self {
        Self {
            entry: Some(body),
            ..Self::blank("store_put")
        }
    }

    /// A `"store_stats"` request.
    pub fn store_stats() -> Self {
        Self::blank("store_stats")
    }

    /// A `"shutdown"` request.
    pub fn shutdown() -> Self {
        Self::blank("shutdown")
    }
}

/// A server-to-client message.
///
/// `kind` is the discriminant:
///
/// * `"accepted"` — the submission was admitted; `ticket` identifies it,
///   `queue_depth` is the depth observed at admission.
/// * `"rejected"` — admission control refused the submission; `message`
///   says why and `retry_after_ms` is the suggested back-off. Never sent
///   silently — every refused submission gets one.
/// * `"point"` — one solved sweep point, streamed in deterministic suite
///   order: `scenario`, `capacity_cap` and `feasible` describe it.
/// * `"report"` — the submission is complete; `report` holds the exact
///   `SuiteReport::to_json()` text, and `message` carries a failure
///   summary when any point failed unexpectedly.
/// * `"cancelled"` — the submission identified by `ticket` was aborted
///   (client disconnect, `"cancel"` request, or deadline); `message` names
///   the reason. Sent in place of the `"report"` the submission will never
///   produce, and to acknowledge a `"cancel"` request.
/// * `"stats"` — answer to a `"stats"` request, in `stats`.
/// * `"store_entry"` — answer to a `"store_get"`: `entry` holds the body
///   (absent on a miss — a miss is a normal reply, not an error) and
///   `entry_version` the container version it was read from.
/// * `"store_ok"` — acknowledgement of an accepted `"store_put"`.
/// * `"store_stats"` — answer to a `"store_stats"` request, in `store`.
/// * `"bye"` — acknowledgement of a `"shutdown"` request.
/// * `"error"` — the request could not be handled; `message` explains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// Message discriminant (see the type-level list).
    pub kind: String,
    /// Submission ticket, on `"accepted"`.
    pub ticket: Option<u64>,
    /// Queue depth observed at admission, on `"accepted"`.
    pub queue_depth: Option<u64>,
    /// Suggested back-off before retrying, on `"rejected"`.
    pub retry_after_ms: Option<u64>,
    /// Human-readable detail, on `"rejected"`, `"report"` and `"error"`.
    pub message: Option<String>,
    /// Scenario name, on `"point"`.
    pub scenario: Option<String>,
    /// Sweep capacity cap, on `"point"`.
    pub capacity_cap: Option<u64>,
    /// Whether the point's solve was feasible, on `"point"`.
    pub feasible: Option<bool>,
    /// The full report JSON text, on `"report"`.
    pub report: Option<String>,
    /// The stats payload, on `"stats"`.
    pub stats: Option<StatsSnapshot>,
    /// The entry body, on a `"store_entry"` hit.
    pub entry: Option<String>,
    /// Container version the entry was read from, on `"store_entry"`.
    pub entry_version: Option<u64>,
    /// The store view, on `"store_stats"`.
    pub store: Option<StoreReport>,
}

impl Reply {
    fn blank(kind: &str) -> Self {
        Self {
            kind: kind.to_string(),
            ticket: None,
            queue_depth: None,
            retry_after_ms: None,
            message: None,
            scenario: None,
            capacity_cap: None,
            feasible: None,
            report: None,
            stats: None,
            entry: None,
            entry_version: None,
            store: None,
        }
    }

    /// An `"accepted"` reply.
    pub fn accepted(ticket: u64, queue_depth: u64) -> Self {
        Self {
            ticket: Some(ticket),
            queue_depth: Some(queue_depth),
            ..Self::blank("accepted")
        }
    }

    /// A `"rejected"` reply with a retry hint.
    pub fn rejected(message: &str, retry_after_ms: u64) -> Self {
        Self {
            message: Some(message.to_string()),
            retry_after_ms: Some(retry_after_ms),
            ..Self::blank("rejected")
        }
    }

    /// A `"point"` reply for one solved sweep point (`capacity_cap` is
    /// `None` for single, unswept solves).
    pub fn point(scenario: &str, capacity_cap: Option<u64>, feasible: bool) -> Self {
        Self {
            scenario: Some(scenario.to_string()),
            capacity_cap,
            feasible: Some(feasible),
            ..Self::blank("point")
        }
    }

    /// A `"report"` reply carrying the exact report JSON text and an
    /// optional failure summary.
    pub fn report(report: String, failures: Option<String>) -> Self {
        Self {
            report: Some(report),
            message: failures,
            ..Self::blank("report")
        }
    }

    /// A `"cancelled"` reply: the aborted submission's ticket plus the
    /// reason the abort happened.
    pub fn cancelled(ticket: u64, reason: &str) -> Self {
        Self {
            ticket: Some(ticket),
            message: Some(reason.to_string()),
            ..Self::blank("cancelled")
        }
    }

    /// A `"stats"` reply.
    pub fn stats(snapshot: StatsSnapshot) -> Self {
        Self {
            stats: Some(snapshot),
            ..Self::blank("stats")
        }
    }

    /// A `"store_entry"` reply: the body and container version on a hit,
    /// both absent on a miss.
    pub fn store_entry(body: Option<String>, version: Option<u64>) -> Self {
        Self {
            entry: body,
            entry_version: version,
            ..Self::blank("store_entry")
        }
    }

    /// A `"store_ok"` reply acknowledging an accepted `"store_put"`.
    pub fn store_ok() -> Self {
        Self::blank("store_ok")
    }

    /// A `"store_stats"` reply.
    pub fn store_stats(report: StoreReport) -> Self {
        Self {
            store: Some(report),
            ..Self::blank("store_stats")
        }
    }

    /// A `"bye"` reply acknowledging shutdown.
    pub fn bye() -> Self {
        Self::blank("bye")
    }

    /// An `"error"` reply with an explanation.
    pub fn error(message: &str) -> Self {
        Self {
            message: Some(message.to_string()),
            ..Self::blank("error")
        }
    }
}

/// Counters of the bounded submission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Submissions currently waiting in the queue.
    pub depth: u64,
    /// Submissions handed to the engine but not yet completed.
    pub in_flight: u64,
    /// Admission-control capacity (queued + in-flight bound).
    pub capacity: u64,
    /// Total submissions ever admitted.
    pub submitted: u64,
    /// Total submissions completed.
    pub completed: u64,
    /// Total submissions refused by admission control.
    pub rejected: u64,
    /// Total submissions aborted by cancellation (client disconnect,
    /// `cancel` request, or deadline). Cancelled submissions also count as
    /// `completed` — their queue slot is released normally.
    pub cancelled: u64,
}

/// Counters of the shared engine pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Persistent worker threads in the shared pool.
    pub workers: u64,
}

/// Combined view of the persistent store: contents plus lifetime traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreReport {
    /// Root directory of the on-disk store.
    pub directory: String,
    /// Entries currently on disk.
    pub entries: u64,
    /// Entries holding feasible results.
    pub feasible: u64,
    /// Entries holding infeasible results.
    pub infeasible: u64,
    /// Unreadable or schema-mismatched entries.
    pub corrupt: u64,
    /// Entries still in the `v1` (plain JSON) container format.
    pub v1_entries: u64,
    /// Entries in the current `v2` (compressed) container format.
    pub v2_entries: u64,
    /// Physical bytes across all entries (compressed sizes for `v2`).
    pub total_bytes: u64,
    /// Uncompressed bytes across all readable entry bodies.
    pub logical_bytes: u64,
    /// Solves answered from the local disk tier this process.
    pub disk_hits: u64,
    /// Solves answered by a remote store peer this process.
    pub remote_hits: u64,
    /// Solves that missed every persistent tier this process.
    pub fresh_solves: u64,
    /// Results newly written to disk this process.
    pub stored: u64,
    /// Entries ignored as corrupt, foreign-schema or colliding this
    /// process.
    pub rejected: u64,
    /// Times the remote tier's circuit breaker opened (consecutive-failure
    /// threshold reached) this process. Zero without a remote tier.
    pub breaker_opens: u64,
    /// Times a health probe closed the breaker again this process.
    pub breaker_closes: u64,
    /// Health probes (`store_stats` round trips) attempted while the
    /// breaker was open this process.
    pub breaker_probes: u64,
    /// Whether the breaker is open right now (the remote tier is being
    /// bypassed between probes).
    pub breaker_open: bool,
    /// Write-behind puts dropped because the remote tier was unavailable.
    pub dropped_puts: u64,
}

impl StoreReport {
    /// Combines one store's on-disk scan with its per-process traffic
    /// counters.
    pub fn from_parts(
        directory: &std::path::Path,
        summary: crate::store::StoreSummary,
        stats: crate::store::StoreStats,
    ) -> Self {
        Self {
            directory: directory.display().to_string(),
            entries: summary.entries,
            feasible: summary.feasible,
            infeasible: summary.infeasible,
            corrupt: summary.corrupt,
            v1_entries: summary.v1_entries,
            v2_entries: summary.v2_entries,
            total_bytes: summary.total_bytes,
            logical_bytes: summary.logical_bytes,
            disk_hits: stats.disk_hits,
            remote_hits: stats.remote_hits,
            fresh_solves: stats.fresh_solves,
            stored: stats.stored,
            rejected: stats.rejected,
            breaker_opens: stats.breaker_opens,
            breaker_closes: stats.breaker_closes,
            breaker_probes: stats.breaker_probes,
            breaker_open: stats.breaker_open,
            dropped_puts: stats.dropped_puts,
        }
    }

    /// Builds the combined view of one store: the on-disk scan
    /// ([`SolveStore::summary`](crate::SolveStore::summary), zeroed if the
    /// scan fails — stats must stay servable on a degraded disk) plus this
    /// process's traffic counters
    /// ([`SolveStore::stats`](crate::SolveStore::stats)).
    pub fn for_store(store: &crate::store::SolveStore) -> Self {
        Self::from_parts(
            store.root(),
            store.summary().unwrap_or_default(),
            store.stats(),
        )
    }
}

/// Counters of the daemon's connection-level admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Client sessions currently connected.
    pub active: u64,
    /// Maximum concurrent sessions accepted before reject-at-accept.
    pub limit: u64,
    /// Connections refused because the session limit was reached.
    pub rejected: u64,
    /// Sessions closed by the server's deadlines: idle connections past the
    /// idle timeout, and slow-loris peers that stalled mid-frame.
    pub reaped: u64,
}

/// The machine-readable stats object.
///
/// This is the **one** serialized shape shared by the `stats` protocol
/// request and `bbs cache stats --json`: both emit exactly
/// [`StatsSnapshot::to_json`]. Sections are optional so each producer
/// includes only what it has — the CLI offline path has a store but no
/// queue or engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Stats schema version ([`STATS_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Submission-queue counters, when a queue exists.
    pub queue: Option<QueueStats>,
    /// Engine-pool counters, when an engine exists.
    pub engine: Option<EngineStats>,
    /// In-memory solve-cache counters, when a cache exists.
    pub cache: Option<CacheStats>,
    /// Persistent-store view, when a store is attached.
    pub store: Option<StoreReport>,
    /// Connection-admission counters, when a daemon produced the snapshot.
    pub sessions: Option<SessionStats>,
}

impl StatsSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn new() -> Self {
        Self {
            schema: STATS_SCHEMA_VERSION,
            queue: None,
            engine: None,
            cache: None,
            store: None,
            sessions: None,
        }
    }

    /// Serializes the snapshot as pretty JSON with a trailing newline —
    /// the canonical machine-readable form for both the protocol and the
    /// CLI.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("stats snapshot serializes");
        text.push('\n');
        text
    }

    /// Parses a snapshot back from [`StatsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl Default for StatsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, SweepSpec, WorkloadSpec};
    use bbs_taskgraph::presets::PresetSpec;
    use std::io::Cursor;

    fn sample_suite() -> Suite {
        Suite::new(
            "wire",
            vec![Scenario::new(
                "pc",
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::range(1, 3))],
        )
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"first").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        write_frame(&mut buffer, "snowman \u{2603}".as_bytes()).unwrap();
        let mut cursor = Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            "snowman \u{2603}".as_bytes()
        );
        // Clean EOF at a frame boundary is a graceful end of stream.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_and_oversized_headers_are_errors() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"whole frame").unwrap();
        buffer.truncate(buffer.len() - 3);
        let mut cursor = Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let huge = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        let mut cursor = Cursor::new(huge);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut sink = Vec::new();
        let payload = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        assert!(write_frame(&mut sink, &payload).is_err());
    }

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::run_builtin("smoke", 4),
            Request::run_builtin("smoke", 4).with_deadline_ms(1500),
            Request::run_suite(sample_suite(), 2),
            Request::cancel(7),
            Request::stats(),
            Request::store_get("00ff00ff00ff00ff"),
            Request::store_put("{\"schema\":2}\n".to_string()),
            Request::store_stats(),
            Request::shutdown(),
        ];
        let mut buffer = Vec::new();
        for request in &requests {
            send_request(&mut buffer, request).unwrap();
        }
        let mut cursor = Cursor::new(buffer);
        for request in &requests {
            let payload = read_frame(&mut cursor).unwrap().unwrap();
            let decoded: Request = serde_json::from_slice(&payload).unwrap();
            assert_eq!(&decoded, request);
        }
    }

    #[test]
    fn replies_round_trip_including_the_verbatim_report_text() {
        let report_text = "{\n  \"schema\": 1,\n  \"name\": \"quoted \\\"x\\\"\"\n}\n";
        let replies = vec![
            Reply::accepted(7, 3),
            Reply::rejected("queue full", 250),
            Reply::point("pc", Some(4), true),
            Reply::point("single", None, false),
            Reply::report(report_text.to_string(), Some("1 failure".to_string())),
            Reply::cancelled(7, "client disconnected"),
            Reply::stats(StatsSnapshot::new()),
            Reply::store_entry(Some("{\"schema\":2}\n".to_string()), Some(2)),
            Reply::store_entry(None, None),
            Reply::store_ok(),
            Reply::bye(),
            Reply::error("unknown kind"),
        ];
        let mut buffer = Vec::new();
        for reply in &replies {
            let payload = serde_json::to_vec(reply).unwrap();
            write_frame(&mut buffer, &payload).unwrap();
        }
        let mut cursor = Cursor::new(buffer);
        for reply in &replies {
            let decoded = read_reply(&mut cursor).unwrap().unwrap();
            assert_eq!(&decoded, reply);
        }
        // The report text survives escaping byte-for-byte — the property
        // the CI `cmp` gate rests on.
        let echoed = Reply::report(report_text.to_string(), None);
        let wire = serde_json::to_vec(&echoed).unwrap();
        let back: Reply = serde_json::from_slice(&wire).unwrap();
        assert_eq!(back.report.as_deref(), Some(report_text));
    }

    #[test]
    fn stats_snapshot_round_trips_with_and_without_sections() {
        let empty = StatsSnapshot::new();
        assert_eq!(StatsSnapshot::from_json(&empty.to_json()).unwrap(), empty);

        let full = StatsSnapshot {
            schema: STATS_SCHEMA_VERSION,
            queue: Some(QueueStats {
                depth: 2,
                in_flight: 1,
                capacity: 32,
                submitted: 40,
                completed: 37,
                rejected: 5,
                cancelled: 3,
            }),
            engine: Some(EngineStats { workers: 8 }),
            cache: Some(CacheStats {
                hits: 10,
                misses: 6,
            }),
            store: Some(StoreReport {
                directory: "/tmp/store".to_string(),
                entries: 6,
                feasible: 4,
                infeasible: 2,
                corrupt: 0,
                v1_entries: 1,
                v2_entries: 5,
                total_bytes: 4096,
                logical_bytes: 9000,
                disk_hits: 3,
                remote_hits: 1,
                fresh_solves: 6,
                stored: 6,
                rejected: 0,
                breaker_opens: 1,
                breaker_closes: 1,
                breaker_probes: 4,
                breaker_open: false,
                dropped_puts: 2,
            }),
            sessions: Some(SessionStats {
                active: 2,
                limit: 64,
                rejected: 1,
                reaped: 1,
            }),
        };
        let text = full.to_json();
        assert!(text.ends_with('\n'));
        assert_eq!(StatsSnapshot::from_json(&text).unwrap(), full);

        // A v1-era snapshot (no sessions section, no tier fields) still
        // decodes: missing optional fields are `None`/zero, not errors.
        let legacy = "{\"schema\":1,\"queue\":null,\"engine\":null,\"cache\":null,\"store\":null}";
        let decoded = StatsSnapshot::from_json(legacy).unwrap();
        assert_eq!(decoded.schema, 1);
        assert!(decoded.sessions.is_none());
    }

    /// A reader following a fixed script of results, simulating a socket
    /// with a read timeout: `None` entries time out (`WouldBlock`), `Some`
    /// entries deliver bytes. After the script, every read times out.
    struct ScriptedReader {
        script: std::collections::VecDeque<Option<Vec<u8>>>,
    }

    impl ScriptedReader {
        fn new(script: Vec<Option<&[u8]>>) -> Self {
            Self {
                script: script.into_iter().map(|s| s.map(<[u8]>::to_vec)).collect(),
            }
        }
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    Ok(n)
                }
                Some(None) | None => Err(io::Error::new(io::ErrorKind::WouldBlock, "tick")),
            }
        }
    }

    #[test]
    fn budgeted_read_reaps_idle_streams_and_mid_frame_stalls() {
        let live = AtomicBool::new(false);

        // Nothing ever arrives: the idle budget fires (zero budget — the
        // first timeout tick is already over it).
        let mut idle = ScriptedReader::new(vec![None, None]);
        let read = read_frame_budgeted(&mut idle, &live, Some(Duration::ZERO), None).unwrap();
        assert!(matches!(read, FrameRead::IdleTimeout), "got {read:?}");

        // One header byte, then silence: the idle budget no longer applies
        // (a frame is in progress) but the frame budget does — the
        // slow-loris hole this call exists to close.
        let mut loris = ScriptedReader::new(vec![Some(&[0u8][..]), None, None]);
        let read = read_frame_budgeted(
            &mut loris,
            &live,
            Some(Duration::from_secs(3600)),
            Some(Duration::ZERO),
        )
        .unwrap();
        assert!(matches!(read, FrameRead::Stalled), "got {read:?}");

        // A byte-per-tick trickle cannot dodge the frame budget either:
        // the budget is checked between reads, not only on timeouts.
        let mut trickle = ScriptedReader::new(vec![
            Some(&[0u8][..]),
            Some(&[0u8][..]),
            Some(&[0u8][..]),
            Some(&[4u8][..]),
            Some(&[b'a'][..]),
            None,
        ]);
        let read = read_frame_budgeted(&mut trickle, &live, None, Some(Duration::ZERO)).unwrap();
        assert!(matches!(read, FrameRead::Stalled), "got {read:?}");

        // An unbudgeted read still delivers a whole frame across ticks.
        let mut patient = ScriptedReader::new(vec![
            None,
            Some(&[0u8, 0, 0, 2][..]),
            None,
            Some(&[b'h'][..]),
            Some(&[b'i'][..]),
        ]);
        let read = read_frame_budgeted(&mut patient, &live, None, None).unwrap();
        match read {
            FrameRead::Frame(payload) => assert_eq!(payload, b"hi"),
            other => panic!("expected a frame, got {other:?}"),
        }

        // The shutdown flag still interrupts an idle wait.
        let shutting_down = AtomicBool::new(true);
        let mut idle = ScriptedReader::new(vec![None]);
        let read = read_frame_budgeted(&mut idle, &shutting_down, None, None).unwrap();
        assert!(matches!(read, FrameRead::Shutdown), "got {read:?}");
    }

    #[test]
    fn malformed_reply_frames_are_invalid_data() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"{not json").unwrap();
        let mut cursor = Cursor::new(buffer);
        let err = read_reply(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
