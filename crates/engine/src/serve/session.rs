//! One connection, one thread: reads request frames, dispatches them,
//! streams replies.
//!
//! A session owns its socket for its whole lifetime. Requests on one
//! connection are handled strictly in order; a `"run"` request blocks the
//! session (not the server) until the dispatcher returns its outcome,
//! then the per-point replies and the final report are streamed back in
//! deterministic suite order. A short read timeout lets an *idle* session
//! notice graceful shutdown without a dedicated control channel.
//!
//! While a run is in flight the session keeps watching its socket: a
//! client that disconnects, exceeds its requested deadline, or sends a
//! `"cancel"` frame fires the submission's [`CancelToken`], aborting the
//! work within one work item — a dead client no longer burns the engine
//! for a report nobody will read. Sessions themselves are reaped when the
//! server's idle timeout or per-frame read budget runs out, so a silent
//! or byte-trickling peer cannot pin a session thread forever.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use super::fault::ReplyAction;
use super::protocol::{read_frame_budgeted, send_reply, FrameRead, Reply, Request, StoreReport};
use super::queue::Admission;
use super::server::{ServiceState, Submission};
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::report::SuiteReport;
use crate::scenario::Suite;
use crate::store::is_entry_address;
use crate::suites::builtin_suite;

/// How long an idle read waits before re-checking the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// How long the run wait-loop sleeps between checks of the dispatcher
/// channel, the client socket and the deadline.
const RUN_POLL: Duration = Duration::from_millis(50);

/// Ceiling on per-submission worker parallelism a client may request.
const MAX_JOBS: u64 = 64;

/// Runs one connection to completion. Never panics outward; any I/O
/// failure simply ends the session (and fires the cancel token of a run
/// in flight, if any).
pub(crate) fn handle_connection(mut stream: TcpStream, state: Arc<ServiceState>) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let _ = stream.set_nodelay(true);
    let client_id = state.clients.fetch_add(1, Ordering::Relaxed) + 1;
    loop {
        let payload = match read_frame_budgeted(
            &mut stream,
            &state.shutdown,
            state.idle_timeout,
            Some(state.frame_timeout),
        ) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::IdleTimeout) => {
                state.reaped.fetch_add(1, Ordering::Relaxed);
                let _ = send_reply(&mut stream, &Reply::error("session reaped: idle timeout"));
                break;
            }
            Ok(FrameRead::Stalled) => {
                state.reaped.fetch_add(1, Ordering::Relaxed);
                // Courtesy only — a peer that trickles bytes may well not
                // read this either.
                let _ = send_reply(
                    &mut stream,
                    &Reply::error("session reaped: request frame stalled"),
                );
                break;
            }
            // Clean EOF, shutdown while idle, or a broken/garbled peer.
            Ok(FrameRead::Eof) | Ok(FrameRead::Shutdown) | Err(_) => break,
        };
        if state.faults.sever_now() {
            break; // injected mid-request crash: no reply, just vanish
        }
        let request: Request = match serde_json::from_slice(&payload) {
            Ok(request) => request,
            Err(e) => {
                let reply = Reply::error(&format!("malformed request: {e}"));
                if send_reply_faulted(&mut stream, &state, &reply).is_err() {
                    break;
                }
                continue;
            }
        };
        let keep_going = match request.kind.as_str() {
            "run" => handle_run(&mut stream, &state, client_id, request),
            "cancel" => handle_cancel(&mut stream, &state, &request),
            "stats" => {
                send_reply_faulted(&mut stream, &state, &Reply::stats(state.snapshot())).is_ok()
            }
            // Store-peer requests are answered inline by the session
            // thread: they are pure I/O against the shared store and must
            // not wait behind queued solve submissions.
            "store_get" => {
                send_reply_faulted(&mut stream, &state, &handle_store_get(&state, &request)).is_ok()
            }
            "store_put" => {
                send_reply_faulted(&mut stream, &state, &handle_store_put(&state, &request)).is_ok()
            }
            "store_stats" => {
                let reply = match state.cache.store() {
                    Some(store) => Reply::store_stats(StoreReport::for_store(store)),
                    None => Reply::error("server has no persistent store attached"),
                };
                send_reply_faulted(&mut stream, &state, &reply).is_ok()
            }
            "shutdown" => {
                let _ = send_reply_faulted(&mut stream, &state, &Reply::bye());
                state.initiate_shutdown();
                false
            }
            other => {
                let reply = Reply::error(&format!(
                    "unknown request kind {other:?} (expected run, cancel, stats, store_get, \
                     store_put, store_stats or shutdown)"
                ));
                send_reply_faulted(&mut stream, &state, &reply).is_ok()
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// [`send_reply`] through the fault plan: the injected drop swallows the
/// frame (reported as sent), the injected stall sleeps first.
fn send_reply_faulted(
    stream: &mut TcpStream,
    state: &ServiceState,
    reply: &Reply,
) -> io::Result<()> {
    match state.faults.reply_action() {
        ReplyAction::Deliver => send_reply(stream, reply),
        ReplyAction::Drop => Ok(()),
        ReplyAction::Stall(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            send_reply(stream, reply)
        }
    }
}

/// What [`poll_client`] observed on the socket while a run was in flight.
enum ClientPoll {
    /// Nothing to report; keep waiting.
    Idle,
    /// The client is gone (EOF, reset, or an unusable frame stream).
    Disconnected,
}

/// One tick of mid-run socket watching: detects a disconnected client and
/// services frames that arrive while the run is in flight (`cancel` for
/// this or any other ticket; everything else is refused until the run's
/// result is out). Restores the idle read timeout before returning.
fn poll_client(
    stream: &mut TcpStream,
    state: &ServiceState,
    own_ticket: u64,
    cancel: &CancelToken,
    cancel_reason: &mut Option<String>,
) -> ClientPoll {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut probe = [0u8; 1];
    let poll = match stream.peek(&mut probe) {
        Ok(0) => ClientPoll::Disconnected,
        Ok(_) => {
            // Bytes are waiting: read the whole frame with the normal
            // budgets (no idle budget — the first byte already arrived).
            let _ = stream.set_read_timeout(Some(IDLE_POLL));
            match read_frame_budgeted(stream, &state.shutdown, None, Some(state.frame_timeout)) {
                Ok(FrameRead::Frame(payload)) => {
                    handle_midrun_frame(stream, state, own_ticket, cancel, cancel_reason, &payload);
                    ClientPoll::Idle
                }
                Ok(FrameRead::Shutdown) => ClientPoll::Idle,
                Ok(FrameRead::Stalled) => {
                    state.reaped.fetch_add(1, Ordering::Relaxed);
                    ClientPoll::Disconnected
                }
                Ok(FrameRead::Eof) | Ok(FrameRead::IdleTimeout) | Err(_) => {
                    ClientPoll::Disconnected
                }
            }
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            ClientPoll::Idle
        }
        Err(_) => ClientPoll::Disconnected,
    };
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    poll
}

/// Services one frame that arrived while a run was in flight.
fn handle_midrun_frame(
    stream: &mut TcpStream,
    state: &ServiceState,
    own_ticket: u64,
    cancel: &CancelToken,
    cancel_reason: &mut Option<String>,
    payload: &[u8],
) {
    let request: Request = match serde_json::from_slice(payload) {
        Ok(request) => request,
        Err(e) => {
            let reply = Reply::error(&format!("malformed request: {e}"));
            let _ = send_reply_faulted(stream, state, &reply);
            return;
        }
    };
    match request.kind.as_str() {
        "cancel" => {
            // A bare cancel targets this session's own run.
            let target = request.ticket.unwrap_or(own_ticket);
            if target == own_ticket {
                cancel.cancel();
                cancel_reason.get_or_insert_with(|| "cancelled by request".to_string());
                // The pending run reply arrives as the `cancelled` frame —
                // that is the acknowledgement.
            } else if state.cancel_ticket(target) {
                let _ = send_reply_faulted(
                    stream,
                    state,
                    &Reply::cancelled(target, "cancellation requested"),
                );
            } else {
                let reply = Reply::error(&format!("no active submission with ticket {target}"));
                let _ = send_reply_faulted(stream, state, &reply);
            }
        }
        other => {
            let reply = Reply::error(&format!(
                "a run is in flight on this session; {other:?} must wait for its result"
            ));
            let _ = send_reply_faulted(stream, state, &reply);
        }
    }
}

/// Handles one `"cancel"` request on an otherwise idle session: fires the
/// token of the in-flight submission with that ticket, on whatever
/// session it lives.
fn handle_cancel(stream: &mut TcpStream, state: &ServiceState, request: &Request) -> bool {
    let Some(ticket) = request.ticket else {
        let reply = Reply::error("cancel needs a ticket");
        return send_reply_faulted(stream, state, &reply).is_ok();
    };
    let reply = if state.cancel_ticket(ticket) {
        Reply::cancelled(ticket, "cancellation requested")
    } else {
        Reply::error(&format!("no active submission with ticket {ticket}"))
    };
    send_reply_faulted(stream, state, &reply).is_ok()
}

/// Handles one `"run"` request end to end; returns `false` when the
/// session should end (write failure or a vanished client).
fn handle_run(
    stream: &mut TcpStream,
    state: &ServiceState,
    client_id: u64,
    request: Request,
) -> bool {
    let suite = match resolve_suite(&request) {
        Ok(suite) => suite,
        Err(message) => return send_reply_faulted(stream, state, &Reply::error(&message)).is_ok(),
    };
    let jobs = request.jobs.unwrap_or(1).clamp(1, MAX_JOBS) as usize;
    let (reply_tx, reply_rx) = mpsc::channel();
    let cancel = CancelToken::new();
    let ticket = state.tickets.fetch_add(1, Ordering::Relaxed) + 1;
    // Register before pushing: once admitted, the submission must be
    // cancellable with no window where the dispatcher could pick it up
    // unregistered.
    state.register_running(ticket, cancel.clone());
    let submission = Submission {
        suite,
        jobs,
        reply: reply_tx,
        cancel: cancel.clone(),
        ticket,
    };
    match state.queue.push(client_id, submission) {
        Err(Admission::Full) => {
            state.unregister_running(ticket);
            let reply = Reply::rejected("queue full", state.retry_after_ms);
            return send_reply_faulted(stream, state, &reply).is_ok();
        }
        Err(Admission::Closed) => {
            state.unregister_running(ticket);
            let reply = Reply::rejected("server is shutting down", state.retry_after_ms);
            return send_reply_faulted(stream, state, &reply).is_ok();
        }
        Ok(()) => {}
    }
    let depth = state.queue.stats().depth;
    if send_reply_faulted(stream, state, &Reply::accepted(ticket, depth)).is_err() {
        // The client is unreachable before the run even started; abort the
        // work instead of solving for nobody. The dispatcher still owns
        // the slot accounting.
        cancel.cancel();
        state.unregister_running(ticket);
        return false;
    }
    let deadline = request
        .deadline_ms
        .map(|millis| Instant::now() + Duration::from_millis(millis));
    let mut cancel_reason: Option<String> = None;
    let mut client_gone = false;
    // Wait for the dispatcher while watching the clock and the socket.
    // After a disconnect we keep waiting for the result — the engine
    // aborts via the token; the channel must stay open until it does.
    let result = loop {
        match reply_rx.recv_timeout(RUN_POLL) {
            Ok(result) => break Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(at) = deadline {
                    if Instant::now() >= at && !cancel.is_cancelled() {
                        cancel.cancel();
                        cancel_reason.get_or_insert_with(|| "deadline exceeded".to_string());
                    }
                }
                if !client_gone {
                    if let ClientPoll::Disconnected =
                        poll_client(stream, state, ticket, &cancel, &mut cancel_reason)
                    {
                        client_gone = true;
                        cancel.cancel();
                        cancel_reason.get_or_insert_with(|| "client disconnected".to_string());
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break None,
        }
    };
    state.unregister_running(ticket);
    if client_gone {
        return false;
    }
    let outcome = match result {
        None => {
            let reply = Reply::error("server dropped the submission during shutdown");
            return send_reply_faulted(stream, state, &reply).is_ok();
        }
        Some(Err(EngineError::Cancelled)) => {
            let reason = cancel_reason.as_deref().unwrap_or("cancellation requested");
            return send_reply_faulted(stream, state, &Reply::cancelled(ticket, reason)).is_ok();
        }
        Some(Err(e)) => {
            let reply = Reply::error(&format!("suite failed: {e}"));
            return send_reply_faulted(stream, state, &reply).is_ok();
        }
        // A token that fired too late to matter changes nothing: the
        // completed outcome streams back normally, byte-identical.
        Some(Ok(outcome)) => outcome,
    };
    // Stream per-point results in deterministic suite order, then the
    // byte-exact report — the same JSON `bbs run --json` would write.
    for scenario in &outcome.scenarios {
        for point in &scenario.points {
            let reply = Reply::point(
                &scenario.scenario.name,
                point.capacity_cap,
                point.result.is_ok(),
            );
            if send_reply_faulted(stream, state, &reply).is_err() {
                return false;
            }
        }
    }
    let failures = outcome.unexpected_failures();
    let message = if failures.is_empty() {
        None
    } else {
        Some(format!("{} point(s) failed unexpectedly", failures.len()))
    };
    let report = SuiteReport::from_outcome(&outcome);
    send_reply_faulted(stream, state, &Reply::report(report.to_json(), message)).is_ok()
}

/// Answers one `"store_get"`: the entry body at the requested address, or
/// a bodiless `"store_entry"` on a miss. Peer lookups never touch the
/// store's solve counters — they are the *peer's* solves, not this
/// daemon's.
fn handle_store_get(state: &ServiceState, request: &Request) -> Reply {
    let Some(store) = state.cache.store() else {
        return Reply::error("server has no persistent store attached");
    };
    let Some(address) = request.key_hash.as_deref().filter(|a| is_entry_address(a)) else {
        return Reply::error("store_get needs key_hash: 16 lowercase hex digits");
    };
    match store.peer_get(address) {
        Ok(Some(raw)) => Reply::store_entry(Some(raw.body), Some(raw.version)),
        Ok(None) => Reply::store_entry(None, None),
        Err(e) => Reply::error(&format!("store read failed: {e}")),
    }
}

/// Answers one `"store_put"`: validate the offered body and persist it
/// through the store's capped write path. The address is derived from the
/// body's embedded key — a peer's claimed address is never trusted.
fn handle_store_put(state: &ServiceState, request: &Request) -> Reply {
    if state.faults.fail_store_put_now() {
        return Reply::error("store_put refused: injected fault");
    }
    let Some(store) = state.cache.store() else {
        return Reply::error("server has no persistent store attached");
    };
    let Some(body) = request.entry.as_deref() else {
        return Reply::error("store_put needs an entry body");
    };
    match store.peer_put(body) {
        Ok(()) => Reply::store_ok(),
        Err(message) => Reply::error(&format!("store_put refused: {message}")),
    }
}

/// Picks the suite a `"run"` request addresses: an inline definition XOR
/// a built-in name, defaulting to the built-in `paper` suite.
fn resolve_suite(request: &Request) -> Result<Suite, String> {
    match (&request.suite, &request.suite_name) {
        (Some(_), Some(_)) => Err("set either suite or suite_name, not both".to_string()),
        (Some(suite), None) => Ok(suite.clone()),
        (None, Some(name)) => {
            builtin_suite(name).ok_or_else(|| format!("unknown built-in suite {name:?}"))
        }
        (None, None) => Ok(builtin_suite("paper").expect("paper suite is built in")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_suite_prefers_explicit_choices_and_defaults_to_paper() {
        assert_eq!(resolve_suite(&Request::stats()).unwrap().name, "paper");
        assert_eq!(
            resolve_suite(&Request::run_builtin("smoke", 1))
                .unwrap()
                .name,
            "smoke"
        );
        let inline = Suite::new("inline", Vec::new());
        assert_eq!(
            resolve_suite(&Request::run_suite(inline.clone(), 1))
                .unwrap()
                .name,
            "inline"
        );
        assert!(resolve_suite(&Request::run_builtin("nope", 1)).is_err());
        let mut both = Request::run_builtin("smoke", 1);
        both.suite = Some(inline);
        assert!(resolve_suite(&both).is_err());
    }
}
