//! One connection, one thread: reads request frames, dispatches them,
//! streams replies.
//!
//! A session owns its socket for its whole lifetime. Requests on one
//! connection are handled strictly in order; a `"run"` request blocks the
//! session (not the server) until the dispatcher returns its outcome,
//! then the per-point replies and the final report are streamed back in
//! deterministic suite order. A short read timeout lets an *idle* session
//! notice graceful shutdown without a dedicated control channel.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use super::protocol::{read_frame_interruptible, send_reply, Reply, Request, StoreReport};
use super::queue::Admission;
use super::server::{ServiceState, Submission};
use crate::report::SuiteReport;
use crate::scenario::Suite;
use crate::store::is_entry_address;
use crate::suites::builtin_suite;

/// How long an idle read waits before re-checking the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Ceiling on per-submission worker parallelism a client may request.
const MAX_JOBS: u64 = 64;

/// Runs one connection to completion. Never panics outward; any I/O
/// failure simply ends the session (the dispatcher finishes admitted work
/// regardless — a dead client cannot cancel a running solve).
pub(crate) fn handle_connection(mut stream: TcpStream, state: Arc<ServiceState>) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let client_id = state.clients.fetch_add(1, Ordering::Relaxed) + 1;
    // Clean EOF, shutdown while idle, or a broken peer all end the session.
    while let Ok(Some(payload)) = read_frame_interruptible(&mut stream, &state.shutdown) {
        let request: Request = match serde_json::from_slice(&payload) {
            Ok(request) => request,
            Err(e) => {
                let reply = Reply::error(&format!("malformed request: {e}"));
                if send_reply(&mut stream, &reply).is_err() {
                    break;
                }
                continue;
            }
        };
        let keep_going = match request.kind.as_str() {
            "run" => handle_run(&mut stream, &state, client_id, request),
            "stats" => send_reply(&mut stream, &Reply::stats(state.snapshot())).is_ok(),
            // Store-peer requests are answered inline by the session
            // thread: they are pure I/O against the shared store and must
            // not wait behind queued solve submissions.
            "store_get" => send_reply(&mut stream, &handle_store_get(&state, &request)).is_ok(),
            "store_put" => send_reply(&mut stream, &handle_store_put(&state, &request)).is_ok(),
            "store_stats" => {
                let reply = match state.cache.store() {
                    Some(store) => Reply::store_stats(StoreReport::for_store(store)),
                    None => Reply::error("server has no persistent store attached"),
                };
                send_reply(&mut stream, &reply).is_ok()
            }
            "shutdown" => {
                let _ = send_reply(&mut stream, &Reply::bye());
                state.initiate_shutdown();
                false
            }
            other => {
                let reply = Reply::error(&format!(
                    "unknown request kind {other:?} (expected run, stats, store_get, \
                     store_put, store_stats or shutdown)"
                ));
                send_reply(&mut stream, &reply).is_ok()
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// Handles one `"run"` request end to end; returns `false` when the
/// session should end (write failure).
fn handle_run(
    stream: &mut TcpStream,
    state: &ServiceState,
    client_id: u64,
    request: Request,
) -> bool {
    let suite = match resolve_suite(&request) {
        Ok(suite) => suite,
        Err(message) => return send_reply(stream, &Reply::error(&message)).is_ok(),
    };
    let jobs = request.jobs.unwrap_or(1).clamp(1, MAX_JOBS) as usize;
    let (reply_tx, reply_rx) = mpsc::channel();
    let submission = Submission {
        suite,
        jobs,
        reply: reply_tx,
    };
    match state.queue.push(client_id, submission) {
        Err(Admission::Full) => {
            let reply = Reply::rejected("queue full", state.retry_after_ms);
            return send_reply(stream, &reply).is_ok();
        }
        Err(Admission::Closed) => {
            let reply = Reply::rejected("server is shutting down", state.retry_after_ms);
            return send_reply(stream, &reply).is_ok();
        }
        Ok(()) => {}
    }
    let ticket = state.tickets.fetch_add(1, Ordering::Relaxed) + 1;
    let depth = state.queue.stats().depth;
    if send_reply(stream, &Reply::accepted(ticket, depth)).is_err() {
        // Dropping the receiver is safe: the dispatcher still runs the
        // solve and tolerates the missing session.
        return false;
    }
    let outcome = match reply_rx.recv() {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) => {
            let reply = Reply::error(&format!("suite failed: {e}"));
            return send_reply(stream, &reply).is_ok();
        }
        Err(_) => {
            let reply = Reply::error("server dropped the submission during shutdown");
            return send_reply(stream, &reply).is_ok();
        }
    };
    // Stream per-point results in deterministic suite order, then the
    // byte-exact report — the same JSON `bbs run --json` would write.
    for scenario in &outcome.scenarios {
        for point in &scenario.points {
            let reply = Reply::point(
                &scenario.scenario.name,
                point.capacity_cap,
                point.result.is_ok(),
            );
            if send_reply(stream, &reply).is_err() {
                return false;
            }
        }
    }
    let failures = outcome.unexpected_failures();
    let message = if failures.is_empty() {
        None
    } else {
        Some(format!("{} point(s) failed unexpectedly", failures.len()))
    };
    let report = SuiteReport::from_outcome(&outcome);
    send_reply(stream, &Reply::report(report.to_json(), message)).is_ok()
}

/// Answers one `"store_get"`: the entry body at the requested address, or
/// a bodiless `"store_entry"` on a miss. Peer lookups never touch the
/// store's solve counters — they are the *peer's* solves, not this
/// daemon's.
fn handle_store_get(state: &ServiceState, request: &Request) -> Reply {
    let Some(store) = state.cache.store() else {
        return Reply::error("server has no persistent store attached");
    };
    let Some(address) = request.key_hash.as_deref().filter(|a| is_entry_address(a)) else {
        return Reply::error("store_get needs key_hash: 16 lowercase hex digits");
    };
    match store.peer_get(address) {
        Ok(Some(raw)) => Reply::store_entry(Some(raw.body), Some(raw.version)),
        Ok(None) => Reply::store_entry(None, None),
        Err(e) => Reply::error(&format!("store read failed: {e}")),
    }
}

/// Answers one `"store_put"`: validate the offered body and persist it
/// through the store's capped write path. The address is derived from the
/// body's embedded key — a peer's claimed address is never trusted.
fn handle_store_put(state: &ServiceState, request: &Request) -> Reply {
    let Some(store) = state.cache.store() else {
        return Reply::error("server has no persistent store attached");
    };
    let Some(body) = request.entry.as_deref() else {
        return Reply::error("store_put needs an entry body");
    };
    match store.peer_put(body) {
        Ok(()) => Reply::store_ok(),
        Err(message) => Reply::error(&format!("store_put refused: {message}")),
    }
}

/// Picks the suite a `"run"` request addresses: an inline definition XOR
/// a built-in name, defaulting to the built-in `paper` suite.
fn resolve_suite(request: &Request) -> Result<Suite, String> {
    match (&request.suite, &request.suite_name) {
        (Some(_), Some(_)) => Err("set either suite or suite_name, not both".to_string()),
        (Some(suite), None) => Ok(suite.clone()),
        (None, Some(name)) => {
            builtin_suite(name).ok_or_else(|| format!("unknown built-in suite {name:?}"))
        }
        (None, None) => Ok(builtin_suite("paper").expect("paper suite is built in")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_suite_prefers_explicit_choices_and_defaults_to_paper() {
        assert_eq!(resolve_suite(&Request::stats()).unwrap().name, "paper");
        assert_eq!(
            resolve_suite(&Request::run_builtin("smoke", 1))
                .unwrap()
                .name,
            "smoke"
        );
        let inline = Suite::new("inline", Vec::new());
        assert_eq!(
            resolve_suite(&Request::run_suite(inline.clone(), 1))
                .unwrap()
                .name,
            "inline"
        );
        assert!(resolve_suite(&Request::run_builtin("nope", 1)).is_err());
        let mut both = Request::run_builtin("smoke", 1);
        both.suite = Some(inline);
        assert!(resolve_suite(&both).is_err());
    }
}
