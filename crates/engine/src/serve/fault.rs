//! Deterministic fault injection for the service layer — the serve-side
//! sibling of the executor's `BBS_TEST_INJECT_PANIC` hook.
//!
//! Robustness claims ("a severed peer is reaped", "a dropped reply does
//! not wedge the dispatcher") are only testable if the failure can be
//! made to happen *on demand, at a chosen point*. A [`FaultPlan`] is a
//! small set of one-shot triggers, parsed from the strict
//! `BBS_TEST_FAULT_PLAN` grammar (comma-separated directives):
//!
//! ```text
//! drop-reply:N            swallow the N-th reply frame (1-based, server-wide)
//! stall-reply:N:MS        sleep MS ms before writing the N-th reply
//! fail-store-put:N        refuse the N-th store_put request
//! sever-session:N         drop the connection on reading the N-th request,
//!                         without a reply (a mid-request crash)
//! stall-solve:SCEN:CAP:MS sleep MS ms inside the solve of scenario SCEN at
//!                         capacity cap CAP (`-` = the no-sweep point) — the
//!                         lever for disconnect/deadline tests
//! ```
//!
//! Parsing is strict — a typo must fail the daemon loudly at startup, not
//! silently run a chaos test with no chaos in it. Like the panic hook,
//! the plan is test machinery: the default plan injects nothing and costs
//! three relaxed atomic bumps per request/reply.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::executor::StallInjection;

/// Environment variable [`FaultPlan::from_env`] reads.
pub const FAULT_PLAN_ENV: &str = "BBS_TEST_FAULT_PLAN";

/// What [`FaultPlan::reply_action`] tells the session to do with the
/// reply it is about to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyAction {
    /// Write the frame normally.
    Deliver,
    /// Swallow the frame: pretend the write happened (the client sees a
    /// missing frame, the server carries on).
    Drop,
    /// Sleep this many milliseconds, then write the frame.
    Stall(u64),
}

/// A parsed set of one-shot service-layer faults plus the counters that
/// trigger them. See the [module docs](self) for the grammar.
#[derive(Debug, Default)]
pub struct FaultPlan {
    drop_reply: Option<u64>,
    stall_reply: Option<(u64, u64)>,
    fail_store_put: Option<u64>,
    sever_session: Option<u64>,
    stall_solve: Option<StallInjection>,
    replies: AtomicU64,
    requests: AtomicU64,
    store_puts: AtomicU64,
}

impl FaultPlan {
    /// Parses the comma-separated directive list. Strict: unknown
    /// directives, malformed numbers and duplicates are all errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending directive.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for directive in text.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                return Err("empty fault directive".to_string());
            }
            let mut parts = directive.split(':');
            let name = parts.next().expect("split yields at least one part");
            let args: Vec<&str> = parts.collect();
            match name {
                "drop-reply" => {
                    set_once(
                        &mut plan.drop_reply,
                        parse_nth(directive, &args)?,
                        directive,
                    )?;
                }
                "stall-reply" => {
                    let [nth, millis] = two_args(directive, &args)?;
                    set_once(
                        &mut plan.stall_reply,
                        (
                            parse_count(directive, nth)?,
                            parse_count(directive, millis)?,
                        ),
                        directive,
                    )?;
                }
                "fail-store-put" => {
                    set_once(
                        &mut plan.fail_store_put,
                        parse_nth(directive, &args)?,
                        directive,
                    )?;
                }
                "sever-session" => {
                    set_once(
                        &mut plan.sever_session,
                        parse_nth(directive, &args)?,
                        directive,
                    )?;
                }
                "stall-solve" => {
                    let [scenario, cap, millis] = three_args(directive, &args)?;
                    if scenario.is_empty() {
                        return Err(format!("{directive:?}: scenario name is empty"));
                    }
                    let capacity_cap = match cap {
                        "-" => None,
                        cap => Some(parse_count(directive, cap)?),
                    };
                    set_once(
                        &mut plan.stall_solve,
                        StallInjection {
                            scenario: scenario.to_string(),
                            capacity_cap,
                            millis: parse_count(directive, millis)?,
                        },
                        directive,
                    )?;
                }
                other => {
                    return Err(format!(
                        "unknown fault directive {other:?} (expected drop-reply, stall-reply, \
                         fail-store-put, sever-session or stall-solve)"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Reads and parses [`FAULT_PLAN_ENV`]. `Ok(None)` when unset or
    /// empty; a set-but-malformed plan is an error — never ignored.
    ///
    /// # Errors
    ///
    /// The [`parse`](Self::parse) error, prefixed with the variable name.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(text) if !text.trim().is_empty() => Self::parse(&text)
                .map(Some)
                .map_err(|e| format!("{FAULT_PLAN_ENV}: {e}")),
            _ => Ok(None),
        }
    }

    /// Counts one outgoing reply and says what to do with it.
    pub fn reply_action(&self) -> ReplyAction {
        let nth = self.replies.fetch_add(1, Ordering::Relaxed) + 1;
        if self.drop_reply == Some(nth) {
            return ReplyAction::Drop;
        }
        if let Some((stall_nth, millis)) = self.stall_reply {
            if stall_nth == nth {
                return ReplyAction::Stall(millis);
            }
        }
        ReplyAction::Deliver
    }

    /// Counts one inbound request; `true` means the session must drop the
    /// connection now, without replying.
    pub fn sever_now(&self) -> bool {
        let nth = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        self.sever_session == Some(nth)
    }

    /// Counts one `store_put`; `true` means this one must be refused.
    pub fn fail_store_put_now(&self) -> bool {
        let nth = self.store_puts.fetch_add(1, Ordering::Relaxed) + 1;
        self.fail_store_put == Some(nth)
    }

    /// The solve-stall injection to thread into run settings, if any.
    pub fn stall_solve(&self) -> Option<StallInjection> {
        self.stall_solve.clone()
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, directive: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("{directive:?}: directive given twice"));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_nth(directive: &str, args: &[&str]) -> Result<u64, String> {
    match args {
        [nth] => parse_count(directive, nth),
        _ => Err(format!("{directive:?}: expected exactly one :N argument")),
    }
}

fn two_args<'a>(directive: &str, args: &[&'a str]) -> Result<[&'a str; 2], String> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(format!("{directive:?}: expected exactly two : arguments")),
    }
}

fn three_args<'a>(directive: &str, args: &[&'a str]) -> Result<[&'a str; 3], String> {
    match args {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(format!("{directive:?}: expected exactly three : arguments")),
    }
}

fn parse_count(directive: &str, text: &str) -> Result<u64, String> {
    let value: u64 = text
        .parse()
        .map_err(|_| format!("{directive:?}: {text:?} is not a non-negative integer"))?;
    if value == 0 {
        return Err(format!("{directive:?}: counts are 1-based, got 0"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        for _ in 0..10 {
            assert_eq!(plan.reply_action(), ReplyAction::Deliver);
            assert!(!plan.sever_now());
            assert!(!plan.fail_store_put_now());
        }
        assert!(plan.stall_solve().is_none());
    }

    #[test]
    fn directives_trigger_exactly_their_nth_event() {
        let plan = FaultPlan::parse("drop-reply:2,sever-session:3,fail-store-put:1").unwrap();
        assert_eq!(plan.reply_action(), ReplyAction::Deliver);
        assert_eq!(plan.reply_action(), ReplyAction::Drop);
        assert_eq!(plan.reply_action(), ReplyAction::Deliver);
        assert!(!plan.sever_now());
        assert!(!plan.sever_now());
        assert!(plan.sever_now());
        assert!(plan.fail_store_put_now());
        assert!(!plan.fail_store_put_now());
    }

    #[test]
    fn stall_directives_carry_their_durations() {
        let plan = FaultPlan::parse("stall-reply:1:250,stall-solve:smoke-tiny:4:1500").unwrap();
        assert_eq!(plan.reply_action(), ReplyAction::Stall(250));
        assert_eq!(plan.reply_action(), ReplyAction::Deliver);
        let stall = plan.stall_solve().unwrap();
        assert_eq!(stall.scenario, "smoke-tiny");
        assert_eq!(stall.capacity_cap, Some(4));
        assert_eq!(stall.millis, 1500);
        // `-` selects the no-sweep point.
        let plan = FaultPlan::parse("stall-solve:solo:-:40").unwrap();
        assert_eq!(plan.stall_solve().unwrap().capacity_cap, None);
    }

    #[test]
    fn malformed_plans_are_loud_errors() {
        for bad in [
            "",
            "drop-reply",
            "drop-reply:0",
            "drop-reply:x",
            "drop-reply:1:2",
            "stall-reply:1",
            "sever-session:1,sever-session:2",
            "stall-solve:smoke:4",
            "stall-solve::4:10",
            "tickle-peer:1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
