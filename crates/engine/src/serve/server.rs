//! The daemon: accept loop, shared state, the single dispatcher feeding
//! the engine, and graceful shutdown.
//!
//! Threading model: one accept thread, one dispatcher thread, one session
//! thread per connection. All submissions — no matter how many clients —
//! funnel through the bounded [`SubmissionQueue`] into **one**
//! [`Engine`], sharing one [`SolveCache`] (optionally backed by one
//! [`SolveStore`]). The dispatcher is deliberately serial: the engine's
//! worker pool provides the parallelism *within* a submission, and serial
//! dispatch keeps the fairness order the queue computed.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use super::fault::FaultPlan;
use super::protocol::{send_reply, EngineStats, Reply, SessionStats, StatsSnapshot, StoreReport};
use super::queue::SubmissionQueue;
use super::session::handle_connection;
use crate::cache::SolveCache;
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::executor::{RunSettings, SuiteOutcome};
use crate::pool::Engine;
use crate::scenario::Suite;
use crate::store::SolveStore;

/// Configuration of a [`Server`].
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads of the shared engine pool.
    pub workers: usize,
    /// Admission-control capacity of the submission queue
    /// (queued + in-flight).
    pub queue_capacity: u64,
    /// Back-off hint attached to `"rejected"` replies, in milliseconds.
    pub retry_after_ms: u64,
    /// Maximum concurrent client sessions. Connections beyond the cap are
    /// refused *at accept* with a `"rejected"` reply — flood protection in
    /// front of the submission queue, so a connection storm cannot pile up
    /// session threads.
    pub max_sessions: u64,
    /// Optional persistent store backing the shared cache.
    pub store: Option<SolveStore>,
    /// Reap a session whose client has sent nothing for this long while no
    /// run is in flight (`bbs serve --idle-timeout-ms`). `None` lets idle
    /// sessions linger until they disconnect — the historical behaviour.
    pub idle_timeout: Option<Duration>,
    /// Ceiling on how long one request frame may take from its first byte
    /// to its last. A peer trickling bytes (slow loris) is reaped when the
    /// budget runs out instead of pinning a session thread forever.
    pub frame_timeout: Duration,
    /// Per-write timeout on every session reply, so one stalled reader
    /// cannot wedge a session thread mid-write.
    pub write_timeout: Duration,
    /// Test-only fault injection (see [`FaultPlan`]); the default plan
    /// injects nothing.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 32,
            retry_after_ms: 250,
            max_sessions: 64,
            store: None,
            idle_timeout: None,
            frame_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            faults: FaultPlan::default(),
        }
    }
}

/// One admitted suite submission travelling from a session to the
/// dispatcher; the result comes back over `reply`.
pub(crate) struct Submission {
    pub(crate) suite: Suite,
    pub(crate) jobs: usize,
    pub(crate) reply: mpsc::Sender<Result<SuiteOutcome, EngineError>>,
    /// Fired by the owning session (client disconnect, deadline, `cancel`
    /// request) — aborts the submission whether still queued or already
    /// running.
    pub(crate) cancel: CancelToken,
    /// The ticket the client was told; lets the dispatcher be labelled in
    /// future diagnostics and keeps the pair self-describing.
    #[allow(dead_code)]
    pub(crate) ticket: u64,
}

/// Everything the accept, dispatcher and session threads share.
pub(crate) struct ServiceState {
    pub(crate) engine: Engine,
    pub(crate) cache: Arc<SolveCache>,
    pub(crate) queue: SubmissionQueue<Submission>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) retry_after_ms: u64,
    pub(crate) tickets: AtomicU64,
    pub(crate) clients: AtomicU64,
    /// Sessions currently connected (incremented by the accept loop
    /// *before* the session thread spawns, decremented when the session
    /// ends — so the cap check is race-free under serial accepts).
    pub(crate) active_sessions: AtomicU64,
    /// Connections refused by the session cap.
    pub(crate) session_rejects: AtomicU64,
    pub(crate) max_sessions: u64,
    /// Sessions closed by the server: idle timeouts and mid-frame stalls.
    pub(crate) reaped: AtomicU64,
    /// In-flight submissions by ticket, so a `cancel` request from any
    /// session can fire the right token. Entries live from admission until
    /// the owning session has its result.
    pub(crate) running: Mutex<HashMap<u64, CancelToken>>,
    pub(crate) idle_timeout: Option<Duration>,
    pub(crate) frame_timeout: Duration,
    pub(crate) write_timeout: Duration,
    pub(crate) faults: FaultPlan,
    local_addr: SocketAddr,
}

impl ServiceState {
    /// The machine-readable stats object: every section is present on a
    /// server (the store section only when one is attached).
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queue: Some(self.queue.stats()),
            engine: Some(EngineStats {
                workers: self.engine.workers() as u64,
            }),
            cache: Some(self.cache.stats()),
            store: self.cache.store().map(StoreReport::for_store),
            sessions: Some(SessionStats {
                active: self.active_sessions.load(Ordering::Relaxed),
                limit: self.max_sessions,
                rejected: self.session_rejects.load(Ordering::Relaxed),
                reaped: self.reaped.load(Ordering::Relaxed),
            }),
            ..StatsSnapshot::new()
        }
    }

    /// Registers an admitted submission's cancel token under its ticket.
    pub(crate) fn register_running(&self, ticket: u64, cancel: CancelToken) {
        self.running
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(ticket, cancel);
    }

    /// Removes a submission from the cancel registry (result delivered,
    /// admission refused, or the session died).
    pub(crate) fn unregister_running(&self, ticket: u64) {
        self.running
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&ticket);
    }

    /// Fires the cancel token registered under `ticket`, from any session.
    /// `false` when no such submission is in flight.
    pub(crate) fn cancel_ticket(&self, ticket: u64) -> bool {
        let registry = self.running.lock().unwrap_or_else(PoisonError::into_inner);
        match registry.get(&ticket) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Starts graceful shutdown: refuse new submissions, let the
    /// dispatcher drain what was admitted, wake the accept loop.
    ///
    /// Idempotent — the shutdown request, `Server::shutdown` and repeated
    /// calls all converge on the same quiescent state.
    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
        // The accept thread blocks in `incoming()`; a throwaway local
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running solve service.
///
/// [`start`](Self::start) binds and spawns the threads;
/// [`shutdown`](Self::shutdown) (or a client's `"shutdown"` request)
/// begins the graceful drain; [`wait`](Self::wait) joins everything.
pub struct Server {
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    state: Arc<ServiceState>,
}

impl Server {
    /// Binds the listener and spawns the accept and dispatcher threads.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = match config.store {
            Some(store) => Arc::new(SolveCache::with_store(store)),
            None => Arc::new(SolveCache::new()),
        };
        let state = Arc::new(ServiceState {
            engine: Engine::new(config.workers),
            cache,
            queue: SubmissionQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            retry_after_ms: config.retry_after_ms,
            tickets: AtomicU64::new(0),
            clients: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            session_rejects: AtomicU64::new(0),
            max_sessions: config.max_sessions,
            reaped: AtomicU64::new(0),
            running: Mutex::new(HashMap::new()),
            idle_timeout: config.idle_timeout,
            frame_timeout: config.frame_timeout,
            write_timeout: config.write_timeout,
            faults: config.faults,
            local_addr,
        });

        let dispatcher = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("bbs-serve-dispatch".to_string())
                .spawn(move || {
                    while let Some(submission) = state.queue.pop() {
                        // A token that fired while the submission was still
                        // queued aborts without touching the engine at all.
                        let result = if submission.cancel.is_cancelled() {
                            Err(EngineError::Cancelled)
                        } else {
                            let mut settings = RunSettings::with_jobs(submission.jobs);
                            settings.inject_stall = state.faults.stall_solve();
                            state.engine.submit_with_cancel(
                                &submission.suite,
                                &settings,
                                &state.cache,
                                &submission.cancel,
                            )
                        };
                        if matches!(result, Err(EngineError::Cancelled)) {
                            state.queue.record_cancelled();
                        }
                        // Count completion BEFORE handing the result back:
                        // a client that has its report in hand must observe
                        // `completed` already bumped when it asks for stats.
                        state.queue.complete();
                        // A receiver gone missing means the session died;
                        // the work still completed and the counters say so.
                        let _ = submission.reply.send(result);
                    }
                })?
        };

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("bbs-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let mut stream = match stream {
                            Ok(stream) => stream,
                            Err(_) => continue,
                        };
                        // Reject-at-accept: the accept loop is serial, so
                        // checking and incrementing here (before the spawn)
                        // is race-free — a flood can never overshoot the
                        // cap by more than the one connection being judged.
                        if state.active_sessions.load(Ordering::Relaxed) >= state.max_sessions {
                            state.session_rejects.fetch_add(1, Ordering::Relaxed);
                            let reply =
                                Reply::rejected("session limit reached", state.retry_after_ms);
                            // Bounded courtesy write: a reject must never
                            // let a slow-reading client stall the accepts.
                            let _ =
                                stream.set_write_timeout(Some(std::time::Duration::from_secs(1)));
                            let _ = send_reply(&mut stream, &reply);
                            continue;
                        }
                        state.active_sessions.fetch_add(1, Ordering::Relaxed);
                        let session_state = Arc::clone(&state);
                        let handle = std::thread::Builder::new()
                            .name("bbs-serve-session".to_string())
                            .spawn(move || {
                                handle_connection(stream, Arc::clone(&session_state));
                                session_state
                                    .active_sessions
                                    .fetch_sub(1, Ordering::Relaxed);
                            });
                        match handle {
                            Ok(handle) => {
                                sessions
                                    .lock()
                                    .expect("session registry poisoned")
                                    .push(handle);
                            }
                            // The thread never started, so its decrement
                            // never runs; undo the optimistic increment.
                            Err(_) => {
                                state.active_sessions.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                    }
                })?
        };

        Ok(Self {
            local_addr,
            accept,
            dispatcher,
            sessions,
            state,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current stats snapshot, as the `"stats"` request reports it.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.snapshot()
    }

    /// Begins graceful shutdown from the server side: admitted
    /// submissions still complete, new ones are refused.
    pub fn shutdown(&self) {
        self.state.initiate_shutdown();
    }

    /// Joins the accept loop, the dispatcher and every session thread.
    /// Call after [`shutdown`](Self::shutdown) (or after a client sent a
    /// `"shutdown"` request) — on a live server this blocks until one of
    /// those happens.
    pub fn wait(self) {
        // Accept first: once it exits, no new session threads appear and
        // the registry below is complete.
        let _ = self.accept.join();
        let _ = self.dispatcher.join();
        let handles =
            std::mem::take(&mut *self.sessions.lock().expect("session registry poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::{read_reply, send_request, Request};
    use std::net::TcpStream;

    #[test]
    fn starts_on_an_ephemeral_port_and_shuts_down_cleanly() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        let stats = server.stats();
        assert_eq!(stats.queue.map(|q| q.capacity), Some(32));
        assert_eq!(stats.engine.map(|e| e.workers), Some(4));
        assert!(stats.store.is_none());
        server.shutdown();
        server.wait();
    }

    #[test]
    fn session_cap_rejects_at_accept_and_recovers() {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_sessions: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();

        // First client occupies the only session slot (a round trip
        // proves its session thread is up, not just queued at accept).
        let mut first = TcpStream::connect(addr).unwrap();
        send_request(&mut first, &Request::stats()).unwrap();
        let stats = read_reply(&mut first).unwrap().unwrap();
        assert_eq!(stats.kind, "stats");
        let sessions = stats.stats.unwrap().sessions.unwrap();
        assert_eq!(sessions.active, 1);
        assert_eq!(sessions.limit, 1);

        // Second client is refused before any request is read.
        let mut second = TcpStream::connect(addr).unwrap();
        let refusal = read_reply(&mut second).unwrap().unwrap();
        assert_eq!(refusal.kind, "rejected");
        assert_eq!(refusal.message.as_deref(), Some("session limit reached"));
        assert!(refusal.retry_after_ms.is_some());
        assert_eq!(server.stats().sessions.unwrap().rejected, 1);

        // Releasing the slot lets a later client in (poll: the decrement
        // races the close notification).
        drop(first);
        let mut admitted = false;
        for _ in 0..100 {
            let mut third = TcpStream::connect(addr).unwrap();
            send_request(&mut third, &Request::stats()).unwrap();
            match read_reply(&mut third) {
                Ok(Some(reply)) if reply.kind == "stats" => {
                    admitted = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        assert!(admitted, "slot must free up after the first client leaves");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn a_shutdown_request_from_a_client_stops_wait() {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        send_request(&mut stream, &Request::shutdown()).unwrap();
        let bye = read_reply(&mut stream).unwrap().unwrap();
        assert_eq!(bye.kind, "bye");
        server.wait();
        // After shutdown the port refuses (or resets) new submissions.
        if let Ok(mut late) = TcpStream::connect(addr) {
            let outcome = send_request(&mut late, &Request::run_builtin("smoke", 1))
                .and_then(|_| read_reply(&mut late));
            assert!(!matches!(outcome, Ok(Some(ref r)) if r.kind == "accepted"));
        }
    }
}
