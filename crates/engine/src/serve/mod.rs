//! The service layer: a long-lived multi-client solve daemon.
//!
//! `bbs serve` turns the one-shot solve pipeline into a server: a
//! [`Server`] listens on a `std::net::TcpListener`, accepts connections
//! from many concurrent clients, and multiplexes their suite submissions
//! onto **one** shared [`Engine`](crate::Engine) and one shared
//! [`SolveCache`](crate::SolveCache)/[`SolveStore`](crate::SolveStore)
//! pair. The moving parts:
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length-prefixed
//!   UTF-8 JSON frames carrying tagged [`Request`]/[`Reply`] structs, plus
//!   the machine-readable [`StatsSnapshot`] that both the `stats` request
//!   and `bbs cache stats --json` serialize.
//! * [`queue`] — the bounded [`SubmissionQueue`]: admission control
//!   (reject-with-retry-after when full, never a silent drop) and
//!   round-robin per-client fairness when draining.
//! * [`session`] — one reader thread per connection: frames in, requests
//!   dispatched, per-point replies streamed back in deterministic suite
//!   order.
//! * [`server`] — the accept loop, the single dispatcher thread feeding
//!   the shared engine, and graceful shutdown (drain in-flight, refuse
//!   new).
//! * [`fault`] — deterministic test-only fault injection ([`FaultPlan`],
//!   `BBS_TEST_FAULT_PLAN`): dropped/stalled replies, refused store puts,
//!   severed sessions, stalled solves.
//!
//! # Failure model
//!
//! Submissions are cancellable end to end: each carries a
//! [`CancelToken`](crate::CancelToken) that the owning session fires on
//! client disconnect, on an explicit `"cancel"` request (from any
//! session, by ticket), or when the request's `deadline_ms` elapses —
//! queued submissions abort before touching the engine, running ones
//! within one work item. Sessions themselves are bounded: an optional
//! idle timeout reaps silent clients, a per-frame read budget reaps
//! byte-trickling ones, and every reply write carries a timeout.
//!
//! # Determinism carve-out
//!
//! Each submission's response stream — its per-point replies and its final
//! report — is deterministic and byte-identical to `bbs run` of the same
//! suite, regardless of cache warmth (see
//! [`Engine::submit`](crate::Engine::submit)). The *interleaving* of
//! frames across different connections is scheduling-dependent and is
//! deliberately kept out of every report.

pub mod fault;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;

pub use fault::{FaultPlan, ReplyAction, FAULT_PLAN_ENV};
pub use protocol::{
    read_frame, read_frame_budgeted, read_reply, send_reply, send_request, write_frame,
    EngineStats, FrameRead, QueueStats, Reply, Request, SessionStats, StatsSnapshot, StoreReport,
    MAX_FRAME_BYTES, STATS_SCHEMA_VERSION,
};
pub use queue::{Admission, SubmissionQueue};
pub use server::{ServeConfig, Server};
