//! The service layer: a long-lived multi-client solve daemon.
//!
//! `bbs serve` turns the one-shot solve pipeline into a server: a
//! [`Server`] listens on a `std::net::TcpListener`, accepts connections
//! from many concurrent clients, and multiplexes their suite submissions
//! onto **one** shared [`Engine`](crate::Engine) and one shared
//! [`SolveCache`](crate::SolveCache)/[`SolveStore`](crate::SolveStore)
//! pair. The moving parts:
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length-prefixed
//!   UTF-8 JSON frames carrying tagged [`Request`]/[`Reply`] structs, plus
//!   the machine-readable [`StatsSnapshot`] that both the `stats` request
//!   and `bbs cache stats --json` serialize.
//! * [`queue`] — the bounded [`SubmissionQueue`]: admission control
//!   (reject-with-retry-after when full, never a silent drop) and
//!   round-robin per-client fairness when draining.
//! * [`session`] — one reader thread per connection: frames in, requests
//!   dispatched, per-point replies streamed back in deterministic suite
//!   order.
//! * [`server`] — the accept loop, the single dispatcher thread feeding
//!   the shared engine, and graceful shutdown (drain in-flight, refuse
//!   new).
//!
//! # Determinism carve-out
//!
//! Each submission's response stream — its per-point replies and its final
//! report — is deterministic and byte-identical to `bbs run` of the same
//! suite, regardless of cache warmth (see
//! [`Engine::submit`](crate::Engine::submit)). The *interleaving* of
//! frames across different connections is scheduling-dependent and is
//! deliberately kept out of every report.

pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;

pub use protocol::{
    read_frame, read_reply, send_reply, send_request, write_frame, EngineStats, QueueStats, Reply,
    Request, SessionStats, StatsSnapshot, StoreReport, MAX_FRAME_BYTES, STATS_SCHEMA_VERSION,
};
pub use queue::{Admission, SubmissionQueue};
pub use server::{ServeConfig, Server};
