//! The bounded submission queue: admission control plus per-client
//! fairness.
//!
//! The service's finite buffer, practicing what the solver preaches:
//! capacity counts *queued plus in-flight* submissions, so a full system
//! rejects at the door with a structured retry hint instead of queueing
//! unboundedly or dropping work silently. Draining is round-robin over
//! clients — a client that batch-submits ten suites cannot starve a
//! client that submitted one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use super::protocol::QueueStats;

/// Outcome of a [`SubmissionQueue::push`] that was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The queue is at capacity (queued + in-flight); retry later.
    Full,
    /// The queue is closed for new work (graceful shutdown underway).
    Closed,
}

struct QueueState<T> {
    /// Per-client FIFO lanes in rotation order: `pop` takes the front
    /// client's oldest item, then rotates that client to the back.
    clients: VecDeque<(u64, VecDeque<T>)>,
    queued: u64,
    in_flight: u64,
    closed: bool,
    submitted: u64,
    completed: u64,
    rejected: u64,
    cancelled: u64,
}

/// A bounded multi-producer queue with round-robin per-client draining.
///
/// Producers are session threads calling [`push`](Self::push) with their
/// client id; the single consumer is the dispatcher calling
/// [`pop`](Self::pop) (blocking) and [`complete`](Self::complete) when
/// the engine finishes each submission. [`close`](Self::close) starts
/// graceful shutdown: new pushes are refused, `pop` drains what remains
/// and then returns `None`.
pub struct SubmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: u64,
}

impl<T> SubmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` submissions at once
    /// (queued + in-flight; clamped to at least 1).
    pub fn new(capacity: u64) -> Self {
        Self {
            state: Mutex::new(QueueState {
                clients: VecDeque::new(),
                queued: 0,
                in_flight: 0,
                closed: false,
                submitted: 0,
                completed: 0,
                rejected: 0,
                cancelled: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to admit one submission from `client_id`.
    ///
    /// Refusals are never silent: the error says whether the queue was
    /// [`Full`](Admission::Full) or [`Closed`](Admission::Closed), and
    /// both bump the `rejected` counter.
    pub fn push(&self, client_id: u64, item: T) -> Result<(), Admission> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.closed {
            state.rejected += 1;
            return Err(Admission::Closed);
        }
        if state.queued + state.in_flight >= self.capacity {
            state.rejected += 1;
            return Err(Admission::Full);
        }
        match state.clients.iter_mut().find(|(id, _)| *id == client_id) {
            Some((_, lane)) => lane.push_back(item),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(item);
                state.clients.push_back((client_id, lane));
            }
        }
        state.queued += 1;
        state.submitted += 1;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next submission in round-robin client order, blocking
    /// while the queue is open but empty.
    ///
    /// Returns `None` once the queue is closed **and** drained. The
    /// popped submission counts as in-flight until
    /// [`complete`](Self::complete) is called.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some((client_id, mut lane)) = state.clients.pop_front() {
                let item = lane.pop_front().expect("queued client lane is non-empty");
                if !lane.is_empty() {
                    state.clients.push_back((client_id, lane));
                }
                state.queued -= 1;
                state.in_flight += 1;
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Records completion of one previously popped submission, freeing
    /// its admission-control slot.
    pub fn complete(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        debug_assert!(state.in_flight > 0, "complete() without a popped item");
        state.in_flight = state.in_flight.saturating_sub(1);
        state.completed += 1;
        drop(state);
        // A slot just freed up and pop() may be parked on an empty, soon
        // to-be-closed queue.
        self.ready.notify_all();
    }

    /// Records that one admitted submission ended as cancelled rather
    /// than completing normally.
    ///
    /// Cancellation does **not** replace [`complete`](Self::complete):
    /// the dispatcher still calls `complete` to free the admission slot,
    /// so a cancelled submission counts in both `completed` and
    /// `cancelled`.
    pub fn record_cancelled(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.cancelled += 1;
    }

    /// Closes the queue: future pushes fail with
    /// [`Closed`](Admission::Closed); `pop` drains what is queued, then
    /// returns `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// A consistent snapshot of the queue counters.
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("queue mutex poisoned");
        QueueStats {
            depth: state.queued,
            in_flight: state.in_flight,
            capacity: self.capacity,
            submitted: state.submitted,
            completed: state.completed,
            rejected: state.rejected,
            cancelled: state.cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_round_robin_across_clients() {
        let queue = SubmissionQueue::new(16);
        // Client 1 batches three items before client 2 submits one; the
        // drain must interleave, not serve client 1's backlog first.
        queue.push(1, "a").unwrap();
        queue.push(1, "b").unwrap();
        queue.push(1, "c").unwrap();
        queue.push(2, "d").unwrap();
        let order: Vec<_> = std::iter::from_fn(|| {
            let item = queue.pop();
            if item.is_some() {
                queue.complete();
            }
            item
        })
        .take(4)
        .collect();
        assert_eq!(order, vec!["a", "d", "b", "c"]);
    }

    #[test]
    fn admission_counts_queued_plus_in_flight() {
        let queue = SubmissionQueue::new(2);
        queue.push(1, "a").unwrap();
        queue.push(2, "b").unwrap();
        assert_eq!(queue.push(3, "c"), Err(Admission::Full));
        // Popping moves the slot to in-flight — still counted, still full.
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.push(3, "c"), Err(Admission::Full));
        // Completion frees the slot.
        queue.complete();
        queue.push(3, "c").unwrap();
        let stats = queue.stats();
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn close_refuses_new_work_but_drains_the_backlog() {
        let queue = SubmissionQueue::new(8);
        queue.push(1, 10).unwrap();
        queue.push(1, 20).unwrap();
        queue.close();
        assert_eq!(queue.push(2, 30), Err(Admission::Closed));
        assert_eq!(queue.pop(), Some(10));
        queue.complete();
        assert_eq!(queue.pop(), Some(20));
        queue.complete();
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn pop_blocks_until_a_push_or_close_arrives() {
        use std::sync::Arc;
        use std::time::Duration;

        let queue = Arc::new(SubmissionQueue::new(4));
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        queue.push(1, "late").unwrap();
        assert_eq!(popper.join().unwrap(), Some("late"));
        queue.complete();

        let closer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        assert_eq!(closer.join().unwrap(), None);
    }

    #[test]
    fn cancelled_submissions_count_as_completed_and_cancelled() {
        let queue = SubmissionQueue::new(4);
        queue.push(1, "doomed").unwrap();
        assert_eq!(queue.pop(), Some("doomed"));
        // The dispatcher records the cancellation, then frees the slot.
        queue.record_cancelled();
        queue.complete();
        let stats = queue.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let queue = SubmissionQueue::new(0);
        queue.push(1, "only").unwrap();
        assert_eq!(queue.push(1, "extra"), Err(Admission::Full));
        assert_eq!(queue.stats().capacity, 1);
    }
}
