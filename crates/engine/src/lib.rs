//! Batch-solving engine for the budget/buffer co-computation suite.
//!
//! The library crates solve *one* configuration at a time; this crate turns
//! them into a system that serves whole experiment campaigns:
//!
//! * [`scenario`] — the declarative model: a [`Scenario`] names a workload
//!   (preset by name or inline configuration), an optional capacity sweep,
//!   [`SolveOptions`](budget_buffer::SolveOptions) and a flow; a [`Suite`]
//!   is a named batch of scenarios. Both live in JSON files.
//! * [`suites`] — the built-in suites: `paper` (the six experiments of the
//!   paper), `paper-plus` (plus the cyclic `ring` experiment) and `smoke`.
//! * [`executor`] — a panic-safe work-stealing `std::thread` worker pool
//!   that fans the (scenario × sweep-point) work items out across `--jobs N`
//!   per-worker deques (LIFO local pop, FIFO steal) with deterministic
//!   result ordering; a panicking solve becomes a per-point error, never a
//!   dead run.
//! * [`pool`] — the reusable [`Engine`]: the same scheduler on persistent
//!   worker threads, parked between runs, so repeated `run_suite` calls
//!   stop paying thread spawn/teardown.
//! * [`cache`] — memoization of solves keyed by allocation-free 128-bit
//!   streaming digests of (configuration, options, flow), with
//!   deterministic hit/miss counters; the full canonical JSON is
//!   materialised lazily, only for the disk tier.
//! * [`store`] — the persistent tier below the in-memory cache: a
//!   content-addressed, schema-versioned on-disk store of solve results, so
//!   repeated *processes* (CLI re-runs, CI, sweeps) skip solves too.
//! * [`validate`] — the post-solve validation stage: replay every solved
//!   mapping on the `bbs-scheduler-sim` discrete-event simulator and grade
//!   measured periods and buffer high-water marks against the solver's
//!   guarantees, on scoped threads or the parked [`Engine`] workers.
//! * [`gen`] — the seeded scenario generator behind `bbs gen`: schema-valid
//!   random suites (graph shape, platform timings, sweep ranges) for
//!   fuzz-scale validation.
//! * [`report`] — the machine-readable [`SuiteReport`] (schema-versioned
//!   JSON, CSV, markdown) and the human renderers. Reports carry no
//!   wall-clock data and are byte-identical across worker counts.
//! * [`serve`] — the service layer: a long-lived TCP daemon speaking
//!   length-prefixed JSON frames that multiplexes many concurrent clients
//!   onto one shared [`Engine`] + cache/store, behind a bounded
//!   admission-controlled submission queue with round-robin per-client
//!   fairness. Reports obtained through it are byte-identical to local
//!   runs.
//!
//! The `bbs` binary is the command-line face of all of this:
//!
//! ```text
//! bbs run --suite paper --jobs 8 --json report.json
//! bbs run --suite paper --cache-dir target/bbs-cache   # persistent solves
//! bbs run --file my-suite.json --markdown EXPERIMENTS.md
//! bbs list
//! bbs check report.json
//! bbs cache stats --cache-dir target/bbs-cache
//! bbs serve --addr 127.0.0.1:7777 --jobs 8 --cache-dir target/bbs-cache
//! bbs client run --addr 127.0.0.1:7777 --suite smoke --json report.json
//! ```
//!
//! See `docs/ARCHITECTURE.md` for the crate map and the solve pipeline, and
//! `docs/CACHE.md` for the on-disk store format.
//!
//! # Example
//!
//! ```
//! use bbs_engine::{run_scenario, RunSettings, Scenario, SweepSpec, WorkloadSpec};
//! use bbs_taskgraph::presets::PresetSpec;
//!
//! let scenario = Scenario::new(
//!     "demo",
//!     WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
//! )
//! .with_sweep(SweepSpec::range(1, 4));
//! let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
//! assert_eq!(outcome.points.len(), 4);
//! assert!(outcome.points.iter().all(|p| p.result.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod cancel;
mod error;
pub mod executor;
pub mod gen;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod store;
pub mod suites;
pub mod validate;

pub use cache::{
    CacheKey, CacheStats, CanonicalKey, KeyConfiguration, ScenarioKeySeed, SolveCache, SolveSource,
};
pub use cancel::CancelToken;
pub use error::EngineError;
pub use executor::{
    expand_suite, run_scenario, run_suite, run_suite_with_cache, ExecutorStats, ExpansionSummary,
    PanicInjection, PointOutcome, RunSettings, ScenarioOutcome, StallInjection, SuiteOutcome,
};
pub use gen::{generate_suite, GenParams};
pub use pool::Engine;
pub use report::{PointReport, ScenarioReport, SuiteReport, SCHEMA_VERSION};
pub use scenario::{Flow, Scenario, Suite, SweepSpec, ValidationMode, WorkloadSpec};
pub use serve::{Reply, Request, ServeConfig, Server, StatsSnapshot};
pub use store::{
    BreakerConfig, CircuitBreaker, GcOutcome, GcPolicy, LocalDirBackend, RawEntry,
    RecompressOutcome, RemoteBackend, RemoteHealth, SolveStore, StoreBackend, StoreEntry,
    StoreStats, StoreSummary, OLDEST_READABLE_SCHEMA, STORE_SCHEMA_VERSION,
};
pub use validate::{validate_outcome, PointValidation, ValidationReport};

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};

    /// A unique, self-cleaning scratch directory for unit tests.
    pub(crate) struct TempDir(PathBuf);

    impl TempDir {
        pub(crate) fn new(label: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bbs-engine-test-{label}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            Self(path)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scenario>();
        assert_send_sync::<Suite>();
        assert_send_sync::<SolveCache>();
        assert_send_sync::<SolveStore>();
        assert_send_sync::<SuiteOutcome>();
        assert_send_sync::<SuiteReport>();
        assert_send_sync::<ValidationReport>();
        assert_send_sync::<EngineError>();
    }
}
