//! The persistent, content-addressed solve store — the disk tier below the
//! in-memory [`SolveCache`](crate::SolveCache).
//!
//! Every `bbs` invocation starts with an empty in-memory cache, so without
//! persistence a re-run of a suite pays full solve cost for every distinct
//! problem instance. The store closes that gap: each completed solve is
//! written to a directory keyed by the same canonical identity the in-memory
//! cache uses — the (configuration, options, flow) triple of the
//! [`CanonicalKey`] — and later runs (of any process) read it back instead of
//! solving again.
//!
//! # Layout
//!
//! ```text
//! <root>/v1/<hh>/<hhhhhhhhhhhhhhhh>.json
//! ```
//!
//! where `hhhhhhhhhhhhhhhh` is the 16-hex-digit FNV-1a hash of the full
//! cache key and `<hh>` its first two digits (a 256-way fan-out so no single
//! directory grows huge). The `v1` segment is [`STORE_SCHEMA_VERSION`]:
//! bumping the version makes old trees invisible instead of misread. Each
//! entry is a single JSON object that repeats the *full* canonical key, so a
//! 64-bit hash collision is detected by string comparison and treated as a
//! miss, never as a wrong answer.
//!
//! # Crash- and concurrency-safety
//!
//! Entries are written to a temporary file in the destination directory and
//! atomically renamed into place, so concurrent `bbs --jobs N` runs (or
//! several independent processes sharing one cache directory) can race
//! freely: the worst case is solving the same instance twice and one writer
//! winning the rename. Partial, truncated or otherwise corrupt entries are
//! counted and ignored — the engine falls back to a fresh solve and rewrites
//! the entry.
//!
//! # What is (not) persisted
//!
//! Feasible mappings are stored as the solver's *raw* values plus objective
//! and iteration count; the rounded mapping is reconstructed with
//! [`Mapping::from_raw`], which is deterministic, so a disk hit is
//! bit-identical to the original solve. Genuine infeasibility (no mapping
//! exists — a mathematical property of the problem) is persisted too.
//! Solver breakdowns, model errors and verification failures are *not*
//! persisted: they describe the engine, not the problem, and must be
//! re-attempted by later runs.
//!
//! # Example
//!
//! ```
//! use bbs_engine::{run_suite_with_cache, RunSettings, SolveCache, SolveStore};
//! use bbs_engine::suites::smoke_suite;
//!
//! let dir = std::env::temp_dir().join(format!("bbs-store-doc-{}", std::process::id()));
//! let settings = RunSettings::default();
//!
//! // Cold run: every distinct instance is solved and stored.
//! let cache = SolveCache::with_store(SolveStore::open(&dir).unwrap());
//! run_suite_with_cache(&smoke_suite(), &settings, &cache).unwrap();
//! let cold = cache.store().unwrap().stats();
//! assert_eq!(cold.disk_hits, 0);
//! assert!(cold.stored > 0);
//!
//! // Warm run in a fresh cache (a new process): all disk hits, no solves.
//! let cache = SolveCache::with_store(SolveStore::open(&dir).unwrap());
//! run_suite_with_cache(&smoke_suite(), &settings, &cache).unwrap();
//! let warm = cache.store().unwrap().stats();
//! assert_eq!(warm.fresh_solves, 0);
//! assert_eq!(warm.disk_hits, cold.stored);
//!
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::cache::CanonicalKey;
use bbs_taskgraph::{fnv1a, BufferRef, Configuration, MemoryId, ProcessorId, TaskRef};
use budget_buffer::{Mapping, MappingError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, SystemTime};

/// Version of the on-disk entry format. Entries live under a `v<N>`
/// directory *and* carry the version in their body; both must match, so a
/// format change makes old entries invisible rather than misread.
pub const STORE_SCHEMA_VERSION: u64 = 1;

/// Run counters of a [`SolveStore`], all deterministic across `--jobs`
/// because the in-memory tier funnels exactly one lookup per distinct key
/// to the disk tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that found no usable entry and had to solve.
    pub fresh_solves: u64,
    /// Entries written (fresh solves whose outcome is persistable).
    pub stored: u64,
    /// Entries ignored because they were corrupt, carried a foreign schema
    /// version, or collided with a different key.
    pub rejected: u64,
}

/// What `bbs cache stats` reports: a full scan of the store directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Readable entries of the current schema version.
    pub entries: u64,
    /// Entries holding a feasible mapping.
    pub feasible: u64,
    /// Entries holding a persisted infeasibility.
    pub infeasible: u64,
    /// Files that failed to parse or carry a foreign schema version.
    pub corrupt: u64,
    /// Total size of all entry files, in bytes.
    pub total_bytes: u64,
}

/// Retention policy for [`SolveStore::gc`]. Unset fields do not constrain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Keep at most this many entries (the most recently written survive).
    pub max_entries: Option<u64>,
    /// Remove entries last written longer than this ago.
    pub max_age: Option<Duration>,
}

/// What a [`SolveStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entry files removed.
    pub removed: u64,
    /// Entry files kept.
    pub kept: u64,
    /// Entries whose modification time the filesystem could not report.
    /// They are treated as written *now* — never age-evicted — instead of
    /// as infinitely old, which on such filesystems would make a
    /// `--max-age` pass wipe the entire store.
    pub unreadable_mtimes: u64,
}

/// One entry file as seen by a [`SolveStore::entries`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Path of the entry file.
    pub path: PathBuf,
    /// Last-modified time; the scan time when the filesystem cannot report
    /// one (see [`StoreEntry::mtime_readable`]).
    pub modified: SystemTime,
    /// Whether the filesystem reported a modification time. Entries without
    /// one sort as the newest files of the scan and are exempt from
    /// age-based eviction.
    pub mtime_readable: bool,
    /// File size in bytes.
    pub bytes: u64,
}

/// One entry file: the full canonical key (collision guard) plus exactly one
/// of a stored mapping or a stored infeasibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredEntry {
    schema: u64,
    fingerprint: u64,
    configuration: String,
    options: String,
    flow: String,
    feasible: Option<StoredMapping>,
    infeasible: Option<StoredInfeasibility>,
}

/// The raw solver values a [`Mapping`] is deterministically rebuilt from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredMapping {
    raw_budgets: Vec<(TaskRef, f64)>,
    raw_space: Vec<(BufferRef, f64)>,
    objective: f64,
    solver_iterations: u64,
}

/// A persisted genuine-infeasibility outcome. `kind` selects the
/// [`MappingError`] variant; the variant's fields ride along as options
/// (the vendored serde derives structs only, so enums are flattened here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredInfeasibility {
    kind: String,
    detail: Option<String>,
    buffer: Option<BufferRef>,
    cap: Option<u64>,
    initial_tokens: Option<u64>,
    processor: Option<ProcessorId>,
    required_cycles: Option<f64>,
    available_cycles: Option<f64>,
    memory: Option<MemoryId>,
    required_storage: Option<u64>,
    available_storage: Option<u64>,
}

/// A persistent, content-addressed store of solve results on disk.
///
/// Open one with [`SolveStore::open`] and attach it to a cache with
/// [`SolveCache::with_store`](crate::SolveCache::with_store); the cache then
/// reads through to disk on every in-memory miss and writes every fresh,
/// persistable result back. See the [module docs](self) for the format and
/// the safety story.
#[derive(Debug)]
pub struct SolveStore {
    root: PathBuf,
    disk_hits: AtomicU64,
    fresh_solves: AtomicU64,
    stored: AtomicU64,
    rejected: AtomicU64,
    /// Automatic size cap enforced on the write path (see
    /// [`SolveStore::with_max_entries`]); `None` leaves growth to manual
    /// `bbs cache gc`.
    max_entries: Option<u64>,
    /// Entry-count estimate maintained by the cap enforcement: `None` means
    /// "unknown, rescan before the next decision". Deliberately approximate
    /// — overwrites and concurrent writers drift it upward, which only
    /// makes enforcement run (and resynchronise from a real scan) earlier.
    tracked_entries: Mutex<Option<u64>>,
}

/// Process-global distinguisher for temporary file names: two
/// [`SolveStore`] instances opened on the same directory in one process
/// must never write the same temp file.
static WRITE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SolveStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(version_dir(&root))?;
        Ok(Self {
            root,
            disk_hits: AtomicU64::new(0),
            fresh_solves: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_entries: None,
            tracked_entries: Mutex::new(None),
        })
    }

    /// Opens a store rooted at an *existing* directory, creating nothing —
    /// the constructor for read-and-manage commands (`bbs cache`), which
    /// must not materialise a store tree at a mistyped path.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] when `dir` is not a directory.
    pub fn open_existing(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} is not a directory", root.display()),
            ));
        }
        Ok(Self {
            root: root.to_path_buf(),
            disk_hits: AtomicU64::new(0),
            fresh_solves: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_entries: None,
            tracked_entries: Mutex::new(None),
        })
    }

    /// Enforces an automatic size cap on the write path: whenever a write
    /// pushes the store beyond `max_entries`, the same deterministic
    /// retention pass `bbs cache gc --max-entries` runs evicts oldest-first
    /// (mtime order, ties broken by path) back down to the cap. A cap of 0
    /// is accepted and keeps the store empty.
    ///
    /// The enforcement keeps an entry-count estimate so the common case
    /// (under the cap) costs one counter bump per write; the estimate is
    /// (re)synchronised from a directory scan when unknown or after every
    /// eviction pass, so concurrent writers and overwrites can only make
    /// enforcement run early, never miss the bound for long.
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: u64) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// The automatic size cap, when one was set.
    pub fn max_entries(&self) -> Option<u64> {
        self.max_entries
    }

    /// The directory the store was opened at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This run's counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            fresh_solves: self.fresh_solves.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Looks `key` up on disk; `configuration` must be the configuration
    /// the key was built from (it rebuilds the mapping without re-parsing
    /// the key's canonical JSON). Returns `None` — after bumping the
    /// fresh-solve counter — when there is no entry, the entry is corrupt or
    /// foreign-versioned, or it belongs to a hash-colliding different key.
    pub fn load(
        &self,
        key: &CanonicalKey,
        configuration: &Configuration,
    ) -> Option<Result<Mapping, MappingError>> {
        debug_assert_eq!(
            key.configuration,
            configuration.canonical_json(),
            "load() must receive the configuration its key was built from"
        );
        match self.try_load(key, configuration) {
            Some(result) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                self.fresh_solves.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn try_load(
        &self,
        key: &CanonicalKey,
        configuration: &Configuration,
    ) -> Option<Result<Mapping, MappingError>> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            // A missing entry is the normal cold-cache case, not a rejection.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => return self.reject(),
        };
        let Ok(entry) = serde_json::from_str::<StoredEntry>(&text) else {
            return self.reject();
        };
        if entry.schema != STORE_SCHEMA_VERSION {
            return self.reject();
        }
        // Full-key comparison: a 64-bit hash collision surfaces here and
        // falls back to a fresh solve instead of returning a wrong answer.
        if entry.fingerprint != key.fingerprint
            || entry.configuration != key.configuration
            || entry.options != key.options
            || entry.flow != key.flow
        {
            return self.reject();
        }
        match (entry.feasible, entry.infeasible) {
            (Some(mapping), None) => match decode_mapping(&mapping, configuration) {
                Some(mapping) => Some(Ok(mapping)),
                None => self.reject(),
            },
            (None, Some(error)) => match decode_infeasibility(&error) {
                Some(error) => Some(Err(error)),
                None => self.reject(),
            },
            _ => self.reject(),
        }
    }

    fn reject(&self) -> Option<Result<Mapping, MappingError>> {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Persists a solve result, best-effort: I/O failures and
    /// non-persistable errors (solver breakdowns, model errors,
    /// verification failures — see the [module docs](self)) are skipped
    /// silently; the next run simply solves again.
    pub fn save(&self, key: &CanonicalKey, result: &Result<Mapping, MappingError>) {
        let outcome = match result {
            Ok(mapping) => (Some(encode_mapping(mapping)), None),
            Err(error) => match encode_infeasibility(error) {
                Some(stored) => (None, Some(stored)),
                None => return,
            },
        };
        let entry = StoredEntry {
            schema: STORE_SCHEMA_VERSION,
            fingerprint: key.fingerprint,
            configuration: key.configuration.clone(),
            options: key.options.clone(),
            flow: key.flow.clone(),
            feasible: outcome.0,
            infeasible: outcome.1,
        };
        let Ok(mut text) = serde_json::to_string(&entry) else {
            return;
        };
        text.push('\n');
        if self.write_atomically(&self.entry_path(key), &text).is_ok() {
            self.stored.fetch_add(1, Ordering::Relaxed);
            self.enforce_max_entries();
        }
    }

    /// The write-path half of the automatic size cap (see
    /// [`SolveStore::with_max_entries`]): bump or rebuild the entry-count
    /// estimate and, when it exceeds the cap, run the same pure
    /// [`plan_gc`]-backed eviction `bbs cache gc` uses.
    fn enforce_max_entries(&self) {
        let Some(cap) = self.max_entries else { return };
        let mut tracked = self
            .tracked_entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let estimate = match tracked.take() {
            Some(count) => count.saturating_add(1),
            // Unknown (first capped write of this process, or a previous
            // enforcement failed): resynchronise from a real scan. The
            // entry just written is already on disk, so the scan includes
            // it.
            None => match self.entries() {
                Ok(scan) => scan.len() as u64,
                // Unreadable tree: leave the estimate unknown and retry on
                // the next write — the cap is best-effort, like `save`.
                Err(_) => return,
            },
        };
        if estimate > cap {
            match self.gc(GcPolicy {
                max_entries: Some(cap),
                max_age: None,
            }) {
                Ok(outcome) => *tracked = Some(outcome.kept),
                Err(_) => *tracked = None,
            }
        } else {
            *tracked = Some(estimate);
        }
    }

    /// Writes `text` to a temporary file next to `path` and renames it into
    /// place, so readers never observe a partial entry.
    fn write_atomically(&self, path: &Path, text: &str) -> io::Result<()> {
        let directory = path.parent().expect("entry paths have a shard directory");
        fs::create_dir_all(directory)?;
        let unique = WRITE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let temp = directory.join(format!(".tmp-{}-{unique}", std::process::id()));
        fs::write(&temp, text)?;
        match fs::rename(&temp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // A lost rename race means another process persisted the
                // same entry; drop our copy.
                let _ = fs::remove_file(&temp);
                Err(e)
            }
        }
    }

    /// The entry file for `key`:
    /// `<root>/v<schema>/<hh>/<16-hex-digit key hash>.json`.
    fn entry_path(&self, key: &CanonicalKey) -> PathBuf {
        let hex = format!("{:016x}", store_hash(key));
        version_dir(&self.root).join(&hex[..2]).join(hex + ".json")
    }

    /// Every entry file of the current schema version, sorted oldest-first
    /// (ties broken by path so GC is deterministic regardless of readdir
    /// order). Entries whose mtime the filesystem cannot report are stamped
    /// with the scan time — i.e. as the newest files present — so retention
    /// policies never mistake them for infinitely old. Files that vanish
    /// mid-scan — a concurrent `gc`/`clear` — are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory tree cannot
    /// be read.
    pub fn entries(&self) -> io::Result<Vec<StoreEntry>> {
        let scan_time = SystemTime::now();
        let mut entries = Vec::new();
        let version = version_dir(&self.root);
        // A missing version directory is an empty store (e.g. cleared by a
        // concurrent process); reads stay pure and never create it.
        let shards = match fs::read_dir(&version) {
            Ok(shards) => shards,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            let files = match fs::read_dir(&shard) {
                Ok(files) => files,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            for file in files {
                let file = file?;
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue; // temp files and strays
                }
                let metadata = match file.metadata() {
                    Ok(metadata) => metadata,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(e),
                };
                let (modified, mtime_readable) = match metadata.modified() {
                    Ok(modified) => (modified, true),
                    Err(_) => (scan_time, false),
                };
                entries.push(StoreEntry {
                    path,
                    modified,
                    mtime_readable,
                    bytes: metadata.len(),
                });
            }
        }
        entries.sort_by(|a, b| {
            a.modified
                .cmp(&b.modified)
                .then_with(|| a.path.cmp(&b.path))
        });
        Ok(entries)
    }

    /// Scans the whole store for `bbs cache stats`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory tree cannot
    /// be read.
    pub fn summary(&self) -> io::Result<StoreSummary> {
        let mut summary = StoreSummary::default();
        for StoreEntry { path, bytes, .. } in self.entries()? {
            summary.total_bytes += bytes;
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<StoredEntry>(&text).ok())
                .filter(|entry| entry.schema == STORE_SCHEMA_VERSION);
            // Classify with the same validity rule `try_load` applies, so
            // stats never report entries a lookup would reject.
            match parsed.map(|entry| (entry.feasible, entry.infeasible)) {
                Some((Some(_), None)) => {
                    summary.entries += 1;
                    summary.feasible += 1;
                }
                Some((None, Some(_))) => {
                    summary.entries += 1;
                    summary.infeasible += 1;
                }
                Some(_) | None => summary.corrupt += 1,
            }
        }
        Ok(summary)
    }

    /// Removes every entry (all schema versions). Returns the number of
    /// files removed.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be removed.
    pub fn clear(&self) -> io::Result<u64> {
        let mut removed = 0;
        let versions = match fs::read_dir(&self.root) {
            Ok(versions) => Some(versions),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        for version in versions.into_iter().flatten() {
            let version = version?.path();
            if version.is_dir() {
                removed += count_files(&version)?;
                // A concurrent clear may have won the race; only a tree
                // that still exists unremoved is an error.
                if let Err(e) = fs::remove_dir_all(&version) {
                    if version.exists() {
                        return Err(e);
                    }
                }
            }
        }
        fs::create_dir_all(version_dir(&self.root))?;
        Ok(removed)
    }

    /// Applies a retention policy: first drops entries older than
    /// `max_age` (entries with unreadable mtimes are exempt — they count as
    /// written now), then — oldest first — drops entries beyond
    /// `max_entries`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory tree cannot
    /// be read (individual failed removals are skipped, not errors: a
    /// concurrent run may have removed or replaced the file already).
    pub fn gc(&self, policy: GcPolicy) -> io::Result<GcOutcome> {
        let entries = self.entries()?;
        let (remove, mut outcome) = plan_gc(&entries, policy, SystemTime::now());
        for path in remove {
            if fs::remove_file(path).is_ok() {
                outcome.removed += 1;
            }
        }
        Ok(outcome)
    }
}

/// The pure retention decision behind [`SolveStore::gc`]: which of the
/// scanned `entries` (oldest-first, as [`SolveStore::entries`] returns
/// them) to remove under `policy` at time `now`. Returns the doomed paths
/// and the outcome with `removed` still zero (the caller counts actual
/// deletions). Split out so eviction order — including mtime ties and
/// unreadable mtimes — is testable without manipulating a filesystem.
fn plan_gc(
    entries: &[StoreEntry],
    policy: GcPolicy,
    now: SystemTime,
) -> (Vec<&PathBuf>, GcOutcome) {
    let mut keep: Vec<&StoreEntry> = Vec::new();
    let mut remove: Vec<&PathBuf> = Vec::new();
    let mut outcome = GcOutcome::default();
    for entry in entries {
        if !entry.mtime_readable {
            outcome.unreadable_mtimes += 1;
        }
        let age = now.duration_since(entry.modified).unwrap_or(Duration::ZERO);
        // An unreadable mtime counts as "written now": exempt from age
        // eviction instead of looking infinitely old and wiping the store.
        if entry.mtime_readable && policy.max_age.is_some_and(|limit| age > limit) {
            remove.push(&entry.path);
        } else {
            keep.push(entry);
        }
    }
    if let Some(max_entries) = policy.max_entries {
        // `keep` is oldest-first, so the excess head is the oldest.
        let excess = keep.len().saturating_sub(max_entries as usize);
        remove.extend(keep.drain(..excess).map(|entry| &entry.path));
    }
    outcome.kept = keep.len() as u64;
    (remove, outcome)
}

/// The content address of a key: FNV-1a over the full canonical identity.
/// NUL separators keep `(configuration, options)` splits unambiguous.
fn store_hash(key: &CanonicalKey) -> u64 {
    let mut bytes =
        Vec::with_capacity(key.configuration.len() + key.options.len() + key.flow.len() + 2);
    bytes.extend_from_slice(key.configuration.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(key.options.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(key.flow.as_bytes());
    fnv1a(&bytes)
}

fn version_dir(root: &Path) -> PathBuf {
    root.join(format!("v{STORE_SCHEMA_VERSION}"))
}

fn count_files(directory: &Path) -> io::Result<u64> {
    let mut count = 0;
    let files = match fs::read_dir(directory) {
        Ok(files) => files,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in files {
        let path = entry?.path();
        if path.is_dir() {
            count += count_files(&path)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("json") {
            count += 1;
        }
    }
    Ok(count)
}

fn encode_mapping(mapping: &Mapping) -> StoredMapping {
    StoredMapping {
        raw_budgets: mapping
            .budgets()
            .map(|(task, _)| (task, mapping.raw_budget(task)))
            .collect(),
        raw_space: mapping
            .capacities()
            .map(|(buffer, _)| (buffer, mapping.raw_space(buffer)))
            .collect(),
        objective: mapping.objective(),
        solver_iterations: mapping.solver_iterations() as u64,
    }
}

/// Rebuilds the mapping through [`Mapping::from_raw`], which re-applies the
/// paper's deterministic rounding — the result is identical to the original
/// solve. Returns `None` when the stored task/buffer references do not
/// match the configuration (a tampered or corrupt entry).
fn decode_mapping(stored: &StoredMapping, configuration: &Configuration) -> Option<Mapping> {
    let tasks = configuration.all_tasks();
    let buffers = configuration.all_buffers();
    let raw_budgets: BTreeMap<TaskRef, f64> = stored.raw_budgets.iter().copied().collect();
    let raw_space: BTreeMap<BufferRef, f64> = stored.raw_space.iter().copied().collect();
    let references_match = raw_budgets.len() == tasks.len()
        && tasks.iter().all(|task| raw_budgets.contains_key(task))
        && raw_space.len() == buffers.len()
        && buffers.iter().all(|buffer| raw_space.contains_key(buffer));
    if !references_match {
        return None;
    }
    Some(Mapping::from_raw(
        configuration,
        raw_budgets,
        raw_space,
        stored.objective,
        stored.solver_iterations as usize,
    ))
}

/// Encodes the genuine-infeasibility [`MappingError`] variants; everything
/// else (solver breakdowns, model errors, verification failures) returns
/// `None` and is deliberately not persisted.
fn encode_infeasibility(error: &MappingError) -> Option<StoredInfeasibility> {
    let empty = StoredInfeasibility {
        kind: String::new(),
        detail: None,
        buffer: None,
        cap: None,
        initial_tokens: None,
        processor: None,
        required_cycles: None,
        available_cycles: None,
        memory: None,
        required_storage: None,
        available_storage: None,
    };
    match error {
        MappingError::Infeasible { detail } => Some(StoredInfeasibility {
            kind: "infeasible".to_string(),
            detail: Some(detail.clone()),
            ..empty
        }),
        MappingError::CapBelowInitialTokens {
            buffer,
            cap,
            initial_tokens,
        } => Some(StoredInfeasibility {
            kind: "cap-below-initial-tokens".to_string(),
            buffer: Some(*buffer),
            cap: Some(*cap),
            initial_tokens: Some(*initial_tokens),
            ..empty
        }),
        MappingError::ProcessorOverloaded {
            processor,
            required,
            available,
        } => Some(StoredInfeasibility {
            kind: "processor-overloaded".to_string(),
            processor: Some(*processor),
            required_cycles: Some(*required),
            available_cycles: Some(*available),
            ..empty
        }),
        MappingError::MemoryOverflow {
            memory,
            required,
            available,
        } => Some(StoredInfeasibility {
            kind: "memory-overflow".to_string(),
            memory: Some(*memory),
            required_storage: Some(*required),
            available_storage: Some(*available),
            ..empty
        }),
        MappingError::Model(_)
        | MappingError::Solver(_)
        | MappingError::VerificationFailed { .. } => None,
    }
}

fn decode_infeasibility(stored: &StoredInfeasibility) -> Option<MappingError> {
    match stored.kind.as_str() {
        "infeasible" => Some(MappingError::Infeasible {
            detail: stored.detail.clone()?,
        }),
        "cap-below-initial-tokens" => Some(MappingError::CapBelowInitialTokens {
            buffer: stored.buffer?,
            cap: stored.cap?,
            initial_tokens: stored.initial_tokens?,
        }),
        "processor-overloaded" => Some(MappingError::ProcessorOverloaded {
            processor: stored.processor?,
            required: stored.required_cycles?,
            available: stored.available_cycles?,
        }),
        "memory-overflow" => Some(MappingError::MemoryOverflow {
            memory: stored.memory?,
            required: stored.required_storage?,
            available: stored.available_storage?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use bbs_taskgraph::{BufferId, TaskGraphId, TaskId};
    use budget_buffer::{compute_mapping, with_capacity_cap, SolveOptions};

    fn solved() -> (Configuration, CanonicalKey, Result<Mapping, MappingError>) {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = SolveOptions::default().prefer_budget_minimisation();
        let key = CanonicalKey::from_parts(&configuration, &options, "joint");
        let result = compute_mapping(&configuration, &options);
        (configuration, key, result)
    }

    #[test]
    fn mapping_round_trips_bit_identically() {
        let directory = TempDir::new("roundtrip");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let loaded = store.load(&key, &configuration).expect("entry persisted");
        assert_eq!(loaded.unwrap(), result.unwrap());
        assert_eq!(store.stats().disk_hits, 1);
        assert_eq!(store.stats().stored, 1);
    }

    #[test]
    fn missing_entry_is_a_fresh_solve_not_a_rejection() {
        let directory = TempDir::new("missing");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, _) = solved();
        assert!(store.load(&key, &configuration).is_none());
        let stats = store.stats();
        assert_eq!(stats.fresh_solves, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn infeasibility_variants_round_trip() {
        let cases = vec![
            MappingError::Infeasible {
                detail: "dual unbounded".to_string(),
            },
            MappingError::CapBelowInitialTokens {
                buffer: BufferRef::new(TaskGraphId::new(0), BufferId::new(1)),
                cap: 1,
                initial_tokens: 2,
            },
            MappingError::ProcessorOverloaded {
                processor: ProcessorId::new(3),
                required: 41.5,
                available: 40.0,
            },
            MappingError::MemoryOverflow {
                memory: MemoryId::new(0),
                required: 12,
                available: 8,
            },
        ];
        for error in cases {
            let stored = encode_infeasibility(&error).expect("persistable");
            let json = serde_json::to_string(&stored).unwrap();
            let back: StoredInfeasibility = serde_json::from_str(&json).unwrap();
            let decoded = decode_infeasibility(&back).expect("decodable");
            assert_eq!(decoded, error);
            assert_eq!(decoded.to_string(), error.to_string());
        }
    }

    #[test]
    fn transient_errors_are_not_persisted() {
        use bbs_conic::ConicError;
        let directory = TempDir::new("transient");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, _) = solved();
        store.save(&key, &Err(MappingError::Solver(ConicError::NonFiniteData)));
        assert_eq!(store.stats().stored, 0);
        assert!(store.load(&key, &configuration).is_none());
        assert!(encode_infeasibility(&MappingError::VerificationFailed {
            graph: None,
            detail: "x".to_string(),
        })
        .is_none());
    }

    #[test]
    fn corrupt_and_foreign_schema_entries_are_rejected() {
        let directory = TempDir::new("corrupt");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let path = store.entry_path(&key);

        fs::write(&path, "{truncated").unwrap();
        assert!(store.load(&key, &configuration).is_none());

        let mut entry: StoredEntry = {
            store.save(&key, &result);
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap()
        };
        entry.schema = STORE_SCHEMA_VERSION + 1;
        fs::write(&path, serde_json::to_string(&entry).unwrap()).unwrap();
        assert!(store.load(&key, &configuration).is_none());
        assert_eq!(store.stats().rejected, 2);
    }

    #[test]
    fn hash_collisions_fall_back_to_a_fresh_solve() {
        let directory = TempDir::new("collision");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        // Simulate a 64-bit hash collision: a different canonical key whose
        // entry file happens to be the one we just wrote. (`try_load`
        // directly: `load`'s debug assertion — correctly — refuses a key
        // that does not match its configuration, and no real Configuration
        // can produce this synthetic canonical JSON.)
        let mut colliding = key.clone();
        colliding.configuration.push(' ');
        let collision_path = store.entry_path(&colliding);
        fs::create_dir_all(collision_path.parent().unwrap()).unwrap();
        fs::copy(store.entry_path(&key), &collision_path).unwrap();
        assert!(
            store.try_load(&colliding, &configuration).is_none(),
            "collision must miss"
        );
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn tampered_references_are_rejected_not_panicking() {
        let directory = TempDir::new("tamper");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let path = store.entry_path(&key);
        let mut entry: StoredEntry =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        let stored = entry.feasible.as_mut().unwrap();
        // Point a budget at a task that does not exist in the configuration.
        stored.raw_budgets[0].0 = TaskRef::new(TaskGraphId::new(7), TaskId::new(9));
        fs::write(&path, serde_json::to_string(&entry).unwrap()).unwrap();
        assert!(store.load(&key, &configuration).is_none());
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn clear_empties_the_store() {
        let directory = TempDir::new("clear");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        assert_eq!(store.summary().unwrap().entries, 1);
        assert_eq!(store.clear().unwrap(), 1);
        assert_eq!(store.summary().unwrap().entries, 0);
        // The store stays usable after a clear.
        store.save(&key, &result);
        assert!(store.load(&key, &configuration).is_some());
    }

    #[test]
    fn gc_honours_max_entries_and_max_age() {
        let directory = TempDir::new("gc");
        let store = SolveStore::open(directory.path()).unwrap();
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=4u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
        }
        assert_eq!(store.summary().unwrap().entries, 4);

        let outcome = store
            .gc(GcPolicy {
                max_entries: Some(2),
                max_age: None,
            })
            .unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(outcome.kept, 2);
        assert_eq!(store.summary().unwrap().entries, 2);

        std::thread::sleep(Duration::from_millis(20));
        let outcome = store
            .gc(GcPolicy {
                max_entries: None,
                max_age: Some(Duration::from_millis(1)),
            })
            .unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(store.summary().unwrap().entries, 0);
    }

    fn synthetic_entry(name: &str, age: Duration, now: SystemTime, readable: bool) -> StoreEntry {
        StoreEntry {
            path: PathBuf::from(name),
            modified: now.checked_sub(age).unwrap(),
            mtime_readable: readable,
            bytes: 1,
        }
    }

    #[test]
    fn gc_never_age_evicts_unreadable_mtimes() {
        // Regression: unreadable mtimes used to decay to UNIX_EPOCH, so on
        // a filesystem without mtimes `gc --max-age` wiped every entry.
        let now = SystemTime::now();
        let entries = vec![
            synthetic_entry("a-old", Duration::from_secs(100), now, true),
            // As `entries()` builds them: stamped with the scan time.
            synthetic_entry("b-unreadable", Duration::ZERO, now, false),
            synthetic_entry("c-fresh", Duration::from_secs(1), now, true),
        ];
        let policy = GcPolicy {
            max_entries: None,
            max_age: Some(Duration::from_secs(10)),
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(remove, vec![&PathBuf::from("a-old")]);
        assert_eq!(outcome.kept, 2);
        assert_eq!(outcome.unreadable_mtimes, 1);
        assert_eq!(outcome.removed, 0, "the caller counts actual deletions");
    }

    #[test]
    fn gc_max_entries_still_bounds_unreadable_mtimes() {
        // The age exemption must not make unreadable entries immortal: a
        // size cap still applies to them (oldest-sorted-first as scanned).
        let now = SystemTime::now();
        let entries: Vec<StoreEntry> = (0..3)
            .map(|i| synthetic_entry(&format!("u{i}"), Duration::ZERO, now, false))
            .collect();
        let policy = GcPolicy {
            max_entries: Some(1),
            max_age: Some(Duration::from_secs(10)),
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(remove, vec![&PathBuf::from("u0"), &PathBuf::from("u1")]);
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.unreadable_mtimes, 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        // Entries with identical mtimes must evict in deterministic path
        // order no matter the order the files were created (and hence the
        // readdir order a scan might observe).
        #[test]
        fn gc_breaks_mtime_ties_by_path_regardless_of_creation_order(seed in 0u64..1_000_000) {
            let directory = TempDir::new("gc-ties");
            let store = SolveStore::open(directory.path()).unwrap();
            let base = producer_consumer(PaperParameters::default(), None);
            let options = SolveOptions::default().prefer_budget_minimisation();

            // Shuffle the creation order with a splitmix-style permutation.
            let mut caps: Vec<u64> = (1..=6).collect();
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            for i in (1..caps.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                caps.swap(i, (state % (i as u64 + 1)) as usize);
            }
            for &cap in &caps {
                let configuration = with_capacity_cap(&base, cap);
                let key = CanonicalKey::from_parts(&configuration, &options, "joint");
                store.save(&key, &compute_mapping(&configuration, &options));
            }

            // Force a full mtime tie across every entry.
            let tie = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
            let scanned = store.entries().unwrap();
            proptest::prop_assert_eq!(scanned.len(), 6);
            for entry in &scanned {
                fs::File::options()
                    .write(true)
                    .open(&entry.path)
                    .unwrap()
                    .set_modified(tie)
                    .unwrap();
            }

            let mut all_paths: Vec<PathBuf> =
                scanned.into_iter().map(|entry| entry.path).collect();
            all_paths.sort();
            let outcome = store
                .gc(GcPolicy { max_entries: Some(3), max_age: None })
                .unwrap();
            proptest::prop_assert_eq!(outcome.removed, 3);
            proptest::prop_assert_eq!(outcome.kept, 3);
            let survivors: Vec<PathBuf> = store
                .entries()
                .unwrap()
                .into_iter()
                .map(|entry| entry.path)
                .collect();
            // Tied entries evict in path order: the lexicographically first
            // half goes, the rest survive — independent of `seed`.
            proptest::prop_assert_eq!(&survivors[..], &all_paths[3..]);
        }
    }

    #[test]
    fn automatic_size_cap_bounds_the_store_on_the_write_path() {
        let directory = TempDir::new("auto-cap");
        let store = SolveStore::open(directory.path())
            .unwrap()
            .with_max_entries(2);
        assert_eq!(store.max_entries(), Some(2));
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=5u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
            assert!(
                store.summary().unwrap().entries <= 2,
                "the cap must hold after every write"
            );
        }
        assert_eq!(store.summary().unwrap().entries, 2);
        // All five writes happened; the cap evicts, it does not block.
        assert_eq!(store.stats().stored, 5);
    }

    #[test]
    fn overwriting_one_key_under_a_cap_keeps_the_entry() {
        let directory = TempDir::new("auto-cap-overwrite");
        let store = SolveStore::open(directory.path())
            .unwrap()
            .with_max_entries(1);
        let (configuration, key, result) = solved();
        for _ in 0..3 {
            store.save(&key, &result);
        }
        assert_eq!(store.summary().unwrap().entries, 1);
        assert!(store.load(&key, &configuration).is_some());
    }

    #[test]
    fn uncapped_stores_never_run_the_write_path_gc() {
        let directory = TempDir::new("no-cap");
        let store = SolveStore::open(directory.path()).unwrap();
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=4u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
        }
        assert_eq!(store.summary().unwrap().entries, 4);
    }

    #[test]
    fn summary_counts_feasible_infeasible_and_corrupt() {
        let directory = TempDir::new("summary");
        let store = SolveStore::open(directory.path()).unwrap();
        let (_, key, result) = solved();
        store.save(&key, &result);
        let infeasible_configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 2);
        let options = SolveOptions::default().prefer_budget_minimisation();
        let infeasible_key =
            CanonicalKey::from_parts(&infeasible_configuration, &options, "two-phase-min");
        store.save(
            &infeasible_key,
            &Err(MappingError::Infeasible {
                detail: "injected".to_string(),
            }),
        );
        let shard = version_dir(directory.path()).join("zz");
        fs::create_dir_all(&shard).unwrap();
        fs::write(shard.join("junk.json"), "not json").unwrap();
        let summary = store.summary().unwrap();
        assert_eq!(summary.entries, 2);
        assert_eq!(summary.feasible, 1);
        assert_eq!(summary.infeasible, 1);
        assert_eq!(summary.corrupt, 1);
        assert!(summary.total_bytes > 0);
    }
}
