//! The parallel batch executor.
//!
//! A suite expands into a flat list of *work items* — one per (scenario,
//! sweep point) pair — that a hand-rolled `std::thread` worker pool drains
//! through the shared [`SolveCache`]. Results are collected into slots
//! pre-addressed by (scenario index, point index), so the outcome order is
//! the suite order no matter how the workers interleave; combined with the
//! cache's deterministic hit/miss accounting this makes the run's report
//! independent of the worker count.

use crate::cache::{CacheKey, CacheStats, SolveCache, SolveSource};
use crate::error::EngineError;
use crate::scenario::{Flow, Scenario, Suite};
use crate::store::StoreStats;
use bbs_scheduler_sim::{simulate_mapping, SimulationSettings};
use bbs_taskgraph::Configuration;
use budget_buffer::{
    compute_mapping, compute_mapping_two_phase, with_capacity_cap, BudgetPolicy, Mapping,
    MappingError, SolveOptions,
};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a suite is executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSettings {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Memoize solves in a run-wide [`SolveCache`].
    pub use_cache: bool,
    /// Firings per task when a scenario requests simulator validation.
    pub simulation_iterations: usize,
}

impl Default for RunSettings {
    fn default() -> Self {
        Self {
            jobs: 1,
            use_cache: true,
            simulation_iterations: 256,
        }
    }
}

impl RunSettings {
    /// Settings with `jobs` workers and the cache enabled.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }
}

/// The simulator validation attached to one point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationCheck {
    /// Worst measured steady-state period across all task graphs.
    pub measured_period: f64,
    /// Largest period requirement of the configuration.
    pub required_period: f64,
    /// Transient slack granted on top of the requirement (one replenishment
    /// interval amortised over the measured iterations).
    pub tolerance: f64,
    /// `measured_period <= required_period + tolerance`.
    pub guarantee_ok: bool,
}

/// The outcome of one work item: one solve (plus optional simulation).
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The capacity cap of the sweep point (`None` for single solves).
    pub capacity_cap: Option<u64>,
    /// The mapping, or the error that prevented one.
    pub result: Result<Mapping, MappingError>,
    /// Wall-clock time this worker spent actually solving: zero on cache
    /// hits (even ones that waited on another worker's in-flight solve, so
    /// shared work is never double-counted). Never part of the serialisable
    /// report.
    pub solve_time: Duration,
    /// Which tier — in-memory, disk, or neither — served the result.
    pub source: SolveSource,
    /// Simulator validation, when the scenario requested it and the solve
    /// succeeded.
    pub simulation: Option<SimulationCheck>,
}

/// The outcome of one scenario: its resolved inputs plus one
/// [`PointOutcome`] per sweep point.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario as submitted.
    pub scenario: Scenario,
    /// The resolved (uncapped) workload configuration.
    pub configuration: Configuration,
    /// The resolved flow.
    pub flow: Flow,
    /// The resolved solver options.
    pub options: SolveOptions,
    /// One outcome per sweep point, in sweep order.
    pub points: Vec<PointOutcome>,
}

impl ScenarioOutcome {
    /// The total budgets of the feasible points, in sweep order (the series
    /// behind the Figure 2(b)-style derivative).
    pub fn feasible_total_budgets(&self) -> Vec<u64> {
        self.points
            .iter()
            .filter_map(|p| p.result.as_ref().ok().map(Mapping::total_budget))
            .collect()
    }
}

/// The outcome of a full suite run.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Name of the suite.
    pub suite: String,
    /// One outcome per scenario, in suite order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Cache counters of the run (all zero when the cache was disabled).
    pub cache: CacheStats,
    /// Whether the cache was enabled.
    pub cache_enabled: bool,
    /// Counters of the persistent disk tier, when the cache carries one
    /// (see [`SolveCache::with_store`]).
    pub store: Option<StoreStats>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl SuiteOutcome {
    /// Infeasible or failed points that the suite did not declare as
    /// expected, as `(scenario, capacity_cap, error)` tuples.
    ///
    /// `expect_infeasible` only excuses *infeasibility* — a model whose
    /// constraints genuinely admit no mapping. Solver breakdowns, model
    /// errors and verification failures are regressions and stay unexpected
    /// even in such scenarios, so they can never hide behind an expected
    /// false negative.
    pub fn unexpected_failures(&self) -> Vec<(String, Option<u64>, String)> {
        let mut failures = Vec::new();
        for outcome in &self.scenarios {
            let expect_infeasible = outcome.scenario.expect_infeasible.unwrap_or(false);
            for point in &outcome.points {
                if let Err(error) = &point.result {
                    if expect_infeasible && is_infeasibility(error) {
                        continue;
                    }
                    failures.push((
                        outcome.scenario.name.clone(),
                        point.capacity_cap,
                        error.to_string(),
                    ));
                }
            }
        }
        failures
    }
}

/// Whether an error reports genuine infeasibility (no mapping exists) as
/// opposed to a solver, model or verification failure.
fn is_infeasibility(error: &MappingError) -> bool {
    matches!(
        error,
        MappingError::Infeasible { .. }
            | MappingError::CapBelowInitialTokens { .. }
            | MappingError::ProcessorOverloaded { .. }
            | MappingError::MemoryOverflow { .. }
    )
}

/// One solve to perform: the capped configuration plus everything needed to
/// route the result back to its slot.
struct WorkItem {
    scenario_index: usize,
    point_index: usize,
    capacity_cap: Option<u64>,
    configuration: Configuration,
    options: SolveOptions,
    flow: Flow,
    simulate: bool,
}

/// Runs a whole suite with a fresh solve cache.
///
/// # Errors
///
/// Returns an [`EngineError`] when the suite fails validation; solver-level
/// failures are *data* (recorded per point), not errors.
pub fn run_suite(suite: &Suite, settings: &RunSettings) -> Result<SuiteOutcome, EngineError> {
    run_suite_with_cache(suite, settings, &SolveCache::new())
}

/// Runs a whole suite against a caller-owned [`SolveCache`], so repeated
/// runs (and overlapping suites) skip redundant solves. The outcome's
/// counters are the cache's cumulative totals.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_suite_with_cache(
    suite: &Suite,
    settings: &RunSettings,
    cache: &SolveCache,
) -> Result<SuiteOutcome, EngineError> {
    suite.validate_structure()?;
    let start = Instant::now();

    // Resolve every scenario exactly once (full `Suite::validate` would
    // build each workload a second time just to discard it) and expand the
    // sweeps.
    let in_scenario = |name: &str, e: EngineError| {
        EngineError::InvalidScenario(format!("scenario `{name}`: {e}"))
    };
    let mut resolved = Vec::new();
    let mut items = VecDeque::new();
    for (scenario_index, scenario) in suite.scenarios.iter().enumerate() {
        let configuration = scenario
            .workload
            .resolve()
            .map_err(|e| in_scenario(&scenario.name, e))?;
        let flow = scenario
            .resolved_flow()
            .map_err(|e| in_scenario(&scenario.name, e))?;
        let options = scenario.resolved_options();
        let caps: Vec<Option<u64>> = match &scenario.sweep {
            Some(sweep) => sweep
                .caps()
                .map_err(|e| in_scenario(&scenario.name, e))?
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None],
        };
        for (point_index, cap) in caps.iter().enumerate() {
            let capped = match cap {
                Some(cap) => with_capacity_cap(&configuration, *cap),
                None => configuration.clone(),
            };
            items.push_back(WorkItem {
                scenario_index,
                point_index,
                capacity_cap: *cap,
                configuration: capped,
                options: options.clone(),
                flow,
                simulate: scenario.simulate.unwrap_or(false),
            });
        }
        resolved.push((scenario.clone(), configuration, flow, options, caps.len()));
    }

    let total_items = items.len();
    let queue = Mutex::new(items);
    let (sender, receiver) = mpsc::channel::<(usize, usize, PointOutcome)>();
    let jobs = settings.jobs.max(1).min(total_items.max(1));

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let queue = &queue;
            let sender = sender.clone();
            scope.spawn(move || {
                loop {
                    let item = queue.lock().expect("queue lock poisoned").pop_front();
                    let Some(item) = item else { break };
                    let outcome = execute_item(&item, cache, settings);
                    // The receiver lives until every sender hung up; a send
                    // failure means the main thread panicked already.
                    let _ = sender.send((item.scenario_index, item.point_index, outcome));
                }
            });
        }
        drop(sender);

        // Collect into pre-addressed slots: suite order, not finish order.
        let mut slots: Vec<Vec<Option<PointOutcome>>> = resolved
            .iter()
            .map(|(_, _, _, _, points)| vec![None; *points])
            .collect();
        for (scenario_index, point_index, outcome) in receiver {
            slots[scenario_index][point_index] = Some(outcome);
        }

        let scenarios = resolved
            .into_iter()
            .zip(slots)
            .map(
                |((scenario, configuration, flow, options, _), points)| ScenarioOutcome {
                    scenario,
                    configuration,
                    flow,
                    options,
                    points: points
                        .into_iter()
                        .map(|p| p.expect("every work item reports exactly once"))
                        .collect(),
                },
            )
            .collect();

        Ok(SuiteOutcome {
            suite: suite.name.clone(),
            scenarios,
            cache: if settings.use_cache {
                cache.stats()
            } else {
                // The bypassed cache may hold counters from earlier runs;
                // reporting them here would contradict `cache_enabled`.
                CacheStats { hits: 0, misses: 0 }
            },
            cache_enabled: settings.use_cache,
            store: settings
                .use_cache
                .then(|| cache.store().map(|store| store.stats()))
                .flatten(),
            wall_time: start.elapsed(),
        })
    })
}

/// Runs a single scenario (a one-element suite with the scenario's name).
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_scenario(
    scenario: &Scenario,
    settings: &RunSettings,
) -> Result<ScenarioOutcome, EngineError> {
    let suite = Suite::new(&scenario.name, vec![scenario.clone()]);
    let outcome = run_suite(&suite, settings)?;
    Ok(outcome
        .scenarios
        .into_iter()
        .next()
        .expect("one scenario in, one outcome out"))
}

fn execute_item(item: &WorkItem, cache: &SolveCache, settings: &RunSettings) -> PointOutcome {
    // Timed inside the closure so that a cache hit — including one that
    // blocks waiting for another worker's in-flight solve — reports zero
    // solver work instead of double-counting the shared solve.
    let solve_duration = std::cell::Cell::new(Duration::ZERO);
    let solve = || {
        let start = Instant::now();
        let result = solve_flow(&item.configuration, &item.options, item.flow);
        solve_duration.set(start.elapsed());
        result
    };
    let (result, source) = if settings.use_cache {
        let key = CacheKey::new(&item.configuration, &item.options, item.flow.as_str());
        cache.solve_with(key, &item.configuration, solve)
    } else {
        (solve(), SolveSource::Fresh)
    };
    let solve_time = solve_duration.get();
    let simulation = match (&result, item.simulate) {
        (Ok(mapping), true) => Some(simulate_point(
            &item.configuration,
            mapping,
            settings.simulation_iterations,
        )),
        _ => None,
    };
    PointOutcome {
        capacity_cap: item.capacity_cap,
        result,
        solve_time,
        source,
        simulation,
    }
}

fn solve_flow(
    configuration: &Configuration,
    options: &SolveOptions,
    flow: Flow,
) -> Result<Mapping, MappingError> {
    match flow {
        Flow::Joint => compute_mapping(configuration, options),
        Flow::TwoPhaseMin => {
            compute_mapping_two_phase(configuration, BudgetPolicy::ThroughputMinimum, options)
                .map(|outcome| outcome.mapping)
        }
        Flow::TwoPhaseFair => {
            compute_mapping_two_phase(configuration, BudgetPolicy::FairShare, options)
                .map(|outcome| outcome.mapping)
        }
    }
}

fn simulate_point(
    configuration: &Configuration,
    mapping: &Mapping,
    iterations: usize,
) -> SimulationCheck {
    let budgets = mapping.budgets().collect();
    let capacities = mapping.capacities().collect();
    let settings = SimulationSettings {
        iterations,
        ..SimulationSettings::default()
    };
    let required_period = configuration
        .task_graphs()
        .map(|(_, graph)| graph.period())
        .fold(0.0f64, f64::max);
    // The measured period averages the second half of the run, so the
    // start-up transient of at most one replenishment interval is amortised
    // over `iterations / 2 - 1` steady-state firings.
    let max_replenishment = configuration
        .processors()
        .map(|(_, p)| p.replenishment_interval())
        .fold(0.0f64, f64::max);
    let tolerance = max_replenishment / ((iterations / 2).saturating_sub(1).max(1)) as f64;
    match simulate_mapping(configuration, &budgets, &capacities, &settings) {
        Ok(result) => {
            let measured_period = result.worst_period();
            SimulationCheck {
                measured_period,
                required_period,
                tolerance,
                guarantee_ok: measured_period <= required_period + tolerance,
            }
        }
        Err(_) => SimulationCheck {
            measured_period: f64::INFINITY,
            required_period,
            tolerance,
            guarantee_ok: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{SweepSpec, WorkloadSpec};
    use bbs_taskgraph::presets::PresetSpec;
    use budget_buffer::sweep_buffer_capacity;

    fn pc_sweep_scenario(name: &str) -> Scenario {
        Scenario::new(
            name,
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::range(1, 6))
    }

    #[test]
    fn engine_sweep_matches_direct_sweep() {
        let outcome = run_scenario(&pc_sweep_scenario("pc"), &RunSettings::default()).unwrap();
        let direct = sweep_buffer_capacity(
            &outcome.configuration,
            1..=6,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        assert_eq!(outcome.points.len(), direct.len());
        for (point, reference) in outcome.points.iter().zip(&direct) {
            assert_eq!(point.capacity_cap, Some(reference.capacity_cap));
            assert_eq!(point.result.as_ref().unwrap(), &reference.mapping);
        }
    }

    #[test]
    fn parallel_run_produces_same_mappings_in_same_order() {
        let suite = Suite::new("par", vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")]);
        let sequential = run_suite(&suite, &RunSettings::with_jobs(1)).unwrap();
        let parallel = run_suite(&suite, &RunSettings::with_jobs(8)).unwrap();
        assert_eq!(sequential.scenarios.len(), parallel.scenarios.len());
        for (s, p) in sequential.scenarios.iter().zip(&parallel.scenarios) {
            assert_eq!(s.scenario.name, p.scenario.name);
            for (sp, pp) in s.points.iter().zip(&p.points) {
                assert_eq!(sp.capacity_cap, pp.capacity_cap);
                assert_eq!(sp.result.as_ref().unwrap(), pp.result.as_ref().unwrap());
            }
        }
        assert_eq!(sequential.cache, parallel.cache);
    }

    #[test]
    fn identical_scenarios_hit_the_cache() {
        let suite = Suite::new(
            "cached",
            vec![pc_sweep_scenario("first"), pc_sweep_scenario("second")],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert_eq!(outcome.cache.misses, 6);
        assert_eq!(outcome.cache.hits, 6);
        assert!(outcome.scenarios[1]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
        assert!(outcome.unexpected_failures().is_empty());
    }

    #[test]
    fn repeated_runs_reuse_a_shared_cache() {
        let suite = Suite::new("repeat", vec![pc_sweep_scenario("pc")]);
        let cache = crate::cache::SolveCache::new();
        let settings = RunSettings::default();
        let first = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert_eq!(first.cache.misses, 6);
        assert_eq!(first.cache.hits, 0);
        let second = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert_eq!(second.cache.misses, 6, "no new solves on the second run");
        assert_eq!(second.cache.hits, 6);
        assert!(second.scenarios[0]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
        for (a, b) in first.scenarios[0]
            .points
            .iter()
            .zip(&second.scenarios[0].points)
        {
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }

    #[test]
    fn disabled_cache_reports_zero_counters() {
        let settings = RunSettings {
            use_cache: false,
            ..RunSettings::default()
        };
        let outcome = run_scenario(&pc_sweep_scenario("raw"), &settings).unwrap();
        assert!(outcome
            .points
            .iter()
            .all(|p| p.source == SolveSource::Fresh));
        // Even a dirty shared cache must not leak counters into a run that
        // bypassed it.
        let cache = SolveCache::new();
        let suite = Suite::new("raw", vec![pc_sweep_scenario("raw")]);
        run_suite_with_cache(&suite, &RunSettings::default(), &cache).unwrap();
        let bypassed = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert!(!bypassed.cache_enabled);
        assert_eq!(bypassed.cache, CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn expect_infeasible_excuses_only_genuine_infeasibility() {
        use bbs_conic::ConicError;

        assert!(is_infeasibility(&MappingError::Infeasible {
            detail: "x".to_string()
        }));
        assert!(!is_infeasibility(&MappingError::Solver(
            ConicError::NonFiniteData
        )));

        // A solver breakdown inside an expect_infeasible scenario still
        // counts as an unexpected failure.
        let scenario = pc_sweep_scenario("broken").expecting_infeasible();
        let configuration = scenario.workload.resolve().unwrap();
        let options = scenario.resolved_options();
        let outcome = SuiteOutcome {
            suite: "s".to_string(),
            scenarios: vec![ScenarioOutcome {
                scenario,
                configuration,
                flow: Flow::Joint,
                options,
                points: vec![
                    PointOutcome {
                        capacity_cap: Some(1),
                        result: Err(MappingError::Infeasible {
                            detail: "expected".to_string(),
                        }),
                        solve_time: Duration::ZERO,
                        source: SolveSource::Fresh,
                        simulation: None,
                    },
                    PointOutcome {
                        capacity_cap: Some(2),
                        result: Err(MappingError::Solver(ConicError::NonFiniteData)),
                        solve_time: Duration::ZERO,
                        source: SolveSource::Fresh,
                        simulation: None,
                    },
                ],
            }],
            cache: CacheStats { hits: 0, misses: 0 },
            cache_enabled: true,
            store: None,
            wall_time: Duration::ZERO,
        };
        let failures = outcome.unexpected_failures();
        assert_eq!(failures.len(), 1, "only the solver breakdown surfaces");
        assert_eq!(failures[0].1, Some(2));
    }

    #[test]
    fn infeasible_points_are_data_not_errors() {
        // Ring with 2 initial tokens is infeasible at cap 1 (cap below the
        // initial tokens).
        let scenario = Scenario::new(
            "ring-tight",
            WorkloadSpec::preset(
                PresetSpec::named("ring")
                    .with_tasks(3)
                    .with_initial_tokens(2),
            ),
        )
        .with_sweep(SweepSpec::range(1, 3))
        .expecting_infeasible();
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        assert!(outcome.points[0].result.is_err());
        assert!(outcome.points[1].result.is_ok());
        let suite = Suite::new("s", vec![scenario]);
        let suite_outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert!(suite_outcome.unexpected_failures().is_empty());
    }

    #[test]
    fn two_phase_flow_runs_through_engine() {
        let scenario = Scenario::new(
            "tp",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_flow(Flow::TwoPhaseFair);
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        let direct = compute_mapping_two_phase(
            &outcome.configuration,
            BudgetPolicy::FairShare,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        assert_eq!(outcome.points[0].result.as_ref().unwrap(), &direct.mapping);
    }

    #[test]
    fn simulation_checks_the_guarantee() {
        let scenario = Scenario::new(
            "sim",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::list([4u64]))
        .with_simulation();
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        let check = outcome.points[0].simulation.as_ref().unwrap();
        assert!(check.guarantee_ok, "paper setup must meet its guarantee");
        assert_eq!(check.required_period, 10.0);
        assert!(check.measured_period.is_finite());
    }
}
