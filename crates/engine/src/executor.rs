//! The parallel batch executor: a panic-safe work-stealing worker pool.
//!
//! A suite expands into a flat list of *work items* — one per (scenario,
//! sweep point) pair. Expansion itself is two-staged: a serial *plan* pass
//! resolves each scenario's workload, flow, options and hoisted
//! [`ScenarioKeySeed`] exactly once, and a (parallel, chunked) *expand*
//! pass turns every sweep point into a work item holding a copy-on-write
//! [`ConfigView`] — an `Arc` of the scenario's base configuration plus the
//! point's capacity cap — instead of an owned clone. Chunks are assembled
//! in index order, so the item list is the suite order no matter how many
//! threads expanded it (the same slot discipline the result side uses).
//!
//! The items are then seeded round-robin across per-worker
//! deques; each worker drains its own deque LIFO and, when it runs dry,
//! steals FIFO from the other workers' deques (the opposite end, so owner
//! and thief never contend for the same item). A legacy single shared-queue
//! scheduler is kept behind [`RunSettings::steal`]` = false` as the
//! contention baseline for benchmarks.
//!
//! Every item executes inside a `catch_unwind` boundary: a panicking solve
//! becomes an error outcome *on that point* — using the same error the
//! [`SolveCache`] poison-fills its slot with, so waiters on the panicking
//! key report identically — and the rest of the suite keeps running. No
//! queue lock is ever held across a solve, so a panic cannot poison the
//! scheduler.
//!
//! Results are collected into slots pre-addressed by (scenario index, point
//! index), so the outcome order is the suite order no matter where an item
//! ran or who stole it; combined with the cache's deterministic hit/miss
//! accounting this makes the run's report independent of the worker count
//! and of the steal schedule.

use crate::cache::{
    cancelled_solve_error, panicked_solve_error, CacheKey, CacheStats, CanonicalKey,
    ScenarioKeySeed, SolveCache, SolveSource,
};
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::scenario::{Flow, Scenario, Suite};
use crate::store::StoreStats;
use crate::validate::{validate_outcome, PointValidation};
use bbs_taskgraph::{ConfigView, Configuration};
use budget_buffer::{
    compute_mapping_two_phase, compute_mapping_view, BudgetPolicy, Mapping, MappingError,
    SolveOptions,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How a suite is executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSettings {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Memoize solves in a run-wide [`SolveCache`].
    pub use_cache: bool,
    /// Firings per task when a point is replayed by the validation stage.
    pub simulation_iterations: usize,
    /// Replay every scenario's feasible points in the validation stage,
    /// whether or not the scenario requests it (`bbs validate`); `false`
    /// (the default) validates only scenarios flagged `validate: "sim"`.
    pub validate_all: bool,
    /// Schedule work over sharded per-worker deques with work stealing
    /// (the default). `false` falls back to the single shared-queue
    /// scheduler — kept as the contention baseline for benchmarks and for
    /// strictly FIFO execution order. Both schedulers produce byte-identical
    /// reports.
    pub steal: bool,
    /// Fault injection for tests and CI chaos checks: the addressed point
    /// panics while executing (before its cache lookup, so the fault fires
    /// deterministically regardless of slot-claim races). An injection that
    /// matches no point of the suite is an error, never a silent no-op.
    /// `None` (the default) injects nothing.
    pub inject_panic: Option<PanicInjection>,
    /// Fault injection for tests and CI chaos checks: the addressed point
    /// sleeps for a fixed duration while executing (before its cache
    /// lookup, like [`RunSettings::inject_panic`]) — the deterministic
    /// lever that keeps a submission *running* long enough for
    /// cancellation, deadline, and disconnect paths to be testable.
    /// Unlike `inject_panic`, a stall that matches no point is a benign
    /// no-op: the serve layer applies one plan to every submission, most
    /// of which won't contain the addressed scenario. `None` (the
    /// default) stalls nothing.
    pub inject_stall: Option<StallInjection>,
}

/// Selects one work item for fault injection (see
/// [`RunSettings::inject_panic`]): the point of scenario `scenario` whose
/// capacity cap is `capacity_cap` panics while executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicInjection {
    /// Name of the scenario to fault.
    pub scenario: String,
    /// Capacity cap of the sweep point to fault (`None` for single solves).
    pub capacity_cap: Option<u64>,
}

/// Selects one work item for a stall fault (see
/// [`RunSettings::inject_stall`]): the point of scenario `scenario` whose
/// capacity cap is `capacity_cap` sleeps `millis` before solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallInjection {
    /// Name of the scenario to stall.
    pub scenario: String,
    /// Capacity cap of the sweep point to stall (`None` for single solves).
    pub capacity_cap: Option<u64>,
    /// How long the addressed point sleeps, in milliseconds.
    pub millis: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        Self {
            jobs: 1,
            use_cache: true,
            simulation_iterations: 256,
            validate_all: false,
            steal: true,
            inject_panic: None,
            inject_stall: None,
        }
    }
}

impl RunSettings {
    /// Settings with `jobs` workers and the cache enabled.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }
}

/// The outcome of one work item: one solve (plus optional validation).
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The capacity cap of the sweep point (`None` for single solves).
    pub capacity_cap: Option<u64>,
    /// The mapping, or the error that prevented one.
    pub result: Result<Mapping, MappingError>,
    /// Wall-clock time this worker spent actually solving: zero on cache
    /// hits (even ones that waited on another worker's in-flight solve, so
    /// shared work is never double-counted). Never part of the serialisable
    /// report.
    pub solve_time: Duration,
    /// Which tier — in-memory, disk, or neither — served the result.
    pub source: SolveSource,
    /// The validation stage's verdict, when this point was replayed (the
    /// scenario requested `validate: "sim"`, or the run forced
    /// [`RunSettings::validate_all`], and the solve was feasible).
    pub validation: Option<PointValidation>,
}

/// The outcome of one scenario: its resolved inputs plus one
/// [`PointOutcome`] per sweep point.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario as submitted.
    pub scenario: Scenario,
    /// The resolved (uncapped) workload configuration.
    pub configuration: Configuration,
    /// The resolved flow.
    pub flow: Flow,
    /// The resolved solver options.
    pub options: SolveOptions,
    /// One outcome per sweep point, in sweep order.
    pub points: Vec<PointOutcome>,
}

impl ScenarioOutcome {
    /// The total budgets of the feasible points, in sweep order (the series
    /// behind the Figure 2(b)-style derivative).
    pub fn feasible_total_budgets(&self) -> Vec<u64> {
        self.points
            .iter()
            .filter_map(|p| p.result.as_ref().ok().map(Mapping::total_budget))
            .collect()
    }
}

/// Scheduler counters of one run: how work items moved between workers,
/// not what they computed. Steal counts depend on thread timing, so these
/// are printed with the timing summary and deliberately kept out of the
/// deterministic [`SuiteReport`](crate::SuiteReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads the pool actually spawned (after clamping `jobs` to
    /// the number of work items).
    pub workers: u64,
    /// Whether the work-stealing scheduler was used (`false`: the shared
    /// queue).
    pub stealing: bool,
    /// Items a worker popped from its own deque (shared-queue mode counts
    /// every pop here).
    pub local_pops: u64,
    /// Items taken from another worker's deque.
    pub steals: u64,
    /// Panicking items converted to per-point error outcomes.
    pub caught_panics: u64,
}

/// The outcome of a full suite run.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Name of the suite.
    pub suite: String,
    /// One outcome per scenario, in suite order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Cache counters of the run (all zero when the cache was disabled).
    pub cache: CacheStats,
    /// Whether the cache was enabled.
    pub cache_enabled: bool,
    /// Counters of the persistent disk tier, when the cache carries one
    /// (see [`SolveCache::with_store`]).
    pub store: Option<StoreStats>,
    /// Scheduler counters of the run.
    pub executor: ExecutorStats,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl SuiteOutcome {
    /// Infeasible or failed points that the suite did not declare as
    /// expected, as `(scenario, capacity_cap, error)` tuples.
    ///
    /// `expect_infeasible` only excuses *infeasibility* — a model whose
    /// constraints genuinely admit no mapping. Solver breakdowns, model
    /// errors and verification failures are regressions and stay unexpected
    /// even in such scenarios, so they can never hide behind an expected
    /// false negative.
    pub fn unexpected_failures(&self) -> Vec<(String, Option<u64>, String)> {
        let mut failures = Vec::new();
        for outcome in &self.scenarios {
            let expect_infeasible = outcome.scenario.expect_infeasible.unwrap_or(false);
            for point in &outcome.points {
                if let Err(error) = &point.result {
                    if expect_infeasible && is_infeasibility(error) {
                        continue;
                    }
                    failures.push((
                        outcome.scenario.name.clone(),
                        point.capacity_cap,
                        error.to_string(),
                    ));
                }
            }
        }
        failures
    }
}

/// Whether an error reports genuine infeasibility (no mapping exists) as
/// opposed to a solver, model or verification failure.
fn is_infeasibility(error: &MappingError) -> bool {
    matches!(
        error,
        MappingError::Infeasible { .. }
            | MappingError::CapBelowInitialTokens { .. }
            | MappingError::ProcessorOverloaded { .. }
            | MappingError::MemoryOverflow { .. }
    )
}

/// One solve to perform: a copy-on-write [`ConfigView`] of the scenario's
/// shared base configuration (plus the point's capacity cap) and everything
/// needed to route the result back to its slot. The cache key is
/// pre-derived (from the scenario's hoisted [`ScenarioKeySeed`], streaming
/// straight from the view) so workers never serialise anything on the hot
/// path; the shared seed rides along for the lazy [`CanonicalKey`]
/// materialisation of points that reach the disk tier (its options JSON is
/// built at most once per scenario, and not at all without a store).
/// Building an item allocates nothing: the view is two `Arc` bumps and a
/// `Copy` cap, and the capped configuration only materialises at the solver
/// boundary, for points that actually solve.
pub(crate) struct WorkItem {
    scenario_index: usize,
    point_index: usize,
    capacity_cap: Option<u64>,
    view: ConfigView,
    options: SolveOptions,
    seed: Arc<ScenarioKeySeed>,
    flow: Flow,
    key: CacheKey,
}

impl WorkItem {
    /// The pre-derived cache key of this solve — what
    /// [`Engine::submit`](crate::Engine::submit) counts distinct keys over
    /// for its submission-local hit/miss accounting.
    pub(crate) fn key(&self) -> CacheKey {
        self.key
    }
}

/// Live counters shared by all workers of one pool.
#[derive(Default)]
pub(crate) struct PoolCounters {
    local_pops: AtomicU64,
    steals: AtomicU64,
    caught_panics: AtomicU64,
}

/// Locks a deque, recovering from poisoning: the panic boundary sits around
/// [`execute_item`], so no lock is ever held across code that can panic —
/// but if one ever *were* poisoned, the deque data is still consistent
/// (every operation is a single pop or push) and abandoning the whole run
/// over it would be strictly worse.
fn lock_deque(deque: &Mutex<VecDeque<WorkItem>>) -> MutexGuard<'_, VecDeque<WorkItem>> {
    deque.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes `item` behind the panic boundary: a panicking solve (or
/// simulation) becomes an error outcome on this point, with the same error
/// the cache poison-fills its slot with (see
/// [`panicked_solve_error`](crate::cache)), so the claimer and every waiter
/// of a panicking key report identically regardless of which of them this
/// item happened to be.
fn execute_guarded(
    item: &WorkItem,
    cache: &SolveCache,
    settings: &RunSettings,
    counters: &PoolCounters,
    inject: bool,
    stall_ms: Option<u64>,
) -> PointOutcome {
    match catch_unwind(AssertUnwindSafe(|| {
        execute_item(item, cache, settings, inject, stall_ms)
    })) {
        Ok(outcome) => outcome,
        Err(_) => {
            counters.caught_panics.fetch_add(1, Ordering::Relaxed);
            PointOutcome {
                capacity_cap: item.capacity_cap,
                result: Err(panicked_solve_error()),
                solve_time: Duration::ZERO,
                source: SolveSource::Fresh,
                validation: None,
            }
        }
    }
}

/// Runs a whole suite with a fresh solve cache.
///
/// # Errors
///
/// Returns an [`EngineError`] when the suite fails validation; solver-level
/// failures are *data* (recorded per point), not errors.
pub fn run_suite(suite: &Suite, settings: &RunSettings) -> Result<SuiteOutcome, EngineError> {
    run_suite_with_cache(suite, settings, &SolveCache::new())
}

/// Runs a whole suite against a caller-owned [`SolveCache`], so repeated
/// runs (and overlapping suites) skip redundant solves. The outcome's
/// counters are the cache's cumulative totals.
///
/// Worker threads are spawned per call and joined before returning; callers
/// that run suites repeatedly should hold an [`Engine`](crate::Engine),
/// whose pool parks its workers between runs instead. Both executors
/// produce byte-identical reports.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_suite_with_cache(
    suite: &Suite,
    settings: &RunSettings,
    cache: &SolveCache,
) -> Result<SuiteOutcome, EngineError> {
    let start = Instant::now();
    let prepared = prepare(suite, settings)?;
    let jobs = settings.jobs.max(1).min(prepared.items.len().max(1));
    let shards = shard_items(prepared.items, jobs, settings.steal);
    let counters = PoolCounters::default();
    let (sender, receiver) = mpsc::channel::<(usize, usize, PointOutcome)>();

    // The scoped executor has no caller-supplied cancellation: runs always
    // drain to completion under a token that never fires.
    let cancel = CancelToken::new();
    let mut outcome = std::thread::scope(|scope| {
        for worker in 0..jobs {
            let context = DrainContext {
                shards: &shards,
                settings,
                injection_target: prepared.injection_target,
                stall_target: prepared.stall_target,
                cache,
                counters: &counters,
                cancel: &cancel,
            };
            let sender = sender.clone();
            scope.spawn(move || {
                drain_worker(worker, &context, &sender);
            });
        }
        drop(sender);
        assemble_outcome(
            suite,
            prepared.resolved,
            receiver,
            settings,
            cache,
            &counters,
            jobs,
            start,
        )
    });
    // The validation stage replays solved mappings after assembly, on its
    // own scoped threads; the wall clock covers it, the report never does.
    validate_outcome(&mut outcome, settings);
    outcome.wall_time = start.elapsed();
    Ok(outcome)
}

/// The per-scenario resolution of one suite: the built workload (shared
/// with every work item's view), flow, options and point count. The
/// scenario itself is *not* cloned here — the outcome assembler reads it
/// back from the suite it already borrows.
pub(crate) struct ResolvedScenario {
    pub(crate) configuration: Arc<Configuration>,
    pub(crate) flow: Flow,
    pub(crate) options: SolveOptions,
    pub(crate) points: usize,
}

/// A suite resolved and expanded into work items, ready to shard.
pub(crate) struct Prepared {
    pub(crate) resolved: Vec<ResolvedScenario>,
    pub(crate) items: Vec<WorkItem>,
    pub(crate) injection_target: Option<(usize, usize)>,
    pub(crate) stall_target: Option<(usize, usize)>,
}

/// One scenario resolved but not yet expanded: everything
/// [`ScenarioPlan::item`] needs to mint any of the scenario's work items.
pub(crate) struct ScenarioPlan {
    scenario_index: usize,
    configuration: Arc<Configuration>,
    options: SolveOptions,
    seed: Arc<ScenarioKeySeed>,
    flow: Flow,
    caps: Vec<Option<u64>>,
}

impl ScenarioPlan {
    /// Mints the work item of one sweep point. Allocation-free: the view
    /// shares the plan's base configuration, the options are heap-free, and
    /// the cache key streams straight from the view.
    fn item(&self, point_index: usize) -> WorkItem {
        let cap = self.caps[point_index];
        let view = match cap {
            Some(cap) => ConfigView::with_capacity_cap(Arc::clone(&self.configuration), cap),
            None => ConfigView::new(Arc::clone(&self.configuration)),
        };
        let key = self.seed.key_for(&view);
        WorkItem {
            scenario_index: self.scenario_index,
            point_index,
            capacity_cap: cap,
            view,
            options: self.options.clone(),
            seed: Arc::clone(&self.seed),
            flow: self.flow,
            key,
        }
    }
}

/// Sweep points per expansion chunk: small enough that a 10k-point sweep
/// spreads across every worker, large enough that chunk bookkeeping is
/// noise. Fixed (never derived from the worker count) so the chunk
/// decomposition — and therefore the assembled item order — is a function
/// of the suite alone.
const EXPANSION_CHUNK: usize = 512;

/// The parallel half of preparation: the scenario plans plus their
/// decomposition into fixed-size chunks of sweep points. Workers claim
/// chunks off the atomic cursor ([`ExpansionJob::drain`]) and the submitter
/// reassembles them in chunk order ([`ExpansionJob::collect`]) — exactly
/// the slot discipline result draining uses, so the expanded item list is
/// byte-for-byte the suite order regardless of who expanded what.
pub(crate) struct ExpansionJob {
    plans: Vec<ScenarioPlan>,
    /// `(plan index, first point, points)` per chunk; chunks never span
    /// scenarios.
    chunks: Vec<(usize, usize, usize)>,
    cursor: AtomicUsize,
    points: usize,
}

impl ExpansionJob {
    fn new(plans: Vec<ScenarioPlan>) -> Self {
        let points = plans.iter().map(|plan| plan.caps.len()).sum();
        let total_chunks = plans
            .iter()
            .map(|plan| plan.caps.len().div_ceil(EXPANSION_CHUNK))
            .sum();
        let mut chunks = Vec::with_capacity(total_chunks);
        for (plan_index, plan) in plans.iter().enumerate() {
            let mut start = 0;
            while start < plan.caps.len() {
                let len = EXPANSION_CHUNK.min(plan.caps.len() - start);
                chunks.push((plan_index, start, len));
                start += len;
            }
        }
        Self {
            plans,
            chunks,
            cursor: AtomicUsize::new(0),
            points,
        }
    }

    /// Number of chunks — the useful parallelism of this expansion.
    pub(crate) fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// One worker's expansion loop: claim the next chunk off the cursor,
    /// mint its items, send them home labelled with the chunk index.
    pub(crate) fn drain(&self, sender: &mpsc::Sender<(usize, Vec<WorkItem>)>) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(plan_index, start, len)) = self.chunks.get(index) else {
                break;
            };
            let plan = &self.plans[plan_index];
            let mut items = Vec::with_capacity(len);
            for point_index in start..start + len {
                items.push(plan.item(point_index));
            }
            // The receiver lives until collection is done; a send failure
            // means the submitting thread panicked already.
            let _ = sender.send((index, items));
        }
    }

    /// Reassembles drained chunks into the suite-order item list.
    pub(crate) fn collect(
        &self,
        receiver: mpsc::Receiver<(usize, Vec<WorkItem>)>,
    ) -> Vec<WorkItem> {
        let mut slots: Vec<Option<Vec<WorkItem>>> = (0..self.chunks.len()).map(|_| None).collect();
        for (index, items) in receiver {
            slots[index] = Some(items);
        }
        let mut items = Vec::with_capacity(self.points);
        for slot in slots {
            items.extend(slot.expect("every chunk is expanded exactly once"));
        }
        items
    }

    /// Single-threaded expansion: one reserved allocation for the whole
    /// item list, zero allocations per point (regression-guarded by the
    /// `expansion_alloc` integration test).
    pub(crate) fn expand_serial(&self) -> Vec<WorkItem> {
        let mut items = Vec::with_capacity(self.points);
        for plan in &self.plans {
            for point_index in 0..plan.caps.len() {
                items.push(plan.item(point_index));
            }
        }
        items
    }
}

/// A suite resolved into per-scenario plans, not yet expanded into items.
pub(crate) struct Planned {
    pub(crate) resolved: Vec<ResolvedScenario>,
    pub(crate) expansion: ExpansionJob,
    pub(crate) injection_target: Option<(usize, usize)>,
    pub(crate) stall_target: Option<(usize, usize)>,
}

/// The serial half of preparation: resolves every scenario exactly once
/// (full `Suite::validate` would build each workload a second time just to
/// discard it), hoists the per-scenario [`ScenarioKeySeed`], expands the
/// sweep specs to cap lists, and resolves the panic injection to slot
/// coordinates. No per-point work happens here — that is the (parallel)
/// [`ExpansionJob`].
pub(crate) fn plan(suite: &Suite, settings: &RunSettings) -> Result<Planned, EngineError> {
    suite.validate_structure()?;
    let in_scenario = |name: &str, e: EngineError| {
        EngineError::InvalidScenario(format!("scenario `{name}`: {e}"))
    };
    let mut resolved = Vec::with_capacity(suite.scenarios.len());
    let mut plans = Vec::with_capacity(suite.scenarios.len());
    // Consecutive scenarios overwhelmingly share options and flow (whole
    // built-in suites use the paper defaults), so the hoisted seed is
    // reused across scenarios too: one options fold for a hundred
    // same-options scenarios instead of one each.
    let mut last_seed: Option<(SolveOptions, Flow, Arc<ScenarioKeySeed>)> = None;
    // The injected faults resolved to slot coordinates, so workers compare
    // two indices instead of a per-item scenario-name clone.
    let mut injection_target: Option<(usize, usize)> = None;
    let mut stall_target: Option<(usize, usize)> = None;
    for (scenario_index, scenario) in suite.scenarios.iter().enumerate() {
        let configuration = Arc::new(
            scenario
                .workload
                .resolve()
                .map_err(|e| in_scenario(&scenario.name, e))?,
        );
        let flow = scenario
            .resolved_flow()
            .map_err(|e| in_scenario(&scenario.name, e))?;
        // The validation stage reads the mode back from the outcome's
        // scenario; rejecting unknown modes here keeps that read
        // infallible.
        scenario
            .resolved_validation()
            .map_err(|e| in_scenario(&scenario.name, e))?;
        let options = scenario.resolved_options();
        // The key-derivation constants of the scenario — options and flow —
        // are folded into the digest state exactly once here (or reused
        // outright); each expanded point only streams its own view.
        let seed = match &last_seed {
            Some((seed_options, seed_flow, seed))
                if *seed_flow == flow && seed_options == &options =>
            {
                Arc::clone(seed)
            }
            _ => {
                let seed = Arc::new(ScenarioKeySeed::new(&options, flow.as_str()));
                last_seed = Some((options.clone(), flow, Arc::clone(&seed)));
                seed
            }
        };
        let caps: Vec<Option<u64>> = match &scenario.sweep {
            Some(sweep) => sweep
                .caps()
                .map_err(|e| in_scenario(&scenario.name, e))?
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None],
        };
        if let Some(injection) = settings
            .inject_panic
            .as_ref()
            .filter(|injection| injection.scenario == scenario.name)
        {
            if let Some(point_index) = caps.iter().position(|cap| *cap == injection.capacity_cap) {
                injection_target = Some((scenario_index, point_index));
            }
        }
        if let Some(stall) = settings
            .inject_stall
            .as_ref()
            .filter(|stall| stall.scenario == scenario.name)
        {
            if let Some(point_index) = caps.iter().position(|cap| *cap == stall.capacity_cap) {
                stall_target = Some((scenario_index, point_index));
            }
        }
        resolved.push(ResolvedScenario {
            configuration: Arc::clone(&configuration),
            flow,
            options: options.clone(),
            points: caps.len(),
        });
        plans.push(ScenarioPlan {
            scenario_index,
            configuration,
            options,
            seed,
            flow,
            caps,
        });
    }

    // A requested fault that addresses no point would make every chaos
    // check pass vacuously — refuse it instead of silently not injecting.
    if let Some(injection) = &settings.inject_panic {
        if injection_target.is_none() {
            return Err(EngineError::InvalidInput(format!(
                "inject_panic matches no work item: scenario `{}` has no point with capacity \
                 cap {:?}",
                injection.scenario, injection.capacity_cap
            )));
        }
    }

    // A stall that matches nothing is deliberately *not* refused: the
    // serve layer applies one fault plan to every submission, and only the
    // addressed suite should slow down (see `RunSettings::inject_stall`).
    Ok(Planned {
        resolved,
        expansion: ExpansionJob::new(plans),
        injection_target,
        stall_target,
    })
}

/// Expands the planned chunks into the suite-order item list, on up to
/// `jobs` scoped threads (serially below two useful threads). The pooled
/// [`Engine`](crate::Engine) runs the same [`ExpansionJob`] on its parked
/// workers instead.
pub(crate) fn expand(job: ExpansionJob, jobs: usize) -> Vec<WorkItem> {
    let jobs = jobs.min(job.chunk_count());
    if jobs <= 1 {
        return job.expand_serial();
    }
    let (sender, receiver) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let sender = sender.clone();
            let job = &job;
            scope.spawn(move || job.drain(&sender));
        }
        drop(sender);
        job.collect(receiver)
    })
}

/// Resolves and expands a whole suite: [`plan`] then [`expand`] with the
/// settings' worker count.
pub(crate) fn prepare(suite: &Suite, settings: &RunSettings) -> Result<Prepared, EngineError> {
    let planned = plan(suite, settings)?;
    let items = expand(planned.expansion, settings.jobs.max(1));
    Ok(Prepared {
        resolved: planned.resolved,
        items,
        injection_target: planned.injection_target,
        stall_target: planned.stall_target,
    })
}

/// What a suite expands to, without solving anything — the counts behind
/// `bbs check --suite` style diagnostics, the expansion benchmarks and the
/// allocation regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionSummary {
    /// Scenarios resolved.
    pub scenarios: usize,
    /// Work items (one per scenario × sweep point) expanded.
    pub points: usize,
}

/// Resolves `suite` and expands its sweeps into work items — the exact
/// pipeline stage a run performs before solving — then reports the counts
/// without solving anything. `settings.jobs` > 1 expands in parallel on
/// scoped threads; [`Engine::expand_suite`](crate::Engine::expand_suite)
/// is the pooled equivalent.
///
/// # Errors
///
/// Returns an [`EngineError`] when the suite fails validation, exactly as
/// [`run_suite`] would.
pub fn expand_suite(
    suite: &Suite,
    settings: &RunSettings,
) -> Result<ExpansionSummary, EngineError> {
    let prepared = prepare(suite, settings)?;
    Ok(ExpansionSummary {
        scenarios: prepared.resolved.len(),
        points: prepared.items.len(),
    })
}

/// Shards the items across per-worker deques, round-robin in suite order.
/// Each shard is seeded *in reverse*, so the owner's LIFO `pop_back` walks
/// its share in suite order (with `--jobs 1` the whole suite runs front to
/// back, exactly like the shared queue), while thieves steal with
/// `pop_front` — the opposite end, which holds the items the owner would
/// reach last. With stealing disabled everything lands in one shared FIFO
/// deque instead.
pub(crate) fn shard_items(
    items: Vec<WorkItem>,
    jobs: usize,
    steal: bool,
) -> Vec<Mutex<VecDeque<WorkItem>>> {
    if steal {
        let mut deques: Vec<VecDeque<WorkItem>> = (0..jobs).map(|_| VecDeque::new()).collect();
        for (index, item) in items.into_iter().enumerate().rev() {
            deques[index % jobs].push_back(item);
        }
        deques.into_iter().map(Mutex::new).collect()
    } else {
        vec![Mutex::new(items.into_iter().collect())]
    }
}

/// The shared, read-only state of one run's drain phase: everything a
/// worker needs besides its own index and result sender. Bundled so the
/// scoped executor and the parked [`Engine`](crate::Engine) pool hand the
/// same context to the same drain loop.
pub(crate) struct DrainContext<'a> {
    pub(crate) shards: &'a [Mutex<VecDeque<WorkItem>>],
    pub(crate) settings: &'a RunSettings,
    pub(crate) injection_target: Option<(usize, usize)>,
    pub(crate) stall_target: Option<(usize, usize)>,
    pub(crate) cache: &'a SolveCache,
    pub(crate) counters: &'a PoolCounters,
    pub(crate) cancel: &'a CancelToken,
}

/// One worker's drain loop, shared by the scoped per-run executor and the
/// reusable [`Engine`](crate::Engine) pool: pop locally (LIFO in stealing
/// mode, FIFO on the shared queue), steal FIFO in ring order when dry,
/// retire when every deque is empty.
///
/// The run's [`CancelToken`] is checked once per popped item: after it
/// fires, the remaining items are retired as *unsolved* error outcomes —
/// the slot discipline ("every work item reports exactly once") survives
/// cancellation, assembly completes normally, and only the item each
/// worker was already executing runs to completion.
pub(crate) fn drain_worker(
    worker: usize,
    context: &DrainContext<'_>,
    sender: &mpsc::Sender<(usize, usize, PointOutcome)>,
) {
    let DrainContext {
        shards,
        settings,
        injection_target,
        stall_target,
        cache,
        counters,
        cancel,
    } = *context;
    let home = worker.min(shards.len() - 1);
    loop {
        // LIFO local pop in stealing mode, FIFO on the shared queue (one
        // shard: preserve submission order).
        let local = if settings.steal {
            lock_deque(&shards[home]).pop_back()
        } else {
            lock_deque(&shards[home]).pop_front()
        };
        let item = match local {
            Some(item) => {
                counters.local_pops.fetch_add(1, Ordering::Relaxed);
                Some(item)
            }
            None if settings.steal => {
                // FIFO steal, walking the victims in ring order from our
                // own shard so thieves spread out.
                (1..shards.len())
                    .map(|offset| (home + offset) % shards.len())
                    .find_map(|victim| lock_deque(&shards[victim]).pop_front())
                    .inspect(|_| {
                        counters.steals.fetch_add(1, Ordering::Relaxed);
                    })
            }
            None => None,
        };
        // Items are never re-queued, so empty-everywhere means the suite is
        // drained and the worker can retire.
        let Some(item) = item else { break };
        if cancel.is_cancelled() {
            // Retire the item unsolved. The placeholder error outcome keeps
            // the slot accounting whole; it is never reported, because a
            // cancelled run yields `EngineError::Cancelled`, not an outcome.
            let _ = sender.send((
                item.scenario_index,
                item.point_index,
                PointOutcome {
                    capacity_cap: item.capacity_cap,
                    result: Err(cancelled_solve_error()),
                    solve_time: Duration::ZERO,
                    source: SolveSource::Fresh,
                    validation: None,
                },
            ));
            continue;
        }
        let inject = injection_target == Some((item.scenario_index, item.point_index));
        let stall_ms = stall_target
            .filter(|target| *target == (item.scenario_index, item.point_index))
            .and_then(|_| settings.inject_stall.as_ref().map(|stall| stall.millis));
        let outcome = execute_guarded(&item, cache, settings, counters, inject, stall_ms);
        // The receiver lives until every sender hung up; a send failure
        // means the submitting thread panicked already.
        let _ = sender.send((item.scenario_index, item.point_index, outcome));
    }
}

/// Collects worker results into pre-addressed slots (suite order, not
/// finish order) and assembles the run's [`SuiteOutcome`]. Must be called
/// after every worker's sender has been handed out, with the submitter's
/// own sender dropped: the receiver loop ends exactly when the last worker
/// finishes the job.
#[allow(clippy::too_many_arguments)] // one call site per executor, all distinct
pub(crate) fn assemble_outcome(
    suite: &Suite,
    resolved: Vec<ResolvedScenario>,
    receiver: mpsc::Receiver<(usize, usize, PointOutcome)>,
    settings: &RunSettings,
    cache: &SolveCache,
    counters: &PoolCounters,
    workers: usize,
    start: Instant,
) -> SuiteOutcome {
    let mut slots: Vec<Vec<Option<PointOutcome>>> = resolved
        .iter()
        .map(|scenario| vec![None; scenario.points])
        .collect();
    for (scenario_index, point_index, outcome) in receiver {
        slots[scenario_index][point_index] = Some(outcome);
    }

    let scenarios = suite
        .scenarios
        .iter()
        .zip(resolved)
        .zip(slots)
        .map(|((scenario, resolved), points)| ScenarioOutcome {
            scenario: scenario.clone(),
            // Every work item (and its view) is gone once the receiver
            // drains, so the shared base is normally unwrapped for free; a
            // straggling reference costs one clone per scenario, never per
            // point.
            configuration: Arc::try_unwrap(resolved.configuration)
                .unwrap_or_else(|shared| (*shared).clone()),
            flow: resolved.flow,
            options: resolved.options,
            points: points
                .into_iter()
                .map(|p| p.expect("every work item reports exactly once"))
                .collect(),
        })
        .collect();

    SuiteOutcome {
        suite: suite.name.clone(),
        scenarios,
        cache: if settings.use_cache {
            cache.stats()
        } else {
            // The bypassed cache may hold counters from earlier runs;
            // reporting them here would contradict `cache_enabled`.
            CacheStats { hits: 0, misses: 0 }
        },
        cache_enabled: settings.use_cache,
        store: settings
            .use_cache
            .then(|| cache.store().map(|store| store.stats()))
            .flatten(),
        executor: ExecutorStats {
            workers: workers as u64,
            stealing: settings.steal,
            local_pops: counters.local_pops.load(Ordering::Relaxed),
            steals: counters.steals.load(Ordering::Relaxed),
            caught_panics: counters.caught_panics.load(Ordering::Relaxed),
        },
        wall_time: start.elapsed(),
    }
}

/// Runs a single scenario (a one-element suite with the scenario's name).
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_scenario(
    scenario: &Scenario,
    settings: &RunSettings,
) -> Result<ScenarioOutcome, EngineError> {
    let suite = Suite::new(&scenario.name, vec![scenario.clone()]);
    let outcome = run_suite(&suite, settings)?;
    Ok(outcome
        .scenarios
        .into_iter()
        .next()
        .expect("one scenario in, one outcome out"))
}

fn execute_item(
    item: &WorkItem,
    cache: &SolveCache,
    settings: &RunSettings,
    inject: bool,
    stall_ms: Option<u64>,
) -> PointOutcome {
    if let Some(millis) = stall_ms {
        // Like the injected panic below: deliberately before the cache
        // lookup, so the stall fires on the addressed point regardless of
        // slot-claim races — the deterministic "slow solve" lever the
        // cancellation and deadline tests lean on.
        std::thread::sleep(Duration::from_millis(millis));
    }
    if inject {
        // Deliberately *before* the cache lookup: a fault inside the solve
        // closure would only fire if this point happened to be the slot
        // claimer, making the faulted outcome race-dependent. Here the
        // addressed point always panics — and nothing else does — so
        // injected-fault reports stay `--jobs`-deterministic. (The
        // claimer-panic path through the cache's slot poison-fill is
        // unit-covered in `cache::tests`.)
        panic!(
            "injected panic: scenario index {}, cap {:?}",
            item.scenario_index, item.capacity_cap
        );
    }
    // Timed inside the closure so that a cache hit — including one that
    // blocks waiting for another worker's in-flight solve — reports zero
    // solver work instead of double-counting the shared solve.
    let solve_duration = std::cell::Cell::new(Duration::ZERO);
    let solve = || {
        let start = Instant::now();
        let result = solve_flow(&item.view, &item.options, item.flow);
        solve_duration.set(start.elapsed());
        result
    };
    let (result, source) = if settings.use_cache {
        // The key was pre-derived from the scenario's hoisted seed; the
        // full canonical JSON is only materialised — by the slot claimer,
        // once per distinct key — when a disk tier actually needs it. Both
        // stream straight from the view, byte-identically to the capped
        // clone they replace.
        let canonical =
            || CanonicalKey::materialise(&item.view, &item.seed.options_json(), item.flow.as_str());
        cache.solve_with(item.key, &item.view, canonical, solve)
    } else {
        (solve(), SolveSource::Fresh)
    };
    let solve_time = solve_duration.get();
    PointOutcome {
        capacity_cap: item.capacity_cap,
        result,
        solve_time,
        source,
        // Replays happen in the post-solve validation stage, never here:
        // the solve path stays cache-shaped (one mapping per distinct key)
        // and validation stays a pure function of the assembled outcome.
        validation: None,
    }
}

fn solve_flow(
    view: &ConfigView,
    options: &SolveOptions,
    flow: Flow,
) -> Result<Mapping, MappingError> {
    match flow {
        // The joint flow consumes the view directly (the formulation takes
        // the cap as an override); the two-phase baselines still demand an
        // owned configuration, so the view materialises here — the solver
        // boundary, where mutation is real — and only for points that
        // actually solve (cache hits never reach this closure).
        Flow::Joint => compute_mapping_view(view, options),
        Flow::TwoPhaseMin => {
            compute_mapping_two_phase(view.config(), BudgetPolicy::ThroughputMinimum, options)
                .map(|outcome| outcome.mapping)
        }
        Flow::TwoPhaseFair => {
            compute_mapping_two_phase(view.config(), BudgetPolicy::FairShare, options)
                .map(|outcome| outcome.mapping)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{SweepSpec, WorkloadSpec};
    use bbs_taskgraph::presets::PresetSpec;
    use budget_buffer::sweep_buffer_capacity;

    fn pc_sweep_scenario(name: &str) -> Scenario {
        Scenario::new(
            name,
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::range(1, 6))
    }

    #[test]
    fn engine_sweep_matches_direct_sweep() {
        let outcome = run_scenario(&pc_sweep_scenario("pc"), &RunSettings::default()).unwrap();
        let direct = sweep_buffer_capacity(
            &outcome.configuration,
            1..=6,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        assert_eq!(outcome.points.len(), direct.len());
        for (point, reference) in outcome.points.iter().zip(&direct) {
            assert_eq!(point.capacity_cap, Some(reference.capacity_cap));
            assert_eq!(point.result.as_ref().unwrap(), &reference.mapping);
        }
    }

    #[test]
    fn parallel_run_produces_same_mappings_in_same_order() {
        let suite = Suite::new("par", vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")]);
        let sequential = run_suite(&suite, &RunSettings::with_jobs(1)).unwrap();
        let parallel = run_suite(&suite, &RunSettings::with_jobs(8)).unwrap();
        assert_eq!(sequential.scenarios.len(), parallel.scenarios.len());
        for (s, p) in sequential.scenarios.iter().zip(&parallel.scenarios) {
            assert_eq!(s.scenario.name, p.scenario.name);
            for (sp, pp) in s.points.iter().zip(&p.points) {
                assert_eq!(sp.capacity_cap, pp.capacity_cap);
                assert_eq!(sp.result.as_ref().unwrap(), pp.result.as_ref().unwrap());
            }
        }
        assert_eq!(sequential.cache, parallel.cache);
    }

    /// Regression test for the per-point options re-serialisation bug: a
    /// sweep used to call `serde_json::to_string(options)` for every point
    /// of every scenario. Now a storeless run serialises options zero
    /// times, and a store-backed run exactly once per scenario (the first
    /// claimer materialises, the shared seed caches).
    #[test]
    fn suite_runs_serialise_options_at_most_once_per_scenario() {
        let _guard = crate::cache::COUNTER_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let suite = Suite::new("hoist", vec![pc_sweep_scenario("hoist")]);

        let before = crate::cache::options_serialisation_count();
        run_suite(&suite, &RunSettings::default()).unwrap();
        assert_eq!(
            crate::cache::options_serialisation_count() - before,
            0,
            "a run without a disk tier must not serialise options at all"
        );

        let directory = crate::testutil::TempDir::new("options-hoist");
        let store = crate::store::SolveStore::open(directory.path()).unwrap();
        let cache = SolveCache::with_store(store);
        let before = crate::cache::options_serialisation_count();
        run_suite_with_cache(&suite, &RunSettings::default(), &cache).unwrap();
        assert_eq!(
            crate::cache::options_serialisation_count() - before,
            1,
            "six store-backed points must serialise their options exactly once"
        );
    }

    #[test]
    fn identical_scenarios_hit_the_cache() {
        let suite = Suite::new(
            "cached",
            vec![pc_sweep_scenario("first"), pc_sweep_scenario("second")],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert_eq!(outcome.cache.misses, 6);
        assert_eq!(outcome.cache.hits, 6);
        assert!(outcome.scenarios[1]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
        assert!(outcome.unexpected_failures().is_empty());
    }

    #[test]
    fn repeated_runs_reuse_a_shared_cache() {
        let suite = Suite::new("repeat", vec![pc_sweep_scenario("pc")]);
        let cache = crate::cache::SolveCache::new();
        let settings = RunSettings::default();
        let first = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert_eq!(first.cache.misses, 6);
        assert_eq!(first.cache.hits, 0);
        let second = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert_eq!(second.cache.misses, 6, "no new solves on the second run");
        assert_eq!(second.cache.hits, 6);
        assert!(second.scenarios[0]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
        for (a, b) in first.scenarios[0]
            .points
            .iter()
            .zip(&second.scenarios[0].points)
        {
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }

    #[test]
    fn disabled_cache_reports_zero_counters() {
        let settings = RunSettings {
            use_cache: false,
            ..RunSettings::default()
        };
        let outcome = run_scenario(&pc_sweep_scenario("raw"), &settings).unwrap();
        assert!(outcome
            .points
            .iter()
            .all(|p| p.source == SolveSource::Fresh));
        // Even a dirty shared cache must not leak counters into a run that
        // bypassed it.
        let cache = SolveCache::new();
        let suite = Suite::new("raw", vec![pc_sweep_scenario("raw")]);
        run_suite_with_cache(&suite, &RunSettings::default(), &cache).unwrap();
        let bypassed = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        assert!(!bypassed.cache_enabled);
        assert_eq!(bypassed.cache, CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn expect_infeasible_excuses_only_genuine_infeasibility() {
        use bbs_conic::ConicError;

        assert!(is_infeasibility(&MappingError::Infeasible {
            detail: "x".to_string()
        }));
        assert!(!is_infeasibility(&MappingError::Solver(
            ConicError::NonFiniteData
        )));

        // A solver breakdown inside an expect_infeasible scenario still
        // counts as an unexpected failure.
        let scenario = pc_sweep_scenario("broken").expecting_infeasible();
        let configuration = scenario.workload.resolve().unwrap();
        let options = scenario.resolved_options();
        let outcome = SuiteOutcome {
            suite: "s".to_string(),
            scenarios: vec![ScenarioOutcome {
                scenario,
                configuration,
                flow: Flow::Joint,
                options,
                points: vec![
                    PointOutcome {
                        capacity_cap: Some(1),
                        result: Err(MappingError::Infeasible {
                            detail: "expected".to_string(),
                        }),
                        solve_time: Duration::ZERO,
                        source: SolveSource::Fresh,
                        validation: None,
                    },
                    PointOutcome {
                        capacity_cap: Some(2),
                        result: Err(MappingError::Solver(ConicError::NonFiniteData)),
                        solve_time: Duration::ZERO,
                        source: SolveSource::Fresh,
                        validation: None,
                    },
                ],
            }],
            cache: CacheStats { hits: 0, misses: 0 },
            cache_enabled: true,
            store: None,
            executor: ExecutorStats::default(),
            wall_time: Duration::ZERO,
        };
        let failures = outcome.unexpected_failures();
        assert_eq!(failures.len(), 1, "only the solver breakdown surfaces");
        assert_eq!(failures[0].1, Some(2));
    }

    #[test]
    fn infeasible_points_are_data_not_errors() {
        // Ring with 2 initial tokens is infeasible at cap 1 (cap below the
        // initial tokens).
        let scenario = Scenario::new(
            "ring-tight",
            WorkloadSpec::preset(
                PresetSpec::named("ring")
                    .with_tasks(3)
                    .with_initial_tokens(2),
            ),
        )
        .with_sweep(SweepSpec::range(1, 3))
        .expecting_infeasible();
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        assert!(outcome.points[0].result.is_err());
        assert!(outcome.points[1].result.is_ok());
        let suite = Suite::new("s", vec![scenario]);
        let suite_outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert!(suite_outcome.unexpected_failures().is_empty());
    }

    /// Regression test for the poisoned-queue abort: before the rewrite a
    /// panicking solve poisoned the shared queue mutex and the next pop's
    /// `expect("queue lock poisoned")` took the whole run down. Now the
    /// panicking point reports a per-point error and every other point
    /// still solves.
    #[test]
    fn panicking_solve_is_a_per_point_error_not_an_abort() {
        let suite = Suite::new(
            "faulted",
            vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")],
        );
        let settings = RunSettings {
            jobs: 4,
            inject_panic: Some(PanicInjection {
                scenario: "a".to_string(),
                capacity_cap: Some(3),
            }),
            ..RunSettings::default()
        };
        let outcome = run_suite(&suite, &settings).unwrap();
        assert_eq!(outcome.executor.caught_panics, 1);
        for scenario in &outcome.scenarios {
            for point in &scenario.points {
                if scenario.scenario.name == "a" && point.capacity_cap == Some(3) {
                    let error = point.result.as_ref().unwrap_err().to_string();
                    assert!(error.contains("panicked"), "unexpected error: {error}");
                } else {
                    assert!(point.result.is_ok(), "other points must still solve");
                }
            }
        }
        // The panic is a solver breakdown, so it must surface as an
        // unexpected failure (and fail `bbs run`), never hide.
        assert_eq!(outcome.unexpected_failures().len(), 1);
    }

    #[test]
    fn panicking_solve_keeps_reports_jobs_deterministic() {
        let suite = Suite::new(
            "faulted",
            vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")],
        );
        let report = |jobs: usize, steal: bool| {
            let settings = RunSettings {
                jobs,
                steal,
                inject_panic: Some(PanicInjection {
                    scenario: "b".to_string(),
                    capacity_cap: Some(2),
                }),
                ..RunSettings::default()
            };
            crate::SuiteReport::from_outcome(&run_suite(&suite, &settings).unwrap()).to_json()
        };
        let baseline = report(1, true);
        assert_eq!(baseline, report(8, true));
        assert_eq!(baseline, report(8, false), "shared queue must agree too");
    }

    #[test]
    fn injection_matching_no_point_is_refused() {
        // A typo'd scenario or out-of-sweep cap must error, not silently
        // inject nothing and let a chaos check pass vacuously.
        for (scenario, cap) in [("nope", Some(3)), ("a", Some(99)), ("a", None)] {
            let settings = RunSettings {
                inject_panic: Some(PanicInjection {
                    scenario: scenario.to_string(),
                    capacity_cap: cap,
                }),
                ..RunSettings::default()
            };
            let error = run_scenario(&pc_sweep_scenario("a"), &settings).unwrap_err();
            assert!(
                error
                    .to_string()
                    .contains("inject_panic matches no work item"),
                "unexpected error: {error}"
            );
        }
    }

    #[test]
    fn uncached_panicking_solve_is_caught_too() {
        let settings = RunSettings {
            use_cache: false,
            jobs: 2,
            inject_panic: Some(PanicInjection {
                scenario: "raw".to_string(),
                capacity_cap: Some(1),
            }),
            ..RunSettings::default()
        };
        let outcome = run_scenario(&pc_sweep_scenario("raw"), &settings).unwrap();
        assert!(outcome.points[0].result.is_err());
        assert!(outcome.points[1..].iter().all(|p| p.result.is_ok()));
    }

    #[test]
    fn shared_queue_scheduler_matches_work_stealing() {
        let suite = Suite::new(
            "modes",
            vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")],
        );
        let json = |steal: bool| {
            let settings = RunSettings {
                jobs: 8,
                steal,
                ..RunSettings::default()
            };
            let outcome = run_suite(&suite, &settings).unwrap();
            assert_eq!(outcome.executor.stealing, steal);
            assert_eq!(
                outcome.executor.local_pops + outcome.executor.steals,
                12,
                "every item is popped exactly once"
            );
            if !steal {
                assert_eq!(outcome.executor.steals, 0);
            }
            crate::SuiteReport::from_outcome(&outcome).to_json()
        };
        assert_eq!(json(true), json(false));
    }

    #[test]
    fn single_worker_executes_in_suite_order() {
        // With one worker the LIFO shard is seeded in reverse, so the pool
        // walks the suite front to back: the first scenario claims every
        // key and the second one hits memory — the user-visible order a
        // sequential run has always had.
        let suite = Suite::new(
            "order",
            vec![pc_sweep_scenario("first"), pc_sweep_scenario("second")],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert!(outcome.scenarios[0]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Fresh));
        assert!(outcome.scenarios[1]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
    }

    #[test]
    fn oversubscribed_pool_steals_and_stays_deterministic() {
        // More workers than a single scenario's share forces idle workers
        // to steal; 16 workers over 24 items across two scenarios.
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| pc_sweep_scenario(&format!("s{i}")))
            .collect();
        let suite = Suite::new("oversub", scenarios);
        let sequential = run_suite(&suite, &RunSettings::with_jobs(1)).unwrap();
        let parallel = run_suite(&suite, &RunSettings::with_jobs(16)).unwrap();
        assert_eq!(
            crate::SuiteReport::from_outcome(&sequential).to_json(),
            crate::SuiteReport::from_outcome(&parallel).to_json()
        );
        assert_eq!(parallel.executor.workers, 16);
    }

    #[test]
    fn two_phase_flow_runs_through_engine() {
        let scenario = Scenario::new(
            "tp",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_flow(Flow::TwoPhaseFair);
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        let direct = compute_mapping_two_phase(
            &outcome.configuration,
            BudgetPolicy::FairShare,
            &SolveOptions::default().prefer_budget_minimisation(),
        )
        .unwrap();
        assert_eq!(outcome.points[0].result.as_ref().unwrap(), &direct.mapping);
    }

    #[test]
    fn legacy_simulate_flag_still_checks_the_guarantee() {
        let scenario = Scenario::new(
            "sim",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::list([4u64]))
        .with_simulation();
        let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
        let check = outcome.points[0].validation.as_ref().unwrap();
        assert!(check.is_sound(), "paper setup must meet its guarantee");
        assert_eq!(check.required_period, 10.0);
        assert!(check.measured_period.is_finite());
    }
}
