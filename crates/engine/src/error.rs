//! Engine-level errors.

use std::fmt;

/// Errors raised while validating or executing scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A scenario or suite is malformed (unknown preset/flow, empty sweep,
    /// missing workload, duplicate names, ...).
    InvalidScenario(String),
    /// A suite file or report could not be parsed.
    InvalidInput(String),
    /// The run's [`CancelToken`](crate::CancelToken) fired before the suite
    /// finished: the work was aborted cooperatively and no outcome exists.
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidScenario(message) => write!(f, "invalid scenario: {message}"),
            EngineError::InvalidInput(message) => write!(f, "invalid input: {message}"),
            EngineError::Cancelled => write!(f, "submission cancelled"),
        }
    }
}

impl std::error::Error for EngineError {}
