//! Engine-level errors.

use std::fmt;

/// Errors raised while validating or executing scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A scenario or suite is malformed (unknown preset/flow, empty sweep,
    /// missing workload, duplicate names, ...).
    InvalidScenario(String),
    /// A suite file or report could not be parsed.
    InvalidInput(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidScenario(message) => write!(f, "invalid scenario: {message}"),
            EngineError::InvalidInput(message) => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}
